#include "cluster/transport.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <utility>

namespace nomloc::cluster {

std::string_view TransportKindName(TransportKind kind) noexcept {
  switch (kind) {
    case TransportKind::kLoopback: return "loopback";
    case TransportKind::kUnixSocket: return "unix";
    case TransportKind::kTcpSocket: return "tcp";
  }
  return "unknown";
}

common::Result<TransportKind> ParseTransportKindName(std::string_view name) {
  if (name == "loopback") return TransportKind::kLoopback;
  if (name == "unix") return TransportKind::kUnixSocket;
  if (name == "tcp") return TransportKind::kTcpSocket;
  return common::InvalidArgument("unknown transport '" + std::string(name) +
                                 "' (expected loopback|unix|tcp)");
}

common::Result<void> TransportConfig::Validate() const {
  if (kind == TransportKind::kLoopback && loopback_capacity_bytes == 0)
    return common::InvalidArgument(
        "loopback_capacity_bytes must be positive");
  return {};
}

namespace {

// ---------------------------------------------------------------------------
// Loopback: two bounded in-process byte buffers.

/// One direction of a loopback pair.
struct Pipe {
  std::mutex mutex;
  std::condition_variable cv;
  std::string buffer;
  std::size_t capacity = 0;
  bool closed = false;
  bool stalled = false;
};

class LoopbackLink final : public Link {
 public:
  LoopbackLink(std::shared_ptr<Pipe> out, std::shared_ptr<Pipe> in)
      : out_(std::move(out)), in_(std::move(in)) {}

  ~LoopbackLink() override { Close(); }

  LinkWrite Write(std::string_view bytes) override {
    std::lock_guard<std::mutex> lock(out_->mutex);
    if (out_->closed) return LinkWrite::kClosed;
    if (out_->buffer.size() + bytes.size() > out_->capacity)
      return LinkWrite::kBackpressure;
    out_->buffer.append(bytes.data(), bytes.size());
    out_->cv.notify_all();
    return LinkWrite::kOk;
  }

  std::size_t Read(std::string& out) override {
    std::unique_lock<std::mutex> lock(in_->mutex);
    in_->cv.wait(lock, [&] {
      return in_->closed || (!in_->stalled && !in_->buffer.empty());
    });
    // A closed pipe still drains buffered bytes first (SHUT_WR
    // semantics): a graceful stop must not drop frames in flight.
    if (in_->buffer.empty()) return 0;
    const std::size_t n = in_->buffer.size();
    out.append(in_->buffer);
    in_->buffer.clear();
    in_->cv.notify_all();
    return n;
  }

  void Close() override {
    for (const auto& pipe : {out_, in_}) {
      std::lock_guard<std::mutex> lock(pipe->mutex);
      pipe->closed = true;
      pipe->cv.notify_all();
    }
  }

  bool SetStalled(bool stalled) override {
    std::lock_guard<std::mutex> lock(out_->mutex);
    out_->stalled = stalled;
    out_->cv.notify_all();
    return true;
  }

 private:
  std::shared_ptr<Pipe> out_;
  std::shared_ptr<Pipe> in_;
};

// ---------------------------------------------------------------------------
// Sockets: a connected fd per end, blocking IO.

class FdLink final : public Link {
 public:
  explicit FdLink(int fd) : fd_(fd) {}

  ~FdLink() override {
    Close();
    ::close(fd_);
  }

  LinkWrite Write(std::string_view bytes) override {
    if (closed_.load(std::memory_order_acquire)) return LinkWrite::kClosed;
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      if (n > 0) {
        sent += std::size_t(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      // EPIPE/ECONNRESET/shutdown: the stream is gone.  A frame may have
      // been partially transmitted, but the peer tearing down is the
      // only way here, so no reader ever sees the torn frame.
      return LinkWrite::kClosed;
    }
    return LinkWrite::kOk;
  }

  std::size_t Read(std::string& out) override {
    char chunk[65536];
    while (true) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n > 0) {
        out.append(chunk, std::size_t(n));
        return std::size_t(n);
      }
      if (n < 0 && errno == EINTR) continue;
      return 0;  // EOF or error: stream over.
    }
  }

  void Close() override {
    if (!closed_.exchange(true, std::memory_order_acq_rel))
      ::shutdown(fd_, SHUT_RDWR);  // Wakes a blocked recv with EOF.
  }

 private:
  int fd_;
  std::atomic<bool> closed_{false};
};

common::Result<LinkPair> ConnectUnixPair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
    return common::FailedPrecondition(
        std::string("socketpair failed: ") + std::strerror(errno));
  LinkPair pair;
  pair.router_end = std::make_unique<FdLink>(fds[0]);
  pair.host_end = std::make_unique<FdLink>(fds[1]);
  return pair;
}

common::Result<LinkPair> ConnectTcpPair() {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0)
    return common::FailedPrecondition(std::string("socket failed: ") +
                                      std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // Ephemeral.
  auto fail = [&](const char* what) {
    const int err = errno;
    ::close(listener);
    return common::FailedPrecondition(std::string(what) + " failed: " +
                                      std::strerror(err));
  };
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    return fail("bind");
  if (::listen(listener, 1) != 0) return fail("listen");
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listener, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) != 0)
    return fail("getsockname");

  const int client = ::socket(AF_INET, SOCK_STREAM, 0);
  if (client < 0) return fail("socket");
  if (::connect(client, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(client);
    ::close(listener);
    return common::FailedPrecondition(std::string("connect failed: ") +
                                      std::strerror(err));
  }
  const int accepted = ::accept(listener, nullptr, nullptr);
  ::close(listener);
  if (accepted < 0) {
    const int err = errno;
    ::close(client);
    return common::FailedPrecondition(std::string("accept failed: ") +
                                      std::strerror(err));
  }
  LinkPair pair;
  pair.router_end = std::make_unique<FdLink>(client);
  pair.host_end = std::make_unique<FdLink>(accepted);
  return pair;
}

}  // namespace

common::Result<LinkPair> ConnectLinkPair(const TransportConfig& config) {
  if (auto valid = config.Validate(); !valid.ok()) return valid.status();
  switch (config.kind) {
    case TransportKind::kLoopback: {
      auto forward = std::make_shared<Pipe>();
      auto backward = std::make_shared<Pipe>();
      forward->capacity = config.loopback_capacity_bytes;
      backward->capacity = config.loopback_capacity_bytes;
      LinkPair pair;
      pair.router_end = std::make_unique<LoopbackLink>(forward, backward);
      pair.host_end = std::make_unique<LoopbackLink>(backward, forward);
      return pair;
    }
    case TransportKind::kUnixSocket:
      return ConnectUnixPair();
    case TransportKind::kTcpSocket:
      return ConnectTcpPair();
  }
  return common::InvalidArgument("unknown transport kind");
}

}  // namespace nomloc::cluster
