// One shard host: a StreamingLocalizer behind a wire-format byte stream.
//
// The host owns a reader thread that drains its transport Link, feeds an
// incremental serving::WireDecoder, and applies the decoded frames in
// exact stream order:
//
//   observation / query  -> StreamingLocalizer::Ingest (after advancing
//                           the host's logical clock to the packet
//                           timestamp, when clock_from_packets is on)
//   replicate            -> warm-standby SessionStore::Upsert — the
//                           backup copy of another shard's primary write
//                           (epoch-fenced; see ApplyReplicate)
//   kClockSet            -> ManualClock::Set(value) — the router's way to
//                           drive logical time out-of-band (chaos clock
//                           jumps, which packet timestamps cannot carry)
//   kEpochSet            -> adopt the router's placement epoch; replicate
//                           frames stamped with an older epoch are
//                           rejected from then on
//   kFlush               -> Flush the localizer, write one response frame
//                           per completed query (ordered by ingest seq),
//                           then a kFlushAck echoing the token
//
// Logical time therefore travels *in-band*: each host sees exactly the
// timestamps of its own shard's packets, and because the replay stream is
// globally timestamp-sorted, the host clock at every serve is the same as
// the unsharded run's — the keystone of the cluster's bit-identity
// guarantee (see DESIGN.md "Cluster shard topology").
//
// Durability (ShardHostOptions::durable_dir): the host keeps a
// write-ahead log of every state-bearing frame it applies — observation,
// query, replicate, kClockSet, kEpochSet; kFlush is a barrier, not state
// — appending each decoded batch *before* applying it.  Create() then
// recovers a crashed host to its exact pre-crash state: restore
// checkpoint.json (primary) and standby.json (replica copies), replay
// the WAL on top, discard the replayed queries' responses (the router
// collected the originals before the crash).  See serving/wal.h for the
// torn-tail and corruption contract.
//
// The host never reads the router's clock and shares no memory with the
// router beyond the Link: everything it needs crosses the wire, so the
// same code serves an in-process loopback shard and a socket-connected
// one.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "cluster/transport.h"
#include "core/nomloc.h"
#include "serving/clock.h"
#include "serving/service.h"
#include "serving/wal.h"
#include "serving/wire.h"

namespace nomloc::cluster {

/// File names inside a shard's durable directory (next to its WAL
/// segments; the WAL's `wal-NNNNNN.log` scan ignores them).
inline std::string ShardCheckpointPath(const std::string& durable_dir) {
  return durable_dir + "/checkpoint.json";
}
inline std::string ShardStandbyPath(const std::string& durable_dir) {
  return durable_dir + "/standby.json";
}

struct ShardHostOptions {
  /// Advance the host clock to each packet's timestamp (monotone max);
  /// turn off when the router drives time purely via kClockSet.
  bool clock_from_packets = true;
  /// The placement epoch the host starts at.  A promoted cluster bumps
  /// its epoch and broadcasts kEpochSet; replicate frames carrying an
  /// older epoch are stale-fenced (`cluster.placement.stale_epoch`).
  std::uint64_t placement_epoch = 0;
  /// Durable state directory (empty = in-memory host).  Holds the WAL
  /// segments plus checkpoint.json / standby.json; Create() recovers
  /// from all three before the reader starts.
  std::string durable_dir;
  std::size_t wal_segment_bytes = 1 << 20;
  bool wal_fsync = true;
};

class ShardHost {
 public:
  /// `engine` must outlive the host.  Takes ownership of the host end of
  /// a Link pair.  With a durable_dir, recovers checkpoint files + WAL
  /// before accepting traffic.
  static common::Result<std::unique_ptr<ShardHost>> Create(
      const core::NomLocEngine& engine, serving::ServingConfig serving_config,
      std::unique_ptr<Link> link, ShardHostOptions options = {});

  ~ShardHost();

  ShardHost(const ShardHost&) = delete;
  ShardHost& operator=(const ShardHost&) = delete;

  /// Graceful stop: closes the link, joins the reader (which drains every
  /// byte already in flight), and shuts the localizer down.  Idempotent.
  void Stop();

  /// Unclean stop: the crash end of the chaos spectrum.  The reader
  /// abandons decoded-but-unapplied batches instead of draining them, so
  /// the host dies mid-stream exactly like a killed process — recovery
  /// must come from the WAL + checkpoint files, not a graceful drain.
  /// (Frames already WAL-appended may be unapplied; replay reconciles.)
  void Abort();

  /// The host's session store — the router checkpoints it for migration
  /// while the host is quiesced (flushed, or stopped).
  serving::SessionStore& Store() { return localizer_->Store(); }
  /// Warm-standby copies of *other* shards' sessions, fed by replicate
  /// frames.  Promotion moves entries from here into a primary store.
  serving::SessionStore& StandbyStore() { return *standby_; }
  serving::StreamingLocalizer& Localizer() { return *localizer_; }
  serving::ManualClock& LogicalClock() { return clock_; }

  std::uint64_t PlacementEpoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Applies one dual-written observation to the standby store.  The
  /// split-brain fence: a frame whose epoch predates the host's is
  /// kRejectedStaleEpoch (`cluster.placement.stale_epoch`) and touches
  /// nothing — a router that lost a failover race cannot write into a
  /// standby that was already promoted.  Mirrors the worker's
  /// observation apply bit-exactly (deadline check, then Upsert) with
  /// now = the packet timestamp, so a promoted standby answers as the
  /// primary would have.
  serving::AdmitStatus ApplyReplicate(const serving::WireReplicate& replicate);

  /// Deletes every WAL segment (compaction).  Call only while quiesced
  /// and immediately after the state the WAL reflects was saved via
  /// checkpoint files — the two together are one logical step.
  common::Result<void> ResetWal();

  const std::string& DurableDir() const noexcept {
    return options_.durable_dir;
  }

 private:
  ShardHost(const core::NomLocEngine& engine, std::unique_ptr<Link> link,
            ShardHostOptions options);

  /// Restores checkpoint files + WAL replay (durable_dir set), then
  /// opens the WAL for appending.  Runs before the reader starts.
  common::Result<void> Recover();
  void ReaderLoop();
  /// Applies one decoded frame.  `outbound` is the reader's write buffer
  /// (null during WAL replay, when no flush frames exist to answer).
  void ApplyEvent(const serving::WireEvent& event, std::string* outbound);
  /// Re-encodes the state-bearing frames of a batch for the WAL (kFlush
  /// and kFlushAck are skipped — barriers, not state).
  static void EncodeForWal(const serving::WireEvent& event, std::string& out);
  /// Flush + encode responses + ack.  Runs on the reader thread.
  void HandleFlush(std::uint64_t token, std::string& outbound);
  /// Writes with bounded retries on backpressure (the response pipe is
  /// drained by the router's reader, so pressure is transient).
  void WriteOut(std::string& outbound);

  serving::ManualClock clock_;
  std::unique_ptr<serving::StreamingLocalizer> localizer_;
  std::unique_ptr<serving::SessionStore> standby_;
  std::unique_ptr<Link> link_;
  const ShardHostOptions options_;
  std::atomic<std::uint64_t> epoch_;
  /// Guards wal_ between the reader's appends and ResetWal().
  std::mutex wal_mutex_;
  std::unique_ptr<serving::WriteAheadLog> wal_;
  bool header_sent_ = false;
  std::atomic<bool> stopped_{false};
  std::atomic<bool> aborted_{false};
  std::thread reader_;
};

}  // namespace nomloc::cluster
