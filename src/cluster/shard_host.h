// One shard host: a StreamingLocalizer behind a wire-format byte stream.
//
// The host owns a reader thread that drains its transport Link, feeds an
// incremental serving::WireDecoder, and applies the decoded frames in
// exact stream order:
//
//   observation / query  -> StreamingLocalizer::Ingest (after advancing
//                           the host's logical clock to the packet
//                           timestamp, when clock_from_packets is on)
//   kClockSet            -> ManualClock::Set(value) — the router's way to
//                           drive logical time out-of-band (chaos clock
//                           jumps, which packet timestamps cannot carry)
//   kFlush               -> Flush the localizer, write one response frame
//                           per completed query (ordered by ingest seq),
//                           then a kFlushAck echoing the token
//
// Logical time therefore travels *in-band*: each host sees exactly the
// timestamps of its own shard's packets, and because the replay stream is
// globally timestamp-sorted, the host clock at every serve is the same as
// the unsharded run's — the keystone of the cluster's bit-identity
// guarantee (see DESIGN.md "Cluster shard topology").
//
// The host never reads the router's clock and shares no memory with the
// router beyond the Link: everything it needs crosses the wire, so the
// same code serves an in-process loopback shard and a socket-connected
// one.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>

#include "cluster/transport.h"
#include "core/nomloc.h"
#include "serving/clock.h"
#include "serving/service.h"

namespace nomloc::cluster {

class ShardHost {
 public:
  /// `engine` must outlive the host.  Takes ownership of the host end of
  /// a Link pair.  `clock_from_packets` advances the host clock to each
  /// packet's timestamp (monotone max); turn it off when the router
  /// drives time purely via kClockSet (cluster chaos).
  static common::Result<std::unique_ptr<ShardHost>> Create(
      const core::NomLocEngine& engine, serving::ServingConfig serving_config,
      std::unique_ptr<Link> link, bool clock_from_packets = true);

  ~ShardHost();

  ShardHost(const ShardHost&) = delete;
  ShardHost& operator=(const ShardHost&) = delete;

  /// Graceful stop: closes the link, joins the reader (which drains every
  /// byte already in flight), and shuts the localizer down.  Idempotent.
  void Stop();

  /// The host's session store — the router checkpoints it for migration
  /// while the host is quiesced (flushed, or stopped).
  serving::SessionStore& Store() { return localizer_->Store(); }
  serving::StreamingLocalizer& Localizer() { return *localizer_; }
  serving::ManualClock& LogicalClock() { return clock_; }

 private:
  ShardHost(const core::NomLocEngine& engine, std::unique_ptr<Link> link,
            bool clock_from_packets);

  void ReaderLoop();
  /// Flush + encode responses + ack.  Runs on the reader thread.
  void HandleFlush(std::uint64_t token, std::string& outbound);
  /// Writes with bounded retries on backpressure (the response pipe is
  /// drained by the router's reader, so pressure is transient).
  void WriteOut(std::string& outbound);

  serving::ManualClock clock_;
  std::unique_ptr<serving::StreamingLocalizer> localizer_;
  std::unique_ptr<Link> link_;
  const bool clock_from_packets_;
  bool header_sent_ = false;
  std::atomic<bool> stopped_{false};
  std::thread reader_;
};

}  // namespace nomloc::cluster
