// Byte-stream transports between the shard router and its shard hosts.
//
// A transport hands out connected pairs of Link endpoints — one end for
// the router, one for the host.  Each Link is a bidirectional byte pipe
// with stream semantics: writes are ordered, reads return whatever bytes
// have arrived (any partition of the stream), and closing one end wakes
// the peer's blocked reader with EOF.  Frame reassembly is the reader's
// job (serving::WireDecoder); the transport never tears a frame — a
// write is either appended whole or rejected whole.
//
// Three implementations:
//
//   * kLoopback — an in-process pair of bounded mutex/condvar byte
//     buffers.  Fully deterministic content, sanitizer-friendly (plain
//     locks, no fds), and the only transport with *typed* backpressure:
//     a write that would overflow the buffer returns kBackpressure
//     instead of blocking, which the router surfaces as
//     kRejectedQueueFull.  Also the chaos handle: SetStalled(true)
//     starves the reader so stall windows are reproducible.
//   * kUnixSocket — a socketpair(AF_UNIX, SOCK_STREAM) pair.
//   * kTcpSocket — a loopback TCP connection (127.0.0.1, ephemeral port).
//
// Socket writes block in the kernel when the peer is slow (natural
// backpressure); only the loopback transport models reject-not-block
// admission, which is why the deterministic suites run on it.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"

namespace nomloc::cluster {

enum class TransportKind {
  kLoopback,    ///< Deterministic in-process byte pipes.
  kUnixSocket,  ///< socketpair(AF_UNIX, SOCK_STREAM).
  kTcpSocket,   ///< TCP over 127.0.0.1.
};

std::string_view TransportKindName(TransportKind kind) noexcept;
/// Parses "loopback" / "unix" / "tcp" (kInvalidArgument otherwise).
common::Result<TransportKind> ParseTransportKindName(std::string_view name);

/// Verdict of a non-blocking-or-kernel-buffered Link write.
enum class LinkWrite {
  kOk,            ///< All bytes accepted in order.
  kBackpressure,  ///< Nothing accepted: the pipe is at capacity (loopback).
  kClosed,        ///< Nothing accepted: the peer is gone.
};

/// One endpoint of a connected byte-stream pair.  Write/Read may be
/// called from different threads; each direction has a single writer and
/// a single reader in this codebase.
class Link {
 public:
  virtual ~Link() = default;

  /// Appends `bytes` to the outgoing stream, all or nothing.
  virtual LinkWrite Write(std::string_view bytes) = 0;

  /// Blocks until incoming bytes are available or the stream ends, then
  /// appends them to `out`.  Returns the byte count; 0 means EOF (peer
  /// closed or this end was closed under the reader).
  virtual std::size_t Read(std::string& out) = 0;

  /// Closes both directions; the peer's (and this end's) blocked Read
  /// wakes with EOF, and later writes on either end return kClosed.
  virtual void Close() = 0;

  /// Chaos hook: while stalled, this end's *peer* reads nothing (bytes
  /// keep queuing up to capacity).  Returns false when the transport
  /// cannot stall (sockets).
  virtual bool SetStalled(bool) { return false; }
};

struct LinkPair {
  std::unique_ptr<Link> router_end;
  std::unique_ptr<Link> host_end;
};

struct TransportConfig {
  TransportKind kind = TransportKind::kLoopback;
  /// Loopback per-direction byte capacity (typed backpressure beyond it).
  std::size_t loopback_capacity_bytes = 1 << 20;

  common::Result<void> Validate() const;
};

/// Creates one connected Link pair.  Socket transports fail with
/// kFailedPrecondition when the OS refuses the socket.
common::Result<LinkPair> ConnectLinkPair(const TransportConfig& config);

}  // namespace nomloc::cluster
