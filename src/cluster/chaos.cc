#include "cluster/chaos.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/rng.h"
#include "geometry/vec2.h"
#include "serving/clock.h"

namespace nomloc::cluster {

std::string_view ClusterChaosEventKindName(
    ClusterChaosEventKind kind) noexcept {
  switch (kind) {
    case ClusterChaosEventKind::kShardKill: return "SHARD_KILL";
    case ClusterChaosEventKind::kShardMigrate: return "SHARD_MIGRATE";
    case ClusterChaosEventKind::kTransportStall: return "TRANSPORT_STALL";
  }
  return "UNKNOWN";
}

common::Result<void> ClusterChaosConfig::Validate() const {
  if (kill_weight < 0.0 || migrate_weight < 0.0 || stall_weight < 0.0)
    return common::InvalidArgument("event weights must be >= 0");
  if (events > 0 && kill_weight + migrate_weight + stall_weight <= 0.0)
    return common::InvalidArgument("at least one event weight must be > 0");
  if (max_window_epochs <= 0.0)
    return common::InvalidArgument("max_window_epochs must be > 0");
  return {};
}

ClusterChaosSchedule BuildClusterChaosSchedule(
    const ClusterChaosConfig& config, const serving::ReplayPlan& plan,
    double epoch_interval_s, std::size_t shards) {
  ClusterChaosSchedule schedule;
  if (config.events == 0 || plan.epoch_count < 3 || shards == 0)
    return schedule;
  common::Rng rng(config.seed);
  const std::array<double, 3> weights = {config.kill_weight,
                                         config.migrate_weight,
                                         config.stall_weight};
  // Event starts land on epoch boundaries in the run's first 70%, and
  // windows close by the second-to-last epoch, so the tail always
  // measures post-recovery behaviour.
  const std::size_t first_epoch = 1;
  const std::size_t last_start =
      std::max<std::size_t>(first_epoch + 1,
                            std::size_t(0.7 * double(plan.epoch_count)));
  const std::size_t max_window = std::max<std::size_t>(
      1, std::size_t(std::ceil(config.max_window_epochs)));

  schedule.events.reserve(config.events);
  for (std::size_t i = 0; i < config.events; ++i) {
    ClusterChaosEvent event;
    event.kind = ClusterChaosEventKind(rng.Categorical(weights));
    event.shard = rng.UniformInt(shards);
    const std::size_t start_epoch =
        first_epoch + rng.UniformInt(last_start - first_epoch);
    event.start_s = double(start_epoch) * epoch_interval_s;
    if (event.kind == ClusterChaosEventKind::kShardMigrate) {
      event.end_s = event.start_s;
    } else {
      std::size_t end_epoch = start_epoch + 1 + rng.UniformInt(max_window);
      end_epoch = std::min(end_epoch, plan.epoch_count - 1);
      event.end_s = double(end_epoch) * epoch_interval_s;
    }
    schedule.last_event_end_s =
        std::max(schedule.last_event_end_s, event.end_s);
    schedule.events.push_back(event);
  }
  std::stable_sort(schedule.events.begin(), schedule.events.end(),
                   [](const ClusterChaosEvent& a, const ClusterChaosEvent& b) {
                     return a.start_s < b.start_s;
                   });
  return schedule;
}

common::Result<ClusterChaosReport> RunClusterChaos(
    const core::NomLocEngine& engine, const serving::ReplayPlan& plan,
    double epoch_interval_s, const ClusterChaosConfig& chaos,
    ClusterConfig cluster_config) {
  if (auto valid = chaos.Validate(); !valid.ok()) return valid.status();
  if (plan.packets.empty())
    return common::InvalidArgument("replay plan has no packets");

  ClusterChaosReport report;
  report.schedule = BuildClusterChaosSchedule(
      chaos, plan, epoch_interval_s, cluster_config.shards);

  cluster_config.serving.expected_anchors = plan.expected_anchors;
  if (cluster_config.serving.store.anchor_ttl_s <= 0.0 ||
      cluster_config.serving.store.anchor_ttl_s ==
          serving::SessionStoreConfig{}.anchor_ttl_s)
    cluster_config.serving.store.anchor_ttl_s = plan.suggested_anchor_ttl_s;
  cluster_config.serving.start_paused = false;

  serving::ManualClock clock(0.0);
  NOMLOC_ASSIGN_OR_RETURN(
      auto cluster, Cluster::Create(engine, std::move(cluster_config), &clock));

  const auto& events = report.schedule.events;
  std::vector<bool> started(events.size(), false);
  std::vector<bool> ended(events.size(), false);

  std::size_t i = 0;
  while (i < plan.packets.size()) {
    const double t = plan.packets[i].timestamp_s;

    // Fire event edges due at or before this timestamp group.  Everything
    // up to here is flushed, so a kill loses no in-flight work.
    for (std::size_t e = 0; e < events.size(); ++e) {
      const ClusterChaosEvent& event = events[e];
      if (!started[e] && event.start_s <= t) {
        started[e] = true;
        switch (event.kind) {
          case ClusterChaosEventKind::kShardKill:
            if (cluster->ShardLive(event.shard) &&
                cluster->Checkpoint(event.shard).ok()) {
              cluster->Kill(event.shard);
              ++report.kills;
            } else {
              ended[e] = true;  // Already down (overlapping kill): no-op.
            }
            break;
          case ClusterChaosEventKind::kShardMigrate:
            if (cluster->Migrate(event.shard).ok()) ++report.migrations;
            ended[e] = true;
            break;
          case ClusterChaosEventKind::kTransportStall:
            ++report.stall_windows;
            break;
        }
      }
      if (started[e] && !ended[e] && event.end_s <= t) {
        ended[e] = true;
        if (event.kind == ClusterChaosEventKind::kShardKill &&
            !cluster->ShardLive(event.shard) &&
            cluster->Restart(event.shard, /*restore=*/true).ok())
          ++report.restores;
      }
    }
    // (Re-)apply stalls whose window covers this group.
    for (std::size_t e = 0; e < events.size(); ++e)
      if (started[e] && !ended[e] &&
          events[e].kind == ClusterChaosEventKind::kTransportStall)
        cluster->SetStalled(events[e].shard, true);

    clock.Set(t);

    for (; i < plan.packets.size() && plan.packets[i].timestamp_s == t; ++i) {
      const serving::IngestPacket& packet = plan.packets[i];
      switch (cluster->Ingest(packet)) {
        case serving::AdmitStatus::kAccepted:
          ++report.admit_accepted;
          if (packet.kind == serving::PacketKind::kQuery)
            ++report.accepted_queries;
          break;
        case serving::AdmitStatus::kRejectedQueueFull:
          ++report.admit_rejected_backpressure;
          break;
        case serving::AdmitStatus::kRejectedBreakerOpen:
          ++report.admit_rejected_breaker;
          break;
        case serving::AdmitStatus::kRejectedDeadline:
          ++report.admit_rejected_deadline;
          break;
        default:
          break;
      }
    }

    // A flush through a stalled pipe would never ack: clear every active
    // stall first (the window re-applies it on the next group).
    for (std::size_t e = 0; e < events.size(); ++e)
      if (started[e] && !ended[e] &&
          events[e].kind == ClusterChaosEventKind::kTransportStall)
        cluster->SetStalled(events[e].shard, false);
    cluster->Flush();
  }
  cluster->Flush();
  std::vector<ClusterResponse> responses = cluster->TakeResponses();
  cluster->Shutdown();

  std::sort(responses.begin(), responses.end(),
            [](const ClusterResponse& a, const ClusterResponse& b) {
              if (a.response.timestamp_s != b.response.timestamp_s)
                return a.response.timestamp_s < b.response.timestamp_s;
              return a.response.object_id < b.response.object_id;
            });
  const auto ok_status =
      static_cast<std::uint8_t>(serving::ServeStatus::kOk);
  double tail_error_sum = 0.0;
  std::size_t tail_error_count = 0;
  report.outcomes.reserve(responses.size());
  for (const ClusterResponse& received : responses) {
    const serving::WireResponse& response = received.response;
    ClusterChaosOutcome outcome;
    outcome.object_id = response.object_id;
    outcome.epoch = std::size_t(response.timestamp_s / epoch_interval_s);
    outcome.timestamp_s = response.timestamp_s;
    outcome.status = response.status;
    outcome.degradation = response.degradation;
    outcome.confidence = response.confidence;
    const std::size_t row =
        outcome.epoch * plan.objects + std::size_t(response.object_id);
    if (response.status == ok_status && row < plan.epochs.size())
      outcome.error_m = geometry::Distance(response.position,
                                           plan.epochs[row].true_position);
    if (response.status == ok_status &&
        outcome.timestamp_s > report.schedule.last_event_end_s) {
      tail_error_sum += outcome.error_m;
      ++tail_error_count;
    }
    report.outcomes.push_back(outcome);
  }
  if (tail_error_count > 0)
    report.tail_mean_error_m = tail_error_sum / double(tail_error_count);
  return report;
}

}  // namespace nomloc::cluster
