#include "cluster/chaos.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "common/rng.h"
#include "geometry/vec2.h"
#include "serving/clock.h"

namespace nomloc::cluster {

std::string_view ClusterChaosEventKindName(
    ClusterChaosEventKind kind) noexcept {
  switch (kind) {
    case ClusterChaosEventKind::kShardKill: return "SHARD_KILL";
    case ClusterChaosEventKind::kShardMigrate: return "SHARD_MIGRATE";
    case ClusterChaosEventKind::kTransportStall: return "TRANSPORT_STALL";
    case ClusterChaosEventKind::kShardKillUnclean:
      return "SHARD_KILL_UNCLEAN";
  }
  return "UNKNOWN";
}

common::Result<void> ClusterChaosConfig::Validate() const {
  if (kill_weight < 0.0 || migrate_weight < 0.0 || stall_weight < 0.0 ||
      kill_unclean_weight < 0.0)
    return common::InvalidArgument("event weights must be >= 0");
  if (events > 0 && kill_weight + migrate_weight + stall_weight +
                            kill_unclean_weight <=
                        0.0)
    return common::InvalidArgument("at least one event weight must be > 0");
  if (max_window_epochs <= 0.0)
    return common::InvalidArgument("max_window_epochs must be > 0");
  return {};
}

ClusterChaosSchedule BuildClusterChaosSchedule(
    const ClusterChaosConfig& config, const serving::ReplayPlan& plan,
    double epoch_interval_s, std::size_t shards) {
  ClusterChaosSchedule schedule;
  if (config.events == 0 || plan.epoch_count < 3 || shards == 0)
    return schedule;
  common::Rng rng(config.seed);
  const std::array<double, 4> weights = {config.kill_weight,
                                         config.migrate_weight,
                                         config.stall_weight,
                                         config.kill_unclean_weight};
  // Event starts land on epoch boundaries in the run's first 70%, and
  // windows close by the second-to-last epoch, so the tail always
  // measures post-recovery behaviour.
  const std::size_t first_epoch = 1;
  const std::size_t last_start =
      std::max<std::size_t>(first_epoch + 1,
                            std::size_t(0.7 * double(plan.epoch_count)));
  const std::size_t max_window = std::max<std::size_t>(
      1, std::size_t(std::ceil(config.max_window_epochs)));

  schedule.events.reserve(config.events);
  std::set<std::size_t> unclean_epochs;
  for (std::size_t i = 0; i < config.events; ++i) {
    ClusterChaosEvent event;
    event.kind = ClusterChaosEventKind(rng.Categorical(weights));
    event.shard = rng.UniformInt(shards);
    std::size_t start_epoch =
        first_epoch + rng.UniformInt(last_start - first_epoch);
    if (event.kind == ClusterChaosEventKind::kShardKillUnclean) {
      // One crash per trigger group: replication factor one tolerates a
      // single unclean kill per flush group — two crashes landing in the
      // same group can destroy both copies of an in-flight observation
      // (the primary's bytes and the standby's replicate frame die in
      // their pipes together), which is a double fault outside the
      // declared tolerance, not a replication bug.  Probe to a free
      // trigger epoch; with none left, draw a migration instead.
      const std::size_t span = last_start - first_epoch;
      std::size_t tried = 0;
      while (unclean_epochs.count(start_epoch) != 0 && tried < span) {
        start_epoch = first_epoch + (start_epoch - first_epoch + 1) % span;
        ++tried;
      }
      if (unclean_epochs.count(start_epoch) != 0)
        event.kind = ClusterChaosEventKind::kShardMigrate;
      else
        unclean_epochs.insert(start_epoch);
    }
    if (event.kind == ClusterChaosEventKind::kShardKillUnclean) {
      // Deliberately OFF the epoch grid: the crash lands in the middle of
      // an epoch, between flushed groups.  Queries sit at 0.4 of the
      // interval, so the [0.5, 0.9) trigger window is observation-only —
      // the crash can lose in-flight observations (replication keeps
      // them) but never an accepted query's response.
      event.start_s =
          (double(start_epoch) + 0.5 + 0.4 * rng.Uniform()) *
          epoch_interval_s;
    } else {
      event.start_s = double(start_epoch) * epoch_interval_s;
    }
    if (event.kind == ClusterChaosEventKind::kShardMigrate) {
      event.end_s = event.start_s;
    } else {
      std::size_t end_epoch = start_epoch + 1 + rng.UniformInt(max_window);
      // An unclean kill only fires at the first group past start_s (epoch
      // start_epoch + 1), so its recovery edge needs a strictly later
      // group or the window would collapse to nothing.
      if (event.kind == ClusterChaosEventKind::kShardKillUnclean)
        end_epoch = std::max(end_epoch, start_epoch + 2);
      end_epoch = std::min(end_epoch, plan.epoch_count - 1);
      event.end_s = double(end_epoch) * epoch_interval_s;
    }
    schedule.last_event_end_s =
        std::max(schedule.last_event_end_s, event.end_s);
    schedule.events.push_back(event);
  }
  std::stable_sort(schedule.events.begin(), schedule.events.end(),
                   [](const ClusterChaosEvent& a, const ClusterChaosEvent& b) {
                     return a.start_s < b.start_s;
                   });
  return schedule;
}

common::Result<ClusterChaosReport> RunClusterChaos(
    const core::NomLocEngine& engine, const serving::ReplayPlan& plan,
    double epoch_interval_s, const ClusterChaosConfig& chaos,
    ClusterConfig cluster_config) {
  if (auto valid = chaos.Validate(); !valid.ok()) return valid.status();
  if (plan.packets.empty())
    return common::InvalidArgument("replay plan has no packets");

  ClusterChaosReport report;
  report.schedule = BuildClusterChaosSchedule(
      chaos, plan, epoch_interval_s, cluster_config.shards);

  cluster_config.serving.expected_anchors = plan.expected_anchors;
  if (cluster_config.serving.store.anchor_ttl_s <= 0.0 ||
      cluster_config.serving.store.anchor_ttl_s ==
          serving::SessionStoreConfig{}.anchor_ttl_s)
    cluster_config.serving.store.anchor_ttl_s = plan.suggested_anchor_ttl_s;
  cluster_config.serving.start_paused = false;

  serving::ManualClock clock(0.0);
  // The golden twin: one unsharded localizer fed the same accepted
  // packets at the same clock steps and flush cadence.  Any bit
  // difference between its responses and the cluster's is a replication
  // or recovery bug.
  serving::ManualClock golden_clock(0.0);
  std::unique_ptr<serving::StreamingLocalizer> golden;
  if (chaos.check_parity) {
    serving::ServingConfig golden_config = cluster_config.serving;
    NOMLOC_ASSIGN_OR_RETURN(
        golden, serving::StreamingLocalizer::Create(
                    engine, std::move(golden_config), &golden_clock));
  }
  NOMLOC_ASSIGN_OR_RETURN(
      auto cluster, Cluster::Create(engine, std::move(cluster_config), &clock));

  const auto& events = report.schedule.events;
  std::vector<bool> started(events.size(), false);
  std::vector<bool> ended(events.size(), false);
  std::vector<std::size_t> unclean_pending;
  std::vector<serving::ServeResponse> golden_responses;

  std::size_t i = 0;
  while (i < plan.packets.size()) {
    const double t = plan.packets[i].timestamp_s;

    // Fire event edges due at or before this timestamp group.  Everything
    // up to here is flushed, so a kill loses no in-flight work.
    for (std::size_t e = 0; e < events.size(); ++e) {
      const ClusterChaosEvent& event = events[e];
      if (!started[e] && event.start_s <= t) {
        started[e] = true;
        switch (event.kind) {
          case ClusterChaosEventKind::kShardKill:
            if (cluster->ShardLive(event.shard) &&
                cluster->Checkpoint(event.shard).ok()) {
              cluster->Kill(event.shard);
              ++report.kills;
            } else {
              ended[e] = true;  // Already down (overlapping kill): no-op.
            }
            break;
          case ClusterChaosEventKind::kShardMigrate:
            if (cluster->Migrate(event.shard).ok()) ++report.migrations;
            ended[e] = true;
            break;
          case ClusterChaosEventKind::kTransportStall:
            ++report.stall_windows;
            break;
          case ClusterChaosEventKind::kShardKillUnclean:
            // Deferred: the crash fires after this group's packets are
            // written but before the group is flushed, so bytes in
            // flight to the primary die unapplied.
            if (cluster->ShardLive(event.shard)) {
              unclean_pending.push_back(e);
            } else {
              ended[e] = true;  // Already down: no-op window.
            }
            break;
        }
      }
      if (started[e] && !ended[e] && event.end_s <= t) {
        // A deferred crash that hasn't fired yet keeps its window open:
        // the recovery edge must land on a group after the kill.
        if (event.kind == ClusterChaosEventKind::kShardKillUnclean &&
            std::find(unclean_pending.begin(), unclean_pending.end(), e) !=
                unclean_pending.end())
          continue;
        ended[e] = true;
        if (event.kind == ClusterChaosEventKind::kShardKill &&
            !cluster->ShardLive(event.shard) &&
            cluster->Restart(event.shard, /*restore=*/true).ok())
          ++report.restores;
        if (event.kind == ClusterChaosEventKind::kShardKillUnclean &&
            !cluster->ShardLive(event.shard) &&
            cluster->Recover(event.shard).ok())
          ++report.recoveries;
      }
    }
    // (Re-)apply stalls whose window covers this group.
    for (std::size_t e = 0; e < events.size(); ++e)
      if (started[e] && !ended[e] &&
          events[e].kind == ClusterChaosEventKind::kTransportStall)
        cluster->SetStalled(events[e].shard, true);

    clock.Set(t);
    golden_clock.Set(t);

    for (; i < plan.packets.size() && plan.packets[i].timestamp_s == t; ++i) {
      const serving::IngestPacket& packet = plan.packets[i];
      switch (cluster->Ingest(packet)) {
        case serving::AdmitStatus::kAccepted:
          ++report.admit_accepted;
          if (packet.kind == serving::PacketKind::kQuery)
            ++report.accepted_queries;
          // The golden twin sees exactly the accepted stream, so a typed
          // rejection (stall backpressure, breaker) never breaks parity.
          if (golden != nullptr) golden->Ingest(packet);
          break;
        case serving::AdmitStatus::kRejectedQueueFull:
          ++report.admit_rejected_backpressure;
          break;
        case serving::AdmitStatus::kRejectedBreakerOpen:
          ++report.admit_rejected_breaker;
          break;
        case serving::AdmitStatus::kRejectedDeadline:
          ++report.admit_rejected_deadline;
          break;
        default:
          break;
      }
    }

    // The crash end of the spectrum: kill between the group's write and
    // its flush, so the primary dies with this group's bytes in flight.
    // No checkpoint — recovery must come from replication + the WAL.
    for (std::size_t e : unclean_pending) {
      cluster->Kill(events[e].shard, /*unclean=*/true);
      ++report.kills_unclean;
    }
    unclean_pending.clear();

    // A flush through a stalled pipe would never ack: clear every active
    // stall first (the window re-applies it on the next group).
    for (std::size_t e = 0; e < events.size(); ++e)
      if (started[e] && !ended[e] &&
          events[e].kind == ClusterChaosEventKind::kTransportStall)
        cluster->SetStalled(events[e].shard, false);
    cluster->Flush();
    if (golden != nullptr) {
      golden->Flush();
      std::vector<serving::ServeResponse> group = golden->TakeResponses();
      golden_responses.insert(golden_responses.end(), group.begin(),
                              group.end());
    }
  }
  // Close any crash window whose recovery edge fell past the last group
  // (the stream ended while the shard was down): every executed unclean
  // kill ends in Recover(), so the tallies balance and Shutdown sees a
  // fully live cluster.
  for (std::size_t e = 0; e < events.size(); ++e)
    if (started[e] && !ended[e] &&
        events[e].kind == ClusterChaosEventKind::kShardKillUnclean) {
      ended[e] = true;
      if (!cluster->ShardLive(events[e].shard) &&
          cluster->Recover(events[e].shard).ok())
        ++report.recoveries;
    }
  cluster->Flush();
  std::vector<ClusterResponse> responses = cluster->TakeResponses();
  cluster->Shutdown();
  if (golden != nullptr) {
    golden->Flush();
    std::vector<serving::ServeResponse> last = golden->TakeResponses();
    golden_responses.insert(golden_responses.end(), last.begin(), last.end());
    golden->Shutdown();
  }

  std::sort(responses.begin(), responses.end(),
            [](const ClusterResponse& a, const ClusterResponse& b) {
              if (a.response.timestamp_s != b.response.timestamp_s)
                return a.response.timestamp_s < b.response.timestamp_s;
              return a.response.object_id < b.response.object_id;
            });

  if (golden != nullptr) {
    report.parity_checked = true;
    const auto bits64 = [](double v) {
      std::uint64_t u = 0;
      std::memcpy(&u, &v, sizeof u);
      return u;
    };
    std::map<std::pair<std::uint64_t, std::uint64_t>,
             const serving::ServeResponse*>
        expected;
    for (const serving::ServeResponse& r : golden_responses)
      expected[{r.object_id, bits64(r.timestamp_s)}] = &r;
    for (const ClusterResponse& received : responses) {
      const serving::WireResponse& w = received.response;
      ++report.parity_compared;
      const auto it = expected.find({w.object_id, bits64(w.timestamp_s)});
      if (it == expected.end()) {
        ++report.parity_mismatches;  // Cluster response the golden lacks.
        continue;
      }
      const serving::ServeResponse& g = *it->second;
      const bool same =
          w.status == static_cast<std::uint8_t>(g.status) &&
          w.degradation == static_cast<std::uint8_t>(g.degradation) &&
          w.degraded == g.degraded &&
          w.anchor_count == std::uint32_t(g.anchor_count) &&
          bits64(w.position.x) == bits64(g.estimate.position.x) &&
          bits64(w.position.y) == bits64(g.estimate.position.y) &&
          bits64(w.relaxation_cost) == bits64(g.estimate.relaxation_cost) &&
          bits64(w.feasible_area_m2) == bits64(g.estimate.feasible_area_m2) &&
          bits64(w.confidence) == bits64(g.confidence);
      if (!same) ++report.parity_mismatches;
      expected.erase(it);
    }
    // Whatever the golden still expects, the cluster lost.
    report.parity_mismatches += expected.size();
  }

  const auto ok_status =
      static_cast<std::uint8_t>(serving::ServeStatus::kOk);
  double tail_error_sum = 0.0;
  std::size_t tail_error_count = 0;
  report.outcomes.reserve(responses.size());
  for (const ClusterResponse& received : responses) {
    const serving::WireResponse& response = received.response;
    ClusterChaosOutcome outcome;
    outcome.object_id = response.object_id;
    outcome.epoch = std::size_t(response.timestamp_s / epoch_interval_s);
    outcome.timestamp_s = response.timestamp_s;
    outcome.status = response.status;
    outcome.degradation = response.degradation;
    outcome.confidence = response.confidence;
    const std::size_t row =
        outcome.epoch * plan.objects + std::size_t(response.object_id);
    if (response.status == ok_status && row < plan.epochs.size())
      outcome.error_m = geometry::Distance(response.position,
                                           plan.epochs[row].true_position);
    if (response.status == ok_status &&
        outcome.timestamp_s > report.schedule.last_event_end_s) {
      tail_error_sum += outcome.error_m;
      ++tail_error_count;
    }
    report.outcomes.push_back(outcome);
  }
  if (tail_error_count > 0)
    report.tail_mean_error_m = tail_error_sum / double(tail_error_count);
  return report;
}

}  // namespace nomloc::cluster
