#include "cluster/placement.h"

#include <algorithm>
#include <numeric>

namespace nomloc::cluster {

namespace {

/// splitmix64 finalizer: the same full-avalanche mix SessionStore uses
/// for shard routing, so placement quality matches the in-process shards.
std::uint64_t Mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

common::Result<PlacementTable> PlacementTable::Create(std::size_t shards,
                                                      std::uint64_t seed) {
  if (shards == 0)
    return common::InvalidArgument("placement needs at least one shard");
  std::vector<std::uint64_t> salts;
  salts.reserve(shards);
  // Each slot's salt is a mixed function of (seed, slot index): stable
  // under resize — slot i's salt is the same in an N-slot and an
  // (N+1)-slot table, which is what bounds the remap to the new slot's
  // winners.
  for (std::size_t slot = 0; slot < shards; ++slot)
    salts.push_back(Mix64(seed ^ Mix64(std::uint64_t(slot) + 1)));
  return PlacementTable(std::move(salts), seed);
}

common::Result<PlacementTable> PlacementTable::Grown() const {
  NOMLOC_ASSIGN_OR_RETURN(PlacementTable grown,
                          Create(salts_.size() + 1, seed_));
  grown.epoch_ = epoch_ + 1;
  return grown;
}

std::uint64_t PlacementTable::Weight(std::size_t slot,
                                     std::uint64_t object_id) const noexcept {
  return Mix64(salts_[slot] ^ Mix64(object_id));
}

std::size_t PlacementTable::ShardOf(std::uint64_t object_id) const noexcept {
  std::size_t best = 0;
  std::uint64_t best_weight = Weight(0, object_id);
  for (std::size_t slot = 1; slot < salts_.size(); ++slot) {
    const std::uint64_t weight = Weight(slot, object_id);
    if (weight > best_weight) {
      best_weight = weight;
      best = slot;
    }
  }
  return best;
}

void PlacementTable::PreferenceOrder(std::uint64_t object_id,
                                     std::vector<std::size_t>& out) const {
  out.resize(salts_.size());
  std::iota(out.begin(), out.end(), std::size_t{0});
  std::sort(out.begin(), out.end(), [&](std::size_t a, std::size_t b) {
    const std::uint64_t wa = Weight(a, object_id);
    const std::uint64_t wb = Weight(b, object_id);
    if (wa != wb) return wa > wb;
    return a < b;  // 64-bit ties are ~impossible; keep the order total.
  });
}

}  // namespace nomloc::cluster
