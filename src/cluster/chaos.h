// Deterministic shard-level chaos harness for the cluster layer.
//
// Where serving/chaos.h perturbs the *data* plane (anchor death, trace
// corruption), this harness perturbs the *topology*: shard kills with
// later checkpoint-restores, live migrations, and transport stalls, all
// drawn from a seeded schedule over a ReplayPlan's timeline.  A run is a
// pure function of (plan, chaos config, cluster config), so every seed is
// a reproducible topology-failure scenario.
//
// The ctest suite (labels `cluster` + `chaos`) replays several seeds and
// asserts the resilience invariants:
//
//   * no crash, and exactly one response per accepted query — events fire
//     on flushed epoch boundaries, so no in-flight work is ever lost
//     (except kShardKillUnclean, which deliberately crashes between a
//     group's write and its flush — replication + WAL replay must then
//     prove that *still* nothing accepted was lost);
//   * monotone degradation: while a shard is down its packets reroute to
//     the next shard in rendezvous preference order (or reject with a
//     typed verdict) — they are never silently dropped;
//   * post-recovery parity: after the last event clears, tail-epoch
//     accuracy returns to the fault-free run's.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "cluster/cluster.h"
#include "common/status.h"
#include "serving/replay.h"

namespace nomloc::cluster {

enum class ClusterChaosEventKind {
  /// Checkpoint + kill at start_s; restart-with-restore at end_s.
  kShardKill,
  /// Live migration (drain, filtered checkpoint, host swap) at start_s.
  kShardMigrate,
  /// Ingest-direction transport stall over [start_s, end_s): packets queue
  /// in the pipe and overflow as typed backpressure.  The harness clears
  /// the stall before each epoch flush (a flush through a stalled pipe
  /// would never ack) and re-applies it while the window lasts.
  kTransportStall,
  /// Crash kill: NO checkpoint is taken, and the kill deliberately lands
  /// mid-epoch OFF the flushed boundary — it fires after the trigger
  /// group's packets were written but before that group is flushed, so
  /// bytes in flight to the primary die unapplied (the replicate stream
  /// to the standby keeps them).  The window ends with Recover(): WAL
  /// replay + anti-entropy repair, never a graceful drain.  Meaningful
  /// with ClusterConfig::replicate and/or durable_dir.
  kShardKillUnclean,
};

std::string_view ClusterChaosEventKindName(
    ClusterChaosEventKind kind) noexcept;

struct ClusterChaosEvent {
  ClusterChaosEventKind kind = ClusterChaosEventKind::kShardKill;
  std::size_t shard = 0;
  double start_s = 0.0;
  double end_s = 0.0;  ///< Migrations are instantaneous: end_s == start_s.
};

struct ClusterChaosConfig {
  std::uint64_t seed = 1;
  std::size_t events = 4;
  /// Event-kind mix (relative weights; zero disables a kind).
  double kill_weight = 3.0;
  double migrate_weight = 2.0;
  double stall_weight = 2.0;
  /// Crash kills (kShardKillUnclean); off by default so pre-replication
  /// seeds reproduce bit-identically.
  double kill_unclean_weight = 0.0;
  /// Kill / stall windows last up to this many epoch intervals.
  double max_window_epochs = 2.0;
  /// Run an unsharded golden localizer over the *accepted* packets in
  /// lockstep and bit-compare every response against the cluster's.  The
  /// replication invariant: with replicate on and a mix of unclean kills
  /// + migrations (no clean kills — Restart(restore) legitimately drops
  /// post-checkpoint sessions), every mismatch is a bug.
  bool check_parity = false;

  common::Result<void> Validate() const;
};

struct ClusterChaosSchedule {
  std::vector<ClusterChaosEvent> events;  ///< Sorted by start_s.
  double last_event_end_s = 0.0;
};

/// Derives the deterministic event schedule for one replay plan.  Targets
/// are drawn from [0, shards); windows snap to the epoch grid so every
/// event fires on a flushed boundary.
ClusterChaosSchedule BuildClusterChaosSchedule(
    const ClusterChaosConfig& config, const serving::ReplayPlan& plan,
    double epoch_interval_s, std::size_t shards);

/// One query's outcome, joined against the plan's golden truth.
struct ClusterChaosOutcome {
  std::uint64_t object_id = 0;
  std::size_t epoch = 0;
  double timestamp_s = 0.0;
  std::uint8_t status = 0;       ///< serving::ServeStatus.
  std::uint8_t degradation = 0;  ///< common::DegradationLevel.
  double confidence = 0.0;
  /// Distance to the epoch's true position [m]; meaningful when status
  /// is kOk.
  double error_m = 0.0;
};

struct ClusterChaosReport {
  ClusterChaosSchedule schedule;
  std::vector<ClusterChaosOutcome> outcomes;
  /// Topology-event tallies (as executed, not just scheduled).
  std::size_t kills = 0;
  std::size_t restores = 0;
  std::size_t migrations = 0;
  std::size_t stall_windows = 0;
  /// Crash kills executed and Recover() completions (unclean windows).
  std::size_t kills_unclean = 0;
  std::size_t recoveries = 0;
  /// Admission tallies over the whole stream.
  std::size_t admit_accepted = 0;
  std::size_t admit_rejected_backpressure = 0;
  std::size_t admit_rejected_breaker = 0;
  std::size_t admit_rejected_deadline = 0;
  /// Accepted queries (every one must produce exactly one outcome).
  std::size_t accepted_queries = 0;
  /// Mean kOk error over epochs strictly after the last event cleared;
  /// negative when no such epoch produced a kOk response.
  double tail_mean_error_m = -1.0;
  /// Golden bit-parity (check_parity): responses compared, and the count
  /// of mismatches — bit-different fields, cluster responses the golden
  /// never produced, or golden responses the cluster lost.  A clean run
  /// has parity_checked && parity_mismatches == 0.
  bool parity_checked = false;
  std::size_t parity_compared = 0;
  std::size_t parity_mismatches = 0;
};

/// Replays `plan` through a fresh Cluster while applying the schedule.
/// The harness drives router admission on a ManualClock stepped to each
/// timestamp group and flushes every group, so events fire on drained
/// boundaries — except unclean kills, which fire between a group's
/// ingest and its flush.  Fully deterministic for a given configuration:
/// an unclean kill's in-flight loss is nondeterministic per host, but
/// the post-failover state is donor-authoritative (the standby saw every
/// accepted observation synchronously), so responses are not.
common::Result<ClusterChaosReport> RunClusterChaos(
    const core::NomLocEngine& engine, const serving::ReplayPlan& plan,
    double epoch_interval_s, const ClusterChaosConfig& chaos,
    ClusterConfig cluster_config);

}  // namespace nomloc::cluster
