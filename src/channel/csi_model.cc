#include "channel/csi_model.h"

#include <cmath>
#include <numbers>

#include "channel/propagation_cache.h"
#include "common/assert.h"
#include "dsp/ofdm.h"
#include "simd/kernels.h"

namespace nomloc::channel {

using dsp::Cplx;
using dsp::CsiFrame;

LinkModel::LinkModel(std::vector<PropagationPath> paths,
                     const ChannelConfig& config)
    : paths_(std::move(paths)), config_(config) {
  NOMLOC_REQUIRE(!paths_.empty());
  NOMLOC_REQUIRE(config_.rx_antennas >= 1);
  NOMLOC_REQUIRE(config_.antenna_spacing_wavelengths > 0.0);
  subcarriers_ = config_.intel5300_grouping ? CsiFrame::Intel5300Indices()
                                            : CsiFrame::Ht20Indices();
  amp_.reserve(paths_.size());
  delay_s_.reserve(paths_.size());
  k_linear_.reserve(paths_.size());
  const double k_direct = common::FromDb(config_.rician_k_db);
  const double k_bounce = common::FromDb(config_.bounce_rician_k_db);
  for (const PropagationPath& p : paths_) {
    const double rx_dbm = config_.tx_power_dbm - p.loss_db;
    amp_.push_back(std::sqrt(common::DbmToMilliwatts(rx_dbm)));
    delay_s_.push_back(p.DelayS());
    // The direct path keeps a strong deterministic component (Rician);
    // bounced paths default to (near-)Rayleigh but can be made stable for
    // static-environment studies via bounce_rician_k_db.
    k_linear_.push_back(p.is_direct ? k_direct : k_bounce);
  }
  noise_variance_mw_ = common::DbmToMilliwatts(config_.noise_floor_dbm);
  tones_ = std::make_shared<ToneTable>();
}

const LinkModel::ToneTable& LinkModel::Tones() const {
  // Delay phasor tables: cos/sin of the exact angles Synthesize used to
  // recompute per packet, so the hot loop is a pure complex axpy.  Values
  // are bit-identical to the historical per-call trigonometry.  Built on
  // first use rather than in the constructor: MakeLink stays cheap for
  // callers that trace a link without ever sampling it (e.g. the
  // trace.repeated_link bench), and copies of a model share one table.
  std::call_once(tones_->once, [this] {
    const double df = config_.bandwidth_hz / double(config_.fft_size);
    const std::size_t stride = subcarriers_.size();
    tones_->re.resize(paths_.size() * stride);
    tones_->im.resize(paths_.size() * stride);
    for (std::size_t p = 0; p < paths_.size(); ++p) {
      for (std::size_t i = 0; i < stride; ++i) {
        const double f = double(subcarriers_[i]) * df;
        const double ang = -2.0 * std::numbers::pi * f * delay_s_[p];
        tones_->re[p * stride + i] = std::cos(ang);
        tones_->im[p * stride + i] = std::sin(ang);
      }
    }
  });
  return *tones_;
}

std::vector<Cplx> LinkModel::DrawGains(common::Rng& rng) const {
  std::vector<Cplx> gains;
  gains.reserve(paths_.size());
  for (std::size_t p = 0; p < paths_.size(); ++p) {
    // Rician with K = k_linear_[p] (K = 0 is Rayleigh).
    const double kk = k_linear_[p];
    const Cplx diffuse = rng.ComplexGaussian(1.0 / (kk + 1.0));
    const double los = std::sqrt(kk / (kk + 1.0));
    gains.push_back(Cplx(los, 0.0) + diffuse);
  }
  return gains;
}

CsiFrame LinkModel::Synthesize(std::span<const Cplx> gains,
                               common::Rng* noise_rng, int antenna) const {
  NOMLOC_REQUIRE(gains.empty() || gains.size() == paths_.size());
  NOMLOC_REQUIRE(antenna >= 0 && antenna < config_.rx_antennas);
  const std::size_t stride = subcarriers_.size();
  const ToneTable& tones = Tones();

  // Split-complex accumulators, reused across packets on each thread.
  thread_local std::vector<double> acc_re, acc_im;
  acc_re.assign(stride, 0.0);
  acc_im.assign(stride, 0.0);

  for (std::size_t p = 0; p < paths_.size(); ++p) {
    const Cplx gain = gains.empty() ? Cplx(1.0, 0.0) : gains[p];
    // Deterministic carrier phase of the path, plus the uniform-linear-
    // array offset of this antenna: 2*pi*spacing*m*cos(aoa).
    const double array_phase =
        2.0 * std::numbers::pi * config_.antenna_spacing_wavelengths *
        double(antenna) * std::cos(paths_[p].aoa_rad);
    const double carrier_phase =
        -2.0 * std::numbers::pi * config_.carrier_hz * delay_s_[p] +
        array_phase;
    const Cplx base =
        gain * amp_[p] * Cplx(std::cos(carrier_phase), std::sin(carrier_phase));
    // values[i] += base * tone(p, i), over the precomputed phasor table.
    simd::CplxAxpy(stride, base.real(), base.imag(),
                   tones.re.data() + p * stride, tones.im.data() + p * stride,
                   acc_re.data(), acc_im.data());
  }

  std::vector<Cplx> values(stride, Cplx(0.0, 0.0));
  simd::Interleave(stride, acc_re.data(), acc_im.data(), values.data());

  if (noise_rng != nullptr) {
    for (Cplx& v : values) v += noise_rng->ComplexGaussian(noise_variance_mw_);
  }

  auto frame = CsiFrame::Create(subcarriers_, std::move(values),
                                config_.fft_size);
  NOMLOC_ASSERT(frame.ok());
  return std::move(frame).value();
}

CsiFrame LinkModel::Sample(common::Rng& rng) const {
  return Synthesize(DrawGains(rng), &rng);
}

std::vector<CsiFrame> LinkModel::SampleBatch(std::size_t count,
                                             common::Rng& rng) const {
  NOMLOC_REQUIRE(count >= 1);
  const double rho = config_.fading_correlation;
  NOMLOC_REQUIRE(rho >= 0.0 && rho < 1.0);
  std::vector<CsiFrame> out;
  out.reserve(count);
  if (rho == 0.0) {
    for (std::size_t i = 0; i < count; ++i) out.push_back(Sample(rng));
    return out;
  }

  // AR(1) Gauss-Markov evolution of the *diffuse* fading component: the
  // deterministic Rician mean stays fixed, the scattered part decorrelates
  // at rate rho per packet, preserving the marginal distribution.
  std::vector<Cplx> diffuse(paths_.size());
  for (std::size_t p = 0; p < paths_.size(); ++p)
    diffuse[p] = rng.ComplexGaussian(1.0 / (k_linear_[p] + 1.0));
  const double innovation = std::sqrt(1.0 - rho * rho);
  std::vector<Cplx> gains(paths_.size());
  for (std::size_t i = 0; i < count; ++i) {
    for (std::size_t p = 0; p < paths_.size(); ++p) {
      if (i > 0) {
        diffuse[p] = rho * diffuse[p] +
                     innovation *
                         rng.ComplexGaussian(1.0 / (k_linear_[p] + 1.0));
      }
      const double los = std::sqrt(k_linear_[p] / (k_linear_[p] + 1.0));
      gains[p] = Cplx(los, 0.0) + diffuse[p];
    }
    out.push_back(Synthesize(gains, &rng));
  }
  return out;
}

MimoCsiFrame LinkModel::SampleMimo(common::Rng& rng) const {
  // Spatially-uncorrelated fading model for >= lambda/2 spacing: the
  // deterministic (LOS) component is shared across the array (up to the
  // per-antenna array phase applied in Synthesize); the diffuse component
  // is drawn independently per antenna — that independence is what makes
  // antenna diversity pay off.
  MimoCsiFrame frame;
  frame.reserve(std::size_t(config_.rx_antennas));
  for (int antenna = 0; antenna < config_.rx_antennas; ++antenna)
    frame.push_back(Synthesize(DrawGains(rng), &rng, antenna));
  return frame;
}

std::vector<MimoCsiFrame> LinkModel::SampleMimoBatch(std::size_t count,
                                                     common::Rng& rng) const {
  NOMLOC_REQUIRE(count >= 1);
  std::vector<MimoCsiFrame> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(SampleMimo(rng));
  return out;
}

CsiFrame LinkModel::MeanResponse() const { return Synthesize({}, nullptr); }

std::vector<Cplx> LinkModel::SampleImpulseResponse(
    common::Rng* rng, std::size_t max_taps, double lead_in_samples) const {
  NOMLOC_REQUIRE(max_taps >= 1);
  NOMLOC_REQUIRE(lead_in_samples >= 0.0);
  const double sample_rate = config_.bandwidth_hz;
  std::vector<Cplx> gains;
  if (rng != nullptr) gains = DrawGains(*rng);

  std::vector<Cplx> taps(max_taps, Cplx(0.0, 0.0));
  for (std::size_t p = 0; p < paths_.size(); ++p) {
    const Cplx gain = gains.empty() ? Cplx(1.0, 0.0) : gains[p];
    const double carrier_phase =
        -2.0 * std::numbers::pi * config_.carrier_hz * delay_s_[p];
    const Cplx a = gain * amp_[p] *
                   Cplx(std::cos(carrier_phase), std::sin(carrier_phase));
    // Fractional delay by windowed-sinc interpolation: the band-limited
    // sampling of a delayed impulse.  (A naive two-tap linear split would
    // act as a triangular low-pass and crush the band edges, visibly
    // biasing the PDP — see tests/dsp_ofdm_test.cc.)
    const double pos = delay_s_[p] * sample_rate + lead_in_samples;
    constexpr int kHalfKernel = 8;
    const int center = int(std::lround(pos));
    for (int n = center - kHalfKernel; n <= center + kHalfKernel; ++n) {
      if (n < 0 || std::size_t(n) >= max_taps) continue;
      const double x = double(n) - pos;
      const double sinc =
          x == 0.0 ? 1.0
                   : std::sin(std::numbers::pi * x) / (std::numbers::pi * x);
      // Hann window over the kernel support tapers the truncation.
      const double w =
          0.5 * (1.0 + std::cos(std::numbers::pi * x / (kHalfKernel + 1)));
      taps[std::size_t(n)] += a * sinc * w;
    }
    // Paths beyond the window are dropped (they are below the cutoff in
    // any realistic configuration).
  }
  return taps;
}

common::Result<dsp::CsiFrame> LinkModel::MeasurePhyCsi(
    common::Rng* rng) const {
  dsp::OfdmConfig ofdm;
  ofdm.fft_size = config_.fft_size;
  ofdm.subcarriers = subcarriers_;

  // One dummy data symbol keeps the burst well-formed; only the training
  // symbol matters for CSI.
  const std::vector<Cplx> payload(subcarriers_.size(), Cplx(1.0, 0.0));
  NOMLOC_ASSIGN_OR_RETURN(dsp::OfdmBurst burst,
                          dsp::ModulateBurst(payload, ofdm));

  // A small lead-in keeps the fractional-delay kernel's precursor inside
  // the tap window; the receiver synchronises the same amount later.
  constexpr std::size_t kLeadIn = 4;
  const std::vector<Cplx> taps = SampleImpulseResponse(
      rng, std::size_t(ofdm.cyclic_prefix), double(kLeadIn));
  // Per-sample time-domain noise variance that matches the direct model's
  // per-subcarrier floor: an N-point FFT scales noise power by N.
  const double time_noise =
      rng != nullptr ? noise_variance_mw_ / double(config_.fft_size) : 0.0;
  common::Rng null_rng(0);
  const std::vector<Cplx> rx = dsp::ApplyChannel(
      burst.waveform, taps, time_noise, rng != nullptr ? *rng : null_rng);

  NOMLOC_ASSIGN_OR_RETURN(
      dsp::DemodResult demod,
      dsp::DemodulateBurst(std::span<const Cplx>(rx).subspan(kLeadIn),
                           burst.data_symbol_count, ofdm));
  return demod.csi;
}

LinkModel CsiSimulator::MakeLink(geometry::Vec2 tx, geometry::Vec2 rx) const {
  // Memoized: repeated links (every frame of a measurement epoch) skip the
  // ray trace entirely.  Copying the cached path list into the LinkModel is
  // a few dozen PODs — negligible next to the trace it replaces.
  return LinkModel(*PropagationCache::Global().Trace(*env_, tx, rx,
                                                     config_.propagation),
                   config_);
}

dsp::CsiFrame CsiSimulator::SampleOne(geometry::Vec2 tx, geometry::Vec2 rx,
                                      common::Rng& rng) const {
  return MakeLink(tx, rx).Sample(rng);
}

}  // namespace nomloc::channel
