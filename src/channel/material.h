// Building materials and their RF interaction losses at 2.4 GHz.
// Loss values follow commonly cited indoor-propagation measurements
// (ITU-R P.2040 ballpark); exact numbers only shift absolute powers, and
// NomLoc consumes power *ratios*, so ballpark accuracy suffices.
#pragma once

#include <string>

namespace nomloc::channel {

struct Material {
  std::string name;
  /// Power lost on specular reflection off a surface of this material [dB].
  double reflection_loss_db = 6.0;
  /// Power lost passing through this material [dB].
  double transmission_loss_db = 6.0;
};

namespace materials {

/// Load-bearing concrete: strong blocker, decent reflector.
Material Concrete();
/// Interior drywall/partition.
Material Drywall();
/// Glass pane: weak blocker, weak reflector.
Material Glass();
/// Metal cabinet/server rack: near-total blocker, excellent reflector.
Material Metal();
/// Wooden furniture.
Material Wood();
/// Human body (the nomadic-AP carrier).
Material Human();

}  // namespace materials
}  // namespace nomloc::channel
