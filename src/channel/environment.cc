#include "channel/environment.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/assert.h"
#include "common/metrics.h"

namespace nomloc::channel {

using geometry::Segment;
using geometry::Vec2;

namespace {

// Process-unique content-version stamps; 0 is reserved for the
// default-constructed placeholder.
std::uint64_t NextEpoch() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

constexpr int kGeometryUnresolved = -1;

// The backend every segment query reads.  -1 until first resolution.
std::atomic<int> g_trace_geometry{kGeometryUnresolved};

int ResolveAndPublishGeometry() noexcept {
  const TraceGeometry mode = ResolveTraceGeometry();
  int expected = kGeometryUnresolved;
  if (g_trace_geometry.compare_exchange_strong(expected, int(mode),
                                               std::memory_order_acq_rel)) {
    // Record the startup decision once (racing first callers adopt the
    // winner's mode and skip the metric).
    common::MetricRegistry::Global()
        .Counter("channel.trace.geom",
                 std::string("mode=") + TraceGeometryName(mode))
        .Increment();
    return int(mode);
  }
  return expected;
}

}  // namespace

const char* TraceGeometryName(TraceGeometry mode) noexcept {
  switch (mode) {
    case TraceGeometry::kIndexed:
      return "indexed";
    case TraceGeometry::kBrute:
      return "brute";
  }
  return "unknown";
}

TraceGeometry ResolveTraceGeometry() noexcept {
  const char* v = std::getenv("NOMLOC_FORCE_BRUTE_TRACE");
  if (v != nullptr &&
      (std::strcmp(v, "1") == 0 || std::strcmp(v, "true") == 0 ||
       std::strcmp(v, "yes") == 0 || std::strcmp(v, "on") == 0))
    return TraceGeometry::kBrute;
  return TraceGeometry::kIndexed;
}

TraceGeometry ActiveTraceGeometry() noexcept {
  int mode = g_trace_geometry.load(std::memory_order_acquire);
  if (mode == kGeometryUnresolved) mode = ResolveAndPublishGeometry();
  return TraceGeometry(mode);
}

void ForceTraceGeometry(TraceGeometry mode) noexcept {
  g_trace_geometry.store(int(mode), std::memory_order_release);
}

common::Result<IndoorEnvironment> IndoorEnvironment::Create(
    geometry::Polygon boundary, std::vector<Wall> interior_walls,
    std::vector<Obstacle> obstacles, Material boundary_material) {
  IndoorEnvironment env;
  const geometry::Aabb box = boundary.BoundingBox();
  for (const Wall& w : interior_walls) {
    if (!box.Contains(w.segment.a) || !box.Contains(w.segment.b))
      return common::InvalidArgument(
          "interior wall extends outside the boundary box");
    if (w.segment.Length() <= 0.0)
      return common::InvalidArgument("zero-length wall");
  }
  for (const Obstacle& o : obstacles) {
    for (const Vec2 v : o.shape.Vertices())
      if (!box.Contains(v))
        return common::InvalidArgument("obstacle outside the boundary box");
  }

  env.boundary_ = std::move(boundary);
  env.obstacles_ = std::move(obstacles);

  for (std::size_t i = 0; i < env.boundary_.EdgeCount(); ++i)
    env.walls_.push_back({env.boundary_.Edge(i), boundary_material});
  for (const Wall& w : interior_walls) {
    env.walls_.push_back(w);
    env.blocking_.push_back(w);
  }
  for (const Obstacle& o : env.obstacles_) {
    for (std::size_t i = 0; i < o.shape.EdgeCount(); ++i) {
      const Wall w{o.shape.Edge(i), o.material};
      env.walls_.push_back(w);
      env.blocking_.push_back(w);
    }
  }
  if (env.blocking_.size() >= kIndexMinSegments) {
    std::vector<Segment> segments;
    segments.reserve(env.blocking_.size());
    for (const Wall& w : env.blocking_) segments.push_back(w.segment);
    env.blocking_index_ = geometry::SegmentIndex::Build(segments);
    common::MetricRegistry::Global()
        .Counter("channel.geom.index.builds")
        .Increment();
  }
  env.epoch_ = NextEpoch();
  return env;
}

bool IndoorEnvironment::HasLineOfSight(Vec2 a, Vec2 b) const noexcept {
  const Segment link{a, b};
  if (UseIndexedQueries()) return !blocking_index_.AnyCrossing(link);
  for (const Wall& w : blocking_)
    if (geometry::SegmentsIntersect(link, w.segment)) return false;
  return true;
}

double IndoorEnvironment::PenetrationLossDb(Vec2 a, Vec2 b) const noexcept {
  const Segment link{a, b};
  double loss = 0.0;
  if (UseIndexedQueries()) {
    // CrossingIndices reports matches in ascending wall order — the same
    // order the brute scan visits — so this sum is bit-identical to it.
    thread_local std::vector<std::uint32_t> crossed;
    crossed.clear();
    blocking_index_.CrossingIndices(link, crossed);
    for (const std::uint32_t i : crossed)
      loss += blocking_[i].material.transmission_loss_db;
    return loss;
  }
  for (const Wall& w : blocking_)
    if (geometry::SegmentsIntersect(link, w.segment))
      loss += w.material.transmission_loss_db;
  return loss;
}

void IndoorEnvironment::PlaceScatterers(std::size_t count, common::Rng& rng) {
  epoch_ = NextEpoch();  // Invalidates cached ray traces of this content.
  scatterers_.clear();
  scatterers_.reserve(count);
  const geometry::Aabb box = boundary_.BoundingBox();
  std::size_t attempts = 0;
  const std::size_t max_attempts = count * 1000 + 1000;
  while (scatterers_.size() < count && attempts++ < max_attempts) {
    const Vec2 p{rng.Uniform(box.lo.x, box.hi.x),
                 rng.Uniform(box.lo.y, box.hi.y)};
    if (IsFreeSpace(p)) scatterers_.push_back(p);
  }
  NOMLOC_ASSERT(scatterers_.size() == count);
}

bool IndoorEnvironment::IsFreeSpace(Vec2 p) const noexcept {
  if (!boundary_.Contains(p)) return false;
  for (const Obstacle& o : obstacles_)
    if (o.shape.Contains(p)) return false;
  return true;
}

}  // namespace nomloc::channel
