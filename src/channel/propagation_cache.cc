#include "channel/propagation_cache.h"

#include <bit>
#include <cmath>
#include <utility>

#include "common/metrics.h"
#include "common/rng.h"

namespace nomloc::channel {

namespace {

constexpr double kPositionQuantumInv = 1e6;  // Quantize positions to 1e-6 m.

std::int64_t Quantize(double v) noexcept {
  return std::llround(v * kPositionQuantumInv);
}

std::uint64_t MixIn(std::uint64_t& state, std::uint64_t word) noexcept {
  state ^= word;
  return common::SplitMix64(state);
}

std::uint64_t DigestConfig(const PropagationConfig& c) noexcept {
  std::uint64_t state = 0x6e6f6d6c6f633243ull;  // Arbitrary fixed seed.
  std::uint64_t digest = MixIn(state, std::bit_cast<std::uint64_t>(c.carrier_hz));
  digest = MixIn(state, std::uint64_t(c.max_reflection_order));
  digest = MixIn(state, std::bit_cast<std::uint64_t>(c.scatter_loss_db));
  digest = MixIn(state, std::uint64_t(c.include_scatterers));
  digest = MixIn(state, std::bit_cast<std::uint64_t>(c.relative_cutoff_db));
  digest = MixIn(state, std::bit_cast<std::uint64_t>(c.min_distance_m));
  return digest;
}

// Makes room in `map` for a new entry of `epoch`: entries stamped with a
// different (necessarily dead, since epochs are process-unique) epoch go
// first; if the shard is still full the whole shard is dropped — entries
// are shared_ptrs, so outstanding references stay valid.
template <typename Map>
void EvictIfFull(Map& map, std::uint64_t epoch, std::size_t max_entries) {
  if (map.size() < max_entries) return;
  for (auto it = map.begin(); it != map.end();) {
    if (it->first.epoch != epoch)
      it = map.erase(it);
    else
      ++it;
  }
  if (map.size() >= max_entries) map.clear();
}

}  // namespace

std::size_t PropagationCache::KeyHash::operator()(const Key& k) const noexcept {
  std::uint64_t state = k.epoch;
  std::uint64_t h = MixIn(state, k.config_digest);
  h = MixIn(state, std::uint64_t(k.qx0));
  h = MixIn(state, std::uint64_t(k.qy0));
  h = MixIn(state, std::uint64_t(k.qx1));
  h = MixIn(state, std::uint64_t(k.qy1));
  return std::size_t(h);
}

PropagationCache& PropagationCache::Global() {
  static PropagationCache cache;
  return cache;
}

std::shared_ptr<const std::vector<PropagationPath>> PropagationCache::Trace(
    const IndoorEnvironment& env, geometry::Vec2 tx, geometry::Vec2 rx,
    const PropagationConfig& config) {
  static common::MetricCounter& hits =
      common::MetricRegistry::Global().Counter("channel.trace.cache.hits");
  static common::MetricCounter& misses =
      common::MetricRegistry::Global().Counter("channel.trace.cache.misses");

  const Key key{env.Epoch(),     DigestConfig(config), Quantize(tx.x),
                Quantize(tx.y),  Quantize(rx.x),       Quantize(rx.y)};
  PathShard& shard = path_shards_[KeyHash{}(key) % kShardCount];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (auto it = shard.map.find(key); it != shard.map.end()) {
      hits.Increment();
      return it->second;
    }
  }
  misses.Increment();

  // Trace outside the lock — the tree-based overload is exactly what the
  // uncached TracePaths(env, tx, rx, config) runs, so hits and misses are
  // bit-identical to never having had a cache at all.
  const std::shared_ptr<const TxImageTree> images =
      Images(env, tx, config.max_reflection_order);
  auto paths = std::make_shared<const std::vector<PropagationPath>>(
      TracePaths(env, *images, rx, config));

  std::lock_guard<std::mutex> lock(shard.mu);
  EvictIfFull(shard.map, key.epoch, kMaxEntriesPerShard);
  auto [it, inserted] = shard.map.emplace(key, std::move(paths));
  // On a concurrent duplicate insert the first writer wins; both traced
  // the same inputs, so adopting the winner changes nothing.
  return it->second;
}

std::shared_ptr<const TxImageTree> PropagationCache::Images(
    const IndoorEnvironment& env, geometry::Vec2 tx, int max_order) {
  static common::MetricCounter& hits =
      common::MetricRegistry::Global().Counter("channel.trace.images.hits");
  static common::MetricCounter& misses =
      common::MetricRegistry::Global().Counter("channel.trace.images.misses");

  Key key;
  key.epoch = env.Epoch();
  key.config_digest = std::uint64_t(max_order);
  key.qx0 = Quantize(tx.x);
  key.qy0 = Quantize(tx.y);
  ImageShard& shard = image_shards_[KeyHash{}(key) % kShardCount];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (auto it = shard.map.find(key); it != shard.map.end()) {
      hits.Increment();
      return it->second;
    }
  }
  misses.Increment();

  auto images = std::make_shared<const TxImageTree>(
      BuildTxImageTree(env, tx, max_order));
  const std::size_t tree_bytes = images->ApproxBytes();

  std::lock_guard<std::mutex> lock(shard.mu);
  // Entry bound plus byte budget: trees scale as O(walls^order), so in
  // large generated worlds a handful of trees can dwarf the entry bound.
  // Stale-epoch entries go first; a same-epoch overflow drops the shard
  // whole (outstanding shared_ptrs stay valid either way).
  const auto over_budget = [&] {
    return shard.map.size() >= kMaxEntriesPerShard ||
           shard.bytes + tree_bytes > image_bytes_per_shard_;
  };
  if (over_budget()) {
    for (auto it = shard.map.begin(); it != shard.map.end() && over_budget();) {
      if (it->first.epoch != key.epoch) {
        shard.bytes -= it->second->ApproxBytes();
        it = shard.map.erase(it);
      } else {
        ++it;
      }
    }
    if (over_budget()) {
      shard.map.clear();
      shard.bytes = 0;
    }
  }
  auto [it, inserted] = shard.map.emplace(key, std::move(images));
  if (inserted) shard.bytes += tree_bytes;
  return it->second;
}

void PropagationCache::Clear() {
  ClearTraces();
  for (ImageShard& shard : image_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
    shard.bytes = 0;
  }
}

void PropagationCache::ClearTraces() {
  for (PathShard& shard : path_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
  }
}

std::size_t PropagationCache::ImageBytes() const {
  std::size_t total = 0;
  for (const ImageShard& shard : image_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.bytes;
  }
  return total;
}

std::size_t PropagationCache::Entries() const {
  std::size_t total = 0;
  for (const PathShard& shard : path_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

}  // namespace nomloc::channel
