// Indoor environment geometry: room boundary, interior walls, obstacles,
// and diffuse scatterers.  This is the world model the ray tracer
// (channel/propagation.h) runs against.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "channel/material.h"
#include "geometry/line.h"
#include "geometry/polygon.h"
#include "geometry/segment_index.h"

namespace nomloc::channel {

/// Geometry backend for the segment queries under ray tracing
/// (HasLineOfSight / PenetrationLossDb): the spatial index, or the
/// brute-force linear wall scan.  Both are bit-identical; the brute path
/// stays available as the oracle for equivalence tests and benchmarks.
enum class TraceGeometry { kIndexed, kBrute };

/// Startup decision: kBrute when NOMLOC_FORCE_BRUTE_TRACE is set in the
/// environment (mirroring the SIMD NOMLOC_FORCE_SCALAR idiom), else
/// kIndexed.  Re-reads the environment on every call.
TraceGeometry ResolveTraceGeometry() noexcept;

/// The backend queries currently use (resolved once, then cached).
TraceGeometry ActiveTraceGeometry() noexcept;

/// Overrides the backend (tests/benchmarks).  Takes effect immediately.
void ForceTraceGeometry(TraceGeometry mode) noexcept;

const char* TraceGeometryName(TraceGeometry mode) noexcept;

/// A reflecting/attenuating planar surface (2-D: a segment).
struct Wall {
  geometry::Segment segment;
  Material material;
};

/// A solid object (cabinet, rack, pillar).  Rays crossing its edges pay the
/// material's transmission loss per crossed edge; its edges also reflect.
struct Obstacle {
  geometry::Polygon shape;
  Material material;
};

class IndoorEnvironment {
 public:
  /// Builds an environment.  The boundary polygon's edges become walls of
  /// `boundary_material`.  Interior walls and obstacles must lie within
  /// the boundary's bounding box (loose sanity check).
  static common::Result<IndoorEnvironment> Create(
      geometry::Polygon boundary, std::vector<Wall> interior_walls = {},
      std::vector<Obstacle> obstacles = {},
      Material boundary_material = materials::Concrete());

  const geometry::Polygon& Boundary() const noexcept { return boundary_; }
  /// All reflecting surfaces: boundary edges first, then interior walls,
  /// then obstacle edges.
  std::span<const Wall> Walls() const noexcept { return walls_; }
  std::span<const Obstacle> Obstacles() const noexcept { return obstacles_; }
  /// The attenuating subset of Walls(): interior walls + obstacle edges.
  std::span<const Wall> BlockingWalls() const noexcept { return blocking_; }

  /// Spatial index over BlockingWalls(); empty for worlds below
  /// kIndexMinSegments, where the linear scan is already faster.
  const geometry::SegmentIndex& BlockingIndex() const noexcept {
    return blocking_index_;
  }
  /// Smallest blocking-wall count for which Create() builds the index.
  static constexpr std::size_t kIndexMinSegments = 16;

  /// True when the straight segment a–b crosses no interior wall and no
  /// obstacle edge (boundary edges do not block interior links).
  bool HasLineOfSight(geometry::Vec2 a, geometry::Vec2 b) const noexcept;

  /// Total transmission loss [dB] the segment a–b pays crossing interior
  /// walls and obstacle edges.
  double PenetrationLossDb(geometry::Vec2 a, geometry::Vec2 b) const noexcept;

  /// Places `count` point scatterers uniformly inside the boundary but
  /// outside obstacles (rejection sampling).  Models clutter: furniture,
  /// equipment.  Deterministic given the Rng state.
  void PlaceScatterers(std::size_t count, common::Rng& rng);
  std::span<const geometry::Vec2> Scatterers() const noexcept {
    return scatterers_;
  }

  /// True when p is inside the boundary and outside every obstacle.
  bool IsFreeSpace(geometry::Vec2 p) const noexcept;

  /// Content-version stamp: equal Epoch() values guarantee identical
  /// geometry and scatterers.  Every Create() and every mutation
  /// (PlaceScatterers) draws a fresh process-unique value; copies inherit
  /// their source's stamp, so identical copies legitimately share cached
  /// ray-trace results (channel/propagation_cache.h) while any mutated
  /// environment invalidates itself automatically.
  std::uint64_t Epoch() const noexcept { return epoch_; }

 private:
  IndoorEnvironment() = default;

  bool UseIndexedQueries() const noexcept {
    return !blocking_index_.Empty() &&
           ActiveTraceGeometry() == TraceGeometry::kIndexed;
  }

  geometry::Polygon boundary_ = geometry::Polygon::Rectangle(0, 0, 1, 1);
  std::vector<Wall> walls_;        // Boundary + interior + obstacle edges.
  std::vector<Wall> blocking_;     // Interior walls + obstacle edges only.
  geometry::SegmentIndex blocking_index_;  // Over blocking_ segments.
  std::vector<Obstacle> obstacles_;
  std::vector<geometry::Vec2> scatterers_;
  std::uint64_t epoch_ = 0;
};

}  // namespace nomloc::channel
