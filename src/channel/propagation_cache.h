// Memoized ray tracing.  TracePaths dominates the measurement hot path —
// every simulated CSI frame between an (anchor, object) pair re-traces the
// same geometry — so the cache keys completed traces by the environment's
// content epoch (channel/environment.h) plus quantized endpoint positions
// and a digest of the PropagationConfig.  A second, cheaper layer memoizes
// the per-transmitter specular image tree (BuildTxImageTree), which is
// shared by every receiver probed against that transmitter.
//
// Correctness properties:
//   * Cached results are bit-identical to uncached TracePaths: hits return
//     the memoized vector, and misses run the exact same tree-based code
//     path the uncached overload uses.
//   * Environment mutation invalidates automatically: every mutation draws
//     a fresh process-unique epoch, so stale entries can never be returned
//     (they are evicted lazily when a shard fills up).
//   * Positions are quantized to 1e-6 m.  Two probes closer than the
//     quantum may alias to one entry; scenario coordinates are metres with
//     far coarser spacing, so this is a non-issue in practice, but callers
//     sweeping sub-micrometre grids should bypass the cache.
//
// Thread safety: fully thread-safe; the key space is sharded with one
// mutex per shard so concurrent measurement threads rarely contend.
//
// Metrics (common/metrics.h): channel.trace.cache.{hits,misses},
// channel.trace.images.{hits,misses}.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "channel/environment.h"
#include "channel/propagation.h"
#include "geometry/vec2.h"

namespace nomloc::channel {

class PropagationCache {
 public:
  /// Process-wide instance used by CsiSimulator and the device-free
  /// sampler.  Tests may construct private instances.
  static PropagationCache& Global();

  /// `image_bytes_per_shard` bounds the memory held by memoized per-tx
  /// image trees (which grow as O(walls^order) in large generated worlds):
  /// when a shard's trees exceed the budget, stale-epoch entries are
  /// evicted first, then the shard is dropped whole.
  explicit PropagationCache(
      std::size_t image_bytes_per_shard = kDefaultImageBytesPerShard) noexcept
      : image_bytes_per_shard_(image_bytes_per_shard) {}
  PropagationCache(const PropagationCache&) = delete;
  PropagationCache& operator=(const PropagationCache&) = delete;

  /// Memoized TracePaths(env, tx, rx, config).  The returned vector is
  /// immutable and shared; it stays valid after Clear() or eviction.
  std::shared_ptr<const std::vector<PropagationPath>> Trace(
      const IndoorEnvironment& env, geometry::Vec2 tx, geometry::Vec2 rx,
      const PropagationConfig& config);

  /// Memoized BuildTxImageTree(env, tx, max_order).
  std::shared_ptr<const TxImageTree> Images(const IndoorEnvironment& env,
                                            geometry::Vec2 tx, int max_order);

  /// Drops every memoized trace and image tree.
  void Clear();

  /// Drops memoized traces but keeps the per-tx image trees: every
  /// receiver probed against a transmitter shares its tree, so callers
  /// forcing cold re-traces (benchmarks, epoch-local invalidation) should
  /// prefer this over Clear() — see the image-tree thrash note in
  /// DESIGN.md.
  void ClearTraces();

  /// Number of memoized traces (approximate under concurrent mutation).
  std::size_t Entries() const;

  /// Approximate bytes held by memoized image trees across all shards.
  std::size_t ImageBytes() const;

  /// Default per-shard image-tree byte budget (kShardCount shards total).
  static constexpr std::size_t kDefaultImageBytesPerShard = 4u << 20;

 private:
  struct Key {
    std::uint64_t epoch = 0;
    std::uint64_t config_digest = 0;
    std::int64_t qx0 = 0, qy0 = 0;  // Quantized tx.
    std::int64_t qx1 = 0, qy1 = 0;  // Quantized rx (0 for image trees).

    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept;
  };

  static constexpr std::size_t kShardCount = 16;  // Power of two.
  /// Per-shard entry bound; on overflow same-shard entries from other
  /// (stale) epochs are evicted first, then the shard is dropped whole.
  static constexpr std::size_t kMaxEntriesPerShard = 4096;

  struct PathShard {
    mutable std::mutex mu;
    std::unordered_map<Key, std::shared_ptr<const std::vector<PropagationPath>>,
                       KeyHash>
        map;
  };
  struct ImageShard {
    mutable std::mutex mu;
    std::unordered_map<Key, std::shared_ptr<const TxImageTree>, KeyHash> map;
    std::size_t bytes = 0;  ///< Sum of ApproxBytes() over map values.
  };

  std::array<PathShard, kShardCount> path_shards_;
  std::array<ImageShard, kShardCount> image_shards_;
  std::size_t image_bytes_per_shard_ = kDefaultImageBytesPerShard;
};

}  // namespace nomloc::channel
