// Memoized ray tracing.  TracePaths dominates the measurement hot path —
// every simulated CSI frame between an (anchor, object) pair re-traces the
// same geometry — so the cache keys completed traces by the environment's
// content epoch (channel/environment.h) plus quantized endpoint positions
// and a digest of the PropagationConfig.  A second, cheaper layer memoizes
// the per-transmitter specular image tree (BuildTxImageTree), which is
// shared by every receiver probed against that transmitter.
//
// Correctness properties:
//   * Cached results are bit-identical to uncached TracePaths: hits return
//     the memoized vector, and misses run the exact same tree-based code
//     path the uncached overload uses.
//   * Environment mutation invalidates automatically: every mutation draws
//     a fresh process-unique epoch, so stale entries can never be returned
//     (they are evicted lazily when a shard fills up).
//   * Positions are quantized to 1e-6 m.  Two probes closer than the
//     quantum may alias to one entry; scenario coordinates are metres with
//     far coarser spacing, so this is a non-issue in practice, but callers
//     sweeping sub-micrometre grids should bypass the cache.
//
// Thread safety: fully thread-safe; the key space is sharded with one
// mutex per shard so concurrent measurement threads rarely contend.
//
// Metrics (common/metrics.h): channel.trace.cache.{hits,misses},
// channel.trace.images.{hits,misses}.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "channel/environment.h"
#include "channel/propagation.h"
#include "geometry/vec2.h"

namespace nomloc::channel {

class PropagationCache {
 public:
  /// Process-wide instance used by CsiSimulator and the device-free
  /// sampler.  Tests may construct private instances.
  static PropagationCache& Global();

  PropagationCache() = default;
  PropagationCache(const PropagationCache&) = delete;
  PropagationCache& operator=(const PropagationCache&) = delete;

  /// Memoized TracePaths(env, tx, rx, config).  The returned vector is
  /// immutable and shared; it stays valid after Clear() or eviction.
  std::shared_ptr<const std::vector<PropagationPath>> Trace(
      const IndoorEnvironment& env, geometry::Vec2 tx, geometry::Vec2 rx,
      const PropagationConfig& config);

  /// Memoized BuildTxImageTree(env, tx, max_order).
  std::shared_ptr<const TxImageTree> Images(const IndoorEnvironment& env,
                                            geometry::Vec2 tx, int max_order);

  /// Drops every memoized trace and image tree.
  void Clear();

  /// Number of memoized traces (approximate under concurrent mutation).
  std::size_t Entries() const;

 private:
  struct Key {
    std::uint64_t epoch = 0;
    std::uint64_t config_digest = 0;
    std::int64_t qx0 = 0, qy0 = 0;  // Quantized tx.
    std::int64_t qx1 = 0, qy1 = 0;  // Quantized rx (0 for image trees).

    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept;
  };

  static constexpr std::size_t kShardCount = 16;  // Power of two.
  /// Per-shard entry bound; on overflow same-shard entries from other
  /// (stale) epochs are evicted first, then the shard is dropped whole.
  static constexpr std::size_t kMaxEntriesPerShard = 4096;

  struct PathShard {
    mutable std::mutex mu;
    std::unordered_map<Key, std::shared_ptr<const std::vector<PropagationPath>>,
                       KeyHash>
        map;
  };
  struct ImageShard {
    mutable std::mutex mu;
    std::unordered_map<Key, std::shared_ptr<const TxImageTree>, KeyHash> map;
  };

  std::array<PathShard, kShardCount> path_shards_;
  std::array<ImageShard, kShardCount> image_shards_;
};

}  // namespace nomloc::channel
