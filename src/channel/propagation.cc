#include "channel/propagation.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <span>

#include "common/assert.h"
#include "geometry/segment_index_scan.h"

namespace nomloc::channel {

using geometry::Line;
using geometry::Segment;
using geometry::Vec2;

double FreeSpacePathLossDb(double distance_m, double carrier_hz,
                           double min_distance_m) noexcept {
  const double d = std::max(distance_m, min_distance_m);
  const double wavelength = common::WavelengthM(carrier_hz);
  return 20.0 * std::log10(4.0 * std::numbers::pi * d / wavelength);
}

namespace {

// Shrinks a leg's endpoints off the reflecting surfaces so penetration
// checks do not count the mirror walls themselves.
Vec2 NudgeToward(Vec2 from, Vec2 toward) {
  const Vec2 dir = (toward - from).Normalized();
  return from + dir * 1e-6;
}

struct Tracer {
  const IndoorEnvironment& env;
  const PropagationConfig& config;
  Vec2 tx, rx;
  std::vector<PropagationPath>* out;
  // Back-traced reflection points, reused across TrySpecular calls: one
  // allocation per link instead of one per image candidate.
  mutable std::vector<Vec2> points;

  void AddDirect() const {
    PropagationPath p;
    p.length_m = Distance(tx, rx);
    p.loss_db = FreeSpacePathLossDb(p.length_m, config.carrier_hz,
                                    config.min_distance_m) +
                env.PenetrationLossDb(tx, rx);
    p.bounces = 0;
    p.is_direct = true;
    p.aoa_rad = ArrivalAngle(tx);
    out->push_back(p);
  }

  // Angle of the final leg into the receiver, for a leg starting at
  // `last_point`.
  double ArrivalAngle(Vec2 last_point) const {
    const Vec2 d = rx - last_point;
    return std::atan2(d.y, d.x);
  }

  // Penetration loss for the leg a-b with both endpoints nudged off any
  // reflecting surface they sit on.
  double LegLossDb(Vec2 a, Vec2 b) const {
    if (Distance(a, b) < 1e-9) return 0.0;
    return env.PenetrationLossDb(NudgeToward(a, b), NudgeToward(b, a));
  }

  // Attempts the specular path reflecting off the wall sequence `seq`
  // (indices into env.Walls(), in bounce order from the transmitter),
  // with the forward transmitter images `images` precomputed by
  // BuildTxImageTree (images[0] = tx, images[i] = mirror in seq[i-1]).
  void TrySpecular(std::span<const std::size_t> seq,
                   std::span<const Vec2> images) const {
    const auto walls = env.Walls();

    // Back-trace reflection points from the receiver.
    points.assign(seq.size(), Vec2{});
    Vec2 target = rx;
    for (std::size_t j = seq.size(); j-- > 0;) {
      const Segment& s = walls[seq[j]].segment;
      const Vec2 leg_a = images[j + 1];
      // Conservative straddle pretests (the spatial index's scan-kernel
      // tests; tolerance proof in segment_index_scan.h / DESIGN.md), so
      // the out-of-line exact call below runs only for the few image
      // candidates that can geometrically reflect.  First: wall endpoints
      // vs the leg's supporting line — the leg's line misses the wall
      // span.  Second: leg endpoints vs the wall's line — the reflection
      // point falls behind the image or past the receiver; only valid
      // when |denom| = |gamma - delta| is provably transversal.
      // Rejections cannot disagree with the eps-tolerant exact test.
      const Vec2 r = target - leg_a;
      const double alpha = Cross(r, s.a - leg_a);
      const double beta = Cross(r, s.b - leg_a);
      const double tol = 4e-12 * (std::abs(alpha) + std::abs(beta) + 1.0);
      if ((alpha > tol && beta > tol) || (alpha < -tol && beta < -tol))
        return;
      const Vec2 w = s.b - s.a;
      const double gamma = Cross(w, leg_a - s.a);
      const double delta = Cross(w, target - s.a);
      const double tol2 = 4e-12 * (std::abs(gamma) + std::abs(delta) + 1.0);
      if (std::abs(gamma - delta) > tol2 &&
          ((gamma > tol2 && delta > tol2) || (gamma < -tol2 && delta < -tol2)))
        return;
      const auto hit = geometry::IntersectSegments({leg_a, target}, s, 1e-12);
      if (!hit) return;  // Geometrically impossible bounce.
      // Reject grazing/degenerate reflections at segment endpoints.
      if (Distance(*hit, s.a) < 1e-9 || Distance(*hit, s.b) < 1e-9) return;
      points[j] = *hit;
      target = *hit;
    }

    // Assemble legs tx -> R1 -> ... -> Rk -> rx.
    double reflect_loss = 0.0;
    for (std::size_t wi : seq)
      reflect_loss += walls[wi].material.reflection_loss_db;

    double length = 0.0;
    double penetration = 0.0;
    Vec2 prev = tx;
    for (std::size_t j = 0; j < points.size(); ++j) {
      length += Distance(prev, points[j]);
      penetration += LegLossDb(prev, points[j]);
      prev = points[j];
    }
    length += Distance(prev, rx);
    penetration += LegLossDb(prev, rx);
    if (length < 1e-9) return;

    PropagationPath p;
    p.length_m = length;
    p.loss_db = FreeSpacePathLossDb(length, config.carrier_hz,
                                    config.min_distance_m) +
                reflect_loss + penetration;
    p.bounces = int(seq.size());
    p.aoa_rad = ArrivalAngle(points.back());
    out->push_back(p);
  }

  void AddScatterPaths() const {
    for (const Vec2 s : env.Scatterers()) {
      const double l1 = Distance(tx, s);
      const double l2 = Distance(s, rx);
      if (l1 < 1e-9 || l2 < 1e-9) continue;
      PropagationPath p;
      p.length_m = l1 + l2;
      p.loss_db = FreeSpacePathLossDb(p.length_m, config.carrier_hz,
                                      config.min_distance_m) +
                  config.scatter_loss_db + env.PenetrationLossDb(tx, s) +
                  env.PenetrationLossDb(s, rx);
      p.bounces = 1;
      p.is_scatter = true;
      p.aoa_rad = ArrivalAngle(s);
      out->push_back(p);
    }
  }
};

// Depth-first enumeration of admissible wall sequences, emitting one
// candidate per prefix — the same pre-order the tracer historically
// visited, so tree-based tracing reproduces legacy results bit for bit.
void EnumerateImages(const IndoorEnvironment& env,
                     std::vector<std::size_t>& seq, std::vector<Vec2>& images,
                     int depth, TxImageTree* tree) {
  if (depth == 0) return;
  const auto walls = env.Walls();
  for (std::size_t wi = 0; wi < walls.size(); ++wi) {
    if (!seq.empty() && seq.back() == wi) continue;  // No double-bounce
                                                     // off the same wall.
    const Segment& s = walls[wi].segment;
    seq.push_back(wi);
    images.push_back(Line::Through(s.a, s.b).Mirror(images.back()));
    tree->candidates.push_back({seq, images});
    EnumerateImages(env, seq, images, depth - 1, tree);
    seq.pop_back();
    images.pop_back();
  }
}

}  // namespace

std::size_t TxImageTree::ApproxBytes() const noexcept {
  std::size_t bytes = sizeof(TxImageTree) +
                      candidates.capacity() * sizeof(Candidate) +
                      prune_lanes.capacity() * sizeof(double);
  for (const Candidate& c : candidates)
    bytes += c.walls.capacity() * sizeof(std::size_t) +
             c.images.capacity() * sizeof(Vec2);
  return bytes;
}

TxImageTree BuildTxImageTree(const IndoorEnvironment& env, Vec2 tx,
                             int max_order) {
  NOMLOC_REQUIRE(max_order >= 0);
  TxImageTree tree;
  tree.tx = tx;
  tree.max_order = max_order;
  if (max_order > 0) {
    std::vector<std::size_t> seq;
    std::vector<Vec2> images{tx};
    EnumerateImages(env, seq, images, max_order, &tree);
  }
  // Flatten each candidate's final bounce wall + final image into the
  // point-pretest lane blocks TracePaths prunes with (layout doc in
  // propagation.h / segment_index_scan.h).  The +8 over-allocation leaves
  // room to shift group 0 onto a cache-line boundary.
  if (!tree.candidates.empty()) {
    const std::size_t n = tree.candidates.size();
    const std::size_t slots = (n + 3) & ~std::size_t(3);
    tree.prune_lanes.assign(slots * 6 + 8, 0.0);
    tree.prune_lane_base =
        (64 - (reinterpret_cast<std::uintptr_t>(tree.prune_lanes.data()) &
               63)) %
        64 / sizeof(double);
    double* lanes = tree.prune_lanes.data() + tree.prune_lane_base;
    const auto walls = env.Walls();
    for (std::size_t s = 0; s < slots; ++s) {
      const TxImageTree::Candidate& c = tree.candidates[std::min(s, n - 1)];
      const Segment& seg = walls[c.walls.back()].segment;
      const Vec2 o = c.images.back();
      double* g = lanes + (s & ~std::size_t(3)) * 6;
      const std::size_t lane = s & 3;
      g[lane] = seg.a.x;
      g[4 + lane] = seg.a.y;
      g[8 + lane] = seg.b.x;
      g[12 + lane] = seg.b.y;
      g[16 + lane] = o.x;
      g[20 + lane] = o.y;
    }
    tree.prune_slots = slots;
  }
  return tree;
}

std::vector<PropagationPath> TracePaths(const IndoorEnvironment& env,
                                        Vec2 tx, Vec2 rx,
                                        const PropagationConfig& config) {
  return TracePaths(env, BuildTxImageTree(env, tx, config.max_reflection_order),
                    rx, config);
}

std::vector<PropagationPath> TracePaths(const IndoorEnvironment& env,
                                        const TxImageTree& images, Vec2 rx,
                                        const PropagationConfig& config) {
  NOMLOC_REQUIRE(images.max_order == config.max_reflection_order);
  std::vector<PropagationPath> paths;
  paths.reserve(1 + (config.include_scatterers ? env.Scatterers().size() : 0) +
                8);
  Tracer tracer{env, config, images.tx, rx, &paths, {}};
  tracer.AddDirect();
  if (images.prune_slots != 0) {
    // Vectorized final-bounce prune: one pass of the point-pretest kernel
    // over the flattened (last wall, last image) lanes rejects every
    // candidate whose last bounce wall cannot straddle the image-to-
    // receiver line — the same conservative test TrySpecular's first
    // back-trace step applies, so the surviving path set is identical and
    // still visited in enumeration (slot) order.
    thread_local std::vector<std::uint32_t> survivors;
    if (survivors.size() < images.prune_slots)
      survivors.resize(images.prune_slots);
    const std::size_t n_candidates = images.candidates.size();
    const std::size_t n =
        geometry::detail::ActiveScanKernel().point_fn(
            images.PruneLanes(), images.prune_slots, rx.x, rx.y,
            survivors.data());
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t s = survivors[i];
      if (s >= n_candidates) break;  // Tail padding slots.
      const TxImageTree::Candidate& c = images.candidates[s];
      tracer.TrySpecular(c.walls, c.images);
    }
  } else {
    for (const TxImageTree::Candidate& c : images.candidates)
      tracer.TrySpecular(c.walls, c.images);
  }
  if (config.include_scatterers) tracer.AddScatterPaths();

  // Relative power cutoff.
  double min_loss = paths.front().loss_db;
  for (const auto& p : paths) min_loss = std::min(min_loss, p.loss_db);
  std::erase_if(paths, [&](const PropagationPath& p) {
    return p.loss_db > min_loss + config.relative_cutoff_db;
  });

  std::sort(paths.begin(), paths.end(),
            [](const PropagationPath& a, const PropagationPath& b) {
              return a.length_m < b.length_m;
            });
  return paths;
}

}  // namespace nomloc::channel
