#include "channel/statistical.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/assert.h"

namespace nomloc::channel {

common::Result<std::vector<PropagationPath>> SampleSalehValenzuela(
    double distance_m, const SalehValenzuelaConfig& config, common::Rng& rng) {
  if (distance_m <= 0.0)
    return common::InvalidArgument("distance must be positive");
  if (config.clusters == 0 || config.rays_per_cluster == 0)
    return common::InvalidArgument("need >= 1 cluster and ray");
  if (config.cluster_decay_ns <= 0.0 || config.ray_decay_ns <= 0.0 ||
      config.cluster_rate_per_ns <= 0.0 || config.ray_rate_per_ns <= 0.0)
    return common::InvalidArgument("rates and decays must be positive");

  const double base_loss = FreeSpacePathLossDb(
      distance_m, config.carrier_hz, config.min_distance_m);

  std::vector<PropagationPath> paths;
  paths.reserve(1 + config.clusters * config.rays_per_cluster);

  // Direct path.
  {
    PropagationPath direct;
    direct.length_m = distance_m;
    direct.loss_db =
        base_loss + (config.line_of_sight ? 0.0 : config.nlos_extra_loss_db);
    direct.is_direct = true;
    paths.push_back(direct);
  }

  // Clusters: arrival times T_l ~ Poisson(Lambda), power e^{-T_l/Gamma};
  // rays inside each cluster likewise with (lambda, gamma).
  double cluster_excess_ns = 0.0;
  for (std::size_t l = 0; l < config.clusters; ++l) {
    cluster_excess_ns += rng.Exponential(1.0 / config.cluster_rate_per_ns);
    const double cluster_gain_db =
        -10.0 * cluster_excess_ns / config.cluster_decay_ns *
        std::log10(std::numbers::e);
    double ray_excess_ns = 0.0;
    for (std::size_t k = 0; k < config.rays_per_cluster; ++k) {
      ray_excess_ns += rng.Exponential(1.0 / config.ray_rate_per_ns);
      const double ray_gain_db = -10.0 * ray_excess_ns /
                                 config.ray_decay_ns *
                                 std::log10(std::numbers::e);
      const double excess_ns = cluster_excess_ns + ray_excess_ns;
      PropagationPath p;
      p.length_m =
          distance_m + excess_ns * 1e-9 * common::kSpeedOfLight;
      // The exponential-decay gains are negative dB; subtracting them adds
      // the corresponding attenuation to the loss.
      p.loss_db = base_loss + config.diffuse_loss_db - cluster_gain_db -
                  ray_gain_db;
      p.bounces = 1;
      p.is_scatter = true;
      p.aoa_rad = rng.UniformAngle();  // Diffuse rays arrive isotropically.
      paths.push_back(p);
    }
  }

  std::sort(paths.begin(), paths.end(),
            [](const PropagationPath& a, const PropagationPath& b) {
              return a.length_m < b.length_m;
            });
  return paths;
}

double RmsDelaySpread(std::span<const PropagationPath> paths,
                      double tx_power_dbm) {
  NOMLOC_REQUIRE(!paths.empty());
  double total_power = 0.0, mean_delay = 0.0;
  std::vector<double> powers;
  powers.reserve(paths.size());
  for (const PropagationPath& p : paths) {
    const double power = common::DbmToMilliwatts(tx_power_dbm - p.loss_db);
    powers.push_back(power);
    total_power += power;
    mean_delay += power * p.DelayS();
  }
  NOMLOC_ASSERT(total_power > 0.0);
  mean_delay /= total_power;
  double var = 0.0;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const double d = paths[i].DelayS() - mean_delay;
    var += powers[i] * d * d;
  }
  return std::sqrt(var / total_power);
}

}  // namespace nomloc::channel
