// Multipath ray tracing: enumerates the propagation paths between a
// transmitter and a receiver in an IndoorEnvironment.
//
// Path classes:
//   * the direct path (always present; pays penetration loss when blocked
//     — that is exactly the paper's NLOS condition),
//   * specular reflections off walls/obstacle edges, found with the image
//     method up to a configurable order,
//   * diffuse single-bounce paths via the environment's point scatterers
//     (clutter: furniture, equipment — what makes the Lab "rich
//     multipath").
//
// Per-path loss = free-space path loss over the *total* travelled length
// + reflection/scattering losses + wall penetration on each leg.
#pragma once

#include <cstddef>
#include <vector>

#include "channel/environment.h"
#include "common/units.h"
#include "geometry/vec2.h"

namespace nomloc::channel {

struct PropagationPath {
  double length_m = 0.0;   ///< Total travelled distance.
  double loss_db = 0.0;    ///< Total power loss relative to 0 dB at TX.
  int bounces = 0;         ///< 0 = direct, 1 = single reflection/scatter, …
  bool is_direct = false;
  bool is_scatter = false; ///< Diffuse (scatterer) rather than specular.
  /// Angle of arrival at the receiver [rad], measured from +x — the
  /// direction of the final leg.  Feeds multi-antenna (ULA) phase offsets.
  double aoa_rad = 0.0;

  double DelayS() const noexcept {
    return common::PropagationDelayS(length_m);
  }
};

struct PropagationConfig {
  double carrier_hz = common::kDefaultCarrierHz;
  /// Image-method recursion depth: 0 = direct only, 1 = single specular
  /// reflections, 2 adds double reflections.
  int max_reflection_order = 1;
  /// Extra loss for a diffuse scatterer bounce [dB].
  double scatter_loss_db = 18.0;
  bool include_scatterers = true;
  /// Paths weaker than the strongest path by more than this are dropped.
  double relative_cutoff_db = 50.0;
  /// Reference distance below which FSPL is clamped (antenna near field).
  double min_distance_m = 0.1;
};

/// Free-space path loss [dB] at distance d (clamped to min_distance).
double FreeSpacePathLossDb(double distance_m, double carrier_hz,
                           double min_distance_m = 0.1) noexcept;

/// Forward specular images of one transmitter: for every admissible wall
/// bounce sequence up to `max_order` (depth-first over env.Walls(), never
/// repeating the immediately preceding wall), the chain of successively
/// mirrored transmitter images.  This is the O(walls^order) half of the
/// image method that depends only on tx and the wall geometry — every
/// receiver probed against the same transmitter shares it, which is what
/// makes the per-tx layer of PropagationCache pay.
struct TxImageTree {
  struct Candidate {
    std::vector<std::size_t> walls;      ///< Bounce order from the TX.
    /// images[0] = tx; images[i] = images[i-1] mirrored in walls[i-1].
    std::vector<geometry::Vec2> images;
  };

  geometry::Vec2 tx;
  int max_order = 0;
  std::vector<Candidate> candidates;     ///< Depth-first enumeration order.

  /// Final-bounce prune lanes: candidate c's last bounce wall and last
  /// transmitter image, flattened into the point-pretest lane-block
  /// layout (geometry/segment_index_scan.h), so TracePaths can reject
  /// the bulk of the candidate list with one vectorized straddle scan
  /// against the receiver before touching any Candidate's heap storage.
  /// Slot count is candidates.size() rounded up to a multiple of 4; tail
  /// slots repeat the last candidate and are filtered by slot number.
  /// Empty on a hand-assembled tree — TracePaths then falls back to the
  /// plain per-candidate loop (same results, the prune is conservative).
  std::vector<double> prune_lanes;
  std::size_t prune_lane_base = 0;  ///< Offset aligning group 0 to 64 B.
  std::size_t prune_slots = 0;

  const double* PruneLanes() const noexcept {
    return prune_lanes.data() + prune_lane_base;
  }

  /// Approximate heap footprint [bytes] — the number the cache's per-shard
  /// byte budget accounts against.  Trees grow as O(walls^order), so large
  /// generated worlds make this the binding constraint, not entry count.
  std::size_t ApproxBytes() const noexcept;
};

/// Enumerates the specular bounce candidates of `tx` up to `max_order`.
TxImageTree BuildTxImageTree(const IndoorEnvironment& env, geometry::Vec2 tx,
                             int max_order);

/// Enumerates propagation paths from tx to rx.  Always returns at least
/// the direct path.  Paths are sorted by increasing delay.
std::vector<PropagationPath> TracePaths(const IndoorEnvironment& env,
                                        geometry::Vec2 tx, geometry::Vec2 rx,
                                        const PropagationConfig& config);

/// TracePaths against a precomputed image tree (`images` must have been
/// built for the same environment, tx, and config.max_reflection_order).
/// Bit-identical to the convenience overload, which delegates here.
std::vector<PropagationPath> TracePaths(const IndoorEnvironment& env,
                                        const TxImageTree& images,
                                        geometry::Vec2 rx,
                                        const PropagationConfig& config);

}  // namespace nomloc::channel
