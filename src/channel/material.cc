#include "channel/material.h"

namespace nomloc::channel::materials {

Material Concrete() { return {"concrete", 7.0, 13.0}; }
Material Drywall() { return {"drywall", 10.0, 4.0}; }
Material Glass() { return {"glass", 12.0, 3.0}; }
Material Metal() { return {"metal", 2.0, 26.0}; }
Material Wood() { return {"wood", 9.0, 6.0}; }
Material Human() { return {"human", 11.0, 9.0}; }

}  // namespace nomloc::channel::materials
