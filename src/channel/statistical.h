// Saleh–Valenzuela statistical multipath model.
//
// A geometry-free alternative to the image-method ray tracer: paths
// arrive in Poisson clusters whose powers decay exponentially, the
// standard indoor model family behind IEEE 802.11 TGn channels B–E.
// Useful for (a) validating that NomLoc's PDP stage behaves the same
// under a completely different multipath generator, and (b) sweeping
// delay-spread regimes that a specific room geometry cannot produce.
//
// The model produces PropagationPath lists compatible with LinkModel, so
// the whole CSI pipeline downstream is shared with the ray tracer.
#pragma once

#include <vector>

#include "channel/propagation.h"
#include "common/rng.h"
#include "common/status.h"

namespace nomloc::channel {

struct SalehValenzuelaConfig {
  double carrier_hz = common::kDefaultCarrierHz;
  /// Cluster arrival rate Lambda [1/ns] and intra-cluster ray rate
  /// lambda [1/ns]; TGn-C-like defaults.
  double cluster_rate_per_ns = 1.0 / 40.0;
  double ray_rate_per_ns = 1.0 / 5.0;
  /// Cluster power decay constant Gamma [ns] and ray decay gamma [ns].
  double cluster_decay_ns = 30.0;
  double ray_decay_ns = 10.0;
  /// Number of clusters and rays per cluster to draw.
  std::size_t clusters = 4;
  std::size_t rays_per_cluster = 6;
  /// Extra loss applied to every non-direct ray [dB] relative to the
  /// direct path at the same distance.
  double diffuse_loss_db = 6.0;
  /// Whether a line-of-sight direct path exists; when false the direct
  /// ray is attenuated by nlos_extra_loss_db.
  bool line_of_sight = true;
  double nlos_extra_loss_db = 15.0;
  double min_distance_m = 0.1;
};

/// Draws one multipath realisation for a link of length `distance_m`.
/// The direct path delay is distance/c; cluster/ray excess delays are
/// exponential.  Deterministic given the Rng state.  Requires a positive
/// distance and sane config.
common::Result<std::vector<PropagationPath>> SampleSalehValenzuela(
    double distance_m, const SalehValenzuelaConfig& config,
    common::Rng& rng);

/// RMS delay spread of a path list [s] — the standard dispersion metric;
/// exposed for tests that pin the model's statistics.
double RmsDelaySpread(std::span<const PropagationPath> paths,
                      double tx_power_dbm = 0.0);

}  // namespace nomloc::channel
