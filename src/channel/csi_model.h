// CSI synthesis: converts a traced multipath PathSet into the 802.11n
// frequency-domain channel state information a receiver would report.
//
//   H(f_k) = sum_p  g_p · a_p · e^{-j 2π (f_c + f_k) τ_p}  +  n_k
//
// where a_p is the deterministic path amplitude (from loss_db), τ_p the
// path delay, g_p per-packet small-scale fading (Rician for the direct
// path, Rayleigh for reflections/scatter), and n_k complex AWGN set by the
// noise floor.  This is the standard wideband multipath baseband model;
// it reproduces the LOS/NLOS power-delay dichotomy of the paper's Fig. 3.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "channel/environment.h"
#include "channel/propagation.h"
#include "common/rng.h"
#include "common/units.h"
#include "dsp/csi.h"
#include "dsp/ofdm.h"

namespace nomloc::channel {

struct ChannelConfig {
  double carrier_hz = common::kDefaultCarrierHz;
  double bandwidth_hz = common::kBandwidth20MHz;
  int fft_size = common::kOfdmFftSize;
  double tx_power_dbm = 15.0;
  /// Per-subcarrier noise power.
  double noise_floor_dbm = -92.0;
  /// Rician K-factor of the direct path when it has line of sight [dB].
  double rician_k_db = 12.0;
  /// Rician K-factor of bounced (reflected/scattered) paths [dB].  The
  /// default ~-60 dB is effectively Rayleigh — each packet sees a fresh
  /// draw, modelling ambient motion.  Device-free sensing tests raise it
  /// to model a truly static room whose multipath is temporally stable.
  double bounce_rician_k_db = -60.0;
  /// AR(1) correlation of the small-scale fading between consecutive
  /// packets of a batch, in [0, 1).  0 = i.i.d. (fast fading / sparse
  /// sampling); values near 1 model packets sent well within the channel
  /// coherence time, which slows the averaging gain of large batches
  /// (bench/abl_coherence).
  double fading_correlation = 0.0;
  /// Report CSI on the Intel-5300 30-tone grid (paper hardware) instead of
  /// the full 56-tone HT20 grid.
  bool intel5300_grouping = true;
  /// Receive antennas at each AP (the Intel 5300 has 3), modelled as a
  /// uniform linear array along +x.  Per-path antenna phase offsets follow
  /// the path's angle of arrival; antennas share large-scale gains but see
  /// independent per-antenna noise.
  int rx_antennas = 1;
  /// ULA element spacing in carrier wavelengths (0.5 typical).
  double antenna_spacing_wavelengths = 0.5;
  PropagationConfig propagation;
};

/// One packet's CSI across all receive antennas (size = rx_antennas).
using MimoCsiFrame = std::vector<dsp::CsiFrame>;

/// A fixed TX–RX link: traced paths plus precomputed per-path baseband
/// parameters.  Sampling a packet re-draws fading and noise only, so
/// batches of thousands of packets (the paper's PING flood) are cheap.
class LinkModel {
 public:
  LinkModel(std::vector<PropagationPath> paths, const ChannelConfig& config);

  /// CSI for one received packet (antenna 0 when rx_antennas > 1).
  dsp::CsiFrame Sample(common::Rng& rng) const;

  /// CSI for `count` packets (count >= 1), antenna 0.
  std::vector<dsp::CsiFrame> SampleBatch(std::size_t count,
                                         common::Rng& rng) const;

  /// One packet across every receive antenna (size = config.rx_antennas).
  /// The deterministic (Rician LOS) component is shared across the array;
  /// diffuse fading and noise are independent per antenna (spatially
  /// uncorrelated fading, valid for >= lambda/2 spacing).
  MimoCsiFrame SampleMimo(common::Rng& rng) const;

  /// `count` packets across every antenna.
  std::vector<MimoCsiFrame> SampleMimoBatch(std::size_t count,
                                            common::Rng& rng) const;

  std::span<const PropagationPath> Paths() const noexcept { return paths_; }

  /// Deterministic (fading-free, noise-free) frequency response — useful
  /// for tests and for the Fig. 3 delay-profile bench.
  dsp::CsiFrame MeanResponse() const;

  /// Discrete-time impulse response at the channel sample rate
  /// (1/bandwidth), with one per-packet fading draw applied; fractional
  /// path delays are rendered by windowed-sinc interpolation.  Pass
  /// nullptr for the deterministic (unit-gain) taps.  `lead_in_samples`
  /// shifts every path later by that many samples so the interpolation
  /// kernel's precursor tail is not clipped at n = 0 (the receiver then
  /// synchronises `lead_in_samples` later to compensate).
  std::vector<dsp::Cplx> SampleImpulseResponse(
      common::Rng* rng, std::size_t max_taps = 32,
      double lead_in_samples = 0.0) const;

  /// CSI measured through the *full PHY chain* instead of the direct
  /// frequency-domain synthesis: an OFDM training burst (dsp/ofdm.h) is
  /// convolved with this link's impulse response, noise is added at the
  /// configured floor, and the receiver's least-squares channel estimate
  /// is returned — exactly how the paper's Intel 5300 produces CSI.
  /// Pass nullptr for the deterministic chain (no fading, no noise),
  /// directly comparable to MeanResponse().
  common::Result<dsp::CsiFrame> MeasurePhyCsi(common::Rng* rng) const;

 private:
  /// Builds a frame from explicit per-path complex gains (empty = unit
  /// gains) with optional AWGN, for the given antenna index.
  dsp::CsiFrame Synthesize(std::span<const dsp::Cplx> gains,
                           common::Rng* noise_rng, int antenna = 0) const;
  /// Draws one i.i.d. Rician/Rayleigh gain per path.
  std::vector<dsp::Cplx> DrawGains(common::Rng& rng) const;

  std::vector<PropagationPath> paths_;
  ChannelConfig config_;
  std::vector<int> subcarriers_;
  std::vector<double> amp_;        ///< Linear per-path amplitude [sqrt(mW)].
  std::vector<double> delay_s_;
  std::vector<double> k_linear_;   ///< Rician K per path (0 = Rayleigh).
  /// Per-path per-subcarrier delay phasors e^{-j 2π f_k τ_p}, split-complex
  /// with stride subcarriers_.size().  Built lazily on the first synthesized
  /// packet (links that are traced but never sampled skip the trigonometry)
  /// and shared across copies; afterwards packet synthesis runs
  /// trigonometry-free through simd::CplxAxpy.
  struct ToneTable {
    std::once_flag once;
    std::vector<double> re;
    std::vector<double> im;
  };
  const ToneTable& Tones() const;
  std::shared_ptr<ToneTable> tones_;
  double noise_variance_mw_ = 0.0;
};

/// Factory for LinkModels over one environment.
class CsiSimulator {
 public:
  /// The environment must outlive the simulator.
  CsiSimulator(const IndoorEnvironment& env, ChannelConfig config)
      : env_(&env), config_(std::move(config)) {}

  const ChannelConfig& Config() const noexcept { return config_; }
  const IndoorEnvironment& Environment() const noexcept { return *env_; }

  /// Traces paths and builds the per-link sampler.
  LinkModel MakeLink(geometry::Vec2 tx, geometry::Vec2 rx) const;

  /// Convenience: one packet on a throwaway link.
  dsp::CsiFrame SampleOne(geometry::Vec2 tx, geometry::Vec2 rx,
                          common::Rng& rng) const;

 private:
  const IndoorEnvironment* env_;
  ChannelConfig config_;
};

}  // namespace nomloc::channel
