// Static spatial index over a fixed set of segments (walls, obstacle
// edges): a uniform grid with conservative cell registration, traversed
// with an Amanatides–Woo DDA.  Built once, queried read-only from many
// threads.
//
// The index is an *acceleration structure, not an oracle*: every query
// narrows the candidate set with the grid and then applies the exact same
// predicate (geometry::IntersectSegments at the default tolerance) the
// brute-force scan would, so results are bit-identical to a linear pass
// over the input — CrossingIndices even reports matches in ascending input
// order, which keeps floating-point sums over the results reproducible.
// Cells are registered conservatively (segment AABBs padded by kPadM), so
// ε-tolerant touches at cell boundaries cannot be missed.
//
// Structure choice (vs a BVH) is argued in DESIGN.md: indoor wall soups
// are near-uniform in density and axis-dominated, a grid builds in O(n)
// with a single CSR allocation, and the DDA visits O(path length / cell)
// cells per query with no stack or pointer chasing.
//
// The per-cell candidate scan runs through a runtime-dispatched pretest
// kernel (segment_index_scan.h): candidates are stored as interleaved
// lane blocks (two cache lines per 4-candidate group) so an AVX2 build
// scans four at a time off a single forward stream, with a scalar kernel
// as the portable fallback.  Kernel choice cannot affect results — the
// pretest is conservative by a 4x tolerance margin and the exact
// predicate always decides.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "geometry/line.h"
#include "geometry/segment_index_scan.h"
#include "geometry/vec2.h"

namespace nomloc::geometry {

class SegmentIndex {
 public:
  /// First-hit result of a directed cast along a query segment.
  struct Hit {
    std::size_t index = 0;  ///< Index of the hit segment in the build span.
    Vec2 point;             ///< Intersection point.
    double t = 0.0;         ///< Parameter along the query, in [0, 1].
  };

  /// An empty index; every query reports no crossings.
  SegmentIndex() = default;

  /// Builds an index over `segments`; reported indices are positions in
  /// this span.  Zero-length segments are allowed (they occupy one cell).
  static SegmentIndex Build(std::span<const Segment> segments);

  bool Empty() const noexcept { return segments_.empty(); }
  std::size_t SegmentCount() const noexcept { return segments_.size(); }

  /// Appends the indices of every stored segment crossing `q` (exact
  /// IntersectSegments test) to `out`, in ascending index order with no
  /// duplicates.  `out` is not cleared.
  void CrossingIndices(const Segment& q, std::vector<std::uint32_t>& out) const;

  /// True when any stored segment crosses `q`.  Early-outs on the first
  /// crossing found along the traversal.
  bool AnyCrossing(const Segment& q) const;

  /// Nearest crossing along the directed query a -> b; ties on the
  /// parameter break toward the smaller segment index.
  std::optional<Hit> FirstHit(const Segment& q) const;

  /// Approximate heap footprint of the index [bytes].
  std::size_t ApproxBytes() const noexcept;

  /// Grid shape, for stats/reporting.
  std::size_t CellCount() const noexcept { return nx_ * ny_; }
  double CellWidthM() const noexcept { return cell_w_; }
  double CellHeightM() const noexcept { return cell_h_; }

 private:
  /// Conservative registration/query padding [m]; large against the 1e-12
  /// intersection tolerance, small against any real wall spacing.
  static constexpr double kPadM = 1e-6;

  template <typename CellFn>
  void WalkCells(const Segment& q, CellFn&& fn) const;

  std::size_t CellX(double x) const noexcept;
  std::size_t CellY(double y) const noexcept;

  std::vector<Segment> segments_;
  // Pretest kernel resolved at Build (segment_index_scan.h) — hoisted
  // off the per-query path.
  detail::PretestScanFn scan_fn_ = nullptr;
  Vec2 lo_, hi_;                      // Padded grid bounds.
  std::size_t nx_ = 0, ny_ = 0;
  double cell_w_ = 1.0, cell_h_ = 1.0;

  // Per-cell candidate registrations as interleaved lane blocks: every
  // group of 4 slots is 16 contiguous doubles [ax*4][ay*4][bx*4][by*4]
  // (two cache lines), so the pretest scan (segment_index_scan.h) streams
  // one forward run of memory per cell, and every cell's slot range is
  // padded to a multiple of 4 with copies of the cell's first entry
  // (duplicates are conservative: they fail the pretest or dedupe
  // downstream).  cell_start_ holds slot offsets; slot s lives at
  // cand_lanes_[(s & ~3) * 4 + lane_offset + (s & 3)].
  std::vector<std::uint32_t> cell_start_;  // CSR slot offsets, nx*ny + 1.
  std::vector<double> cand_lanes_;         // 16 doubles per 4-slot group.
  std::size_t lane_base_ = 0;  // Offset into cand_lanes_ that puts group 0
                               // on a cache-line boundary, so every group
                               // is exactly two 64-byte lines.
  std::vector<std::uint32_t> cand_idx_;    // Candidate -> segment index.

  const double* LaneData() const noexcept {
    return cand_lanes_.data() + lane_base_;
  }
};

}  // namespace nomloc::geometry
