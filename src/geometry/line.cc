#include "geometry/line.h"

#include <algorithm>

#include "common/assert.h"

namespace nomloc::geometry {

Line Line::Through(Vec2 a, Vec2 b) {
  NOMLOC_REQUIRE(!AlmostEqual(a, b, 0.0));
  return Line{a, b - a};
}

double Line::DistanceTo(Vec2 p) const noexcept {
  const double n = dir.Norm();
  if (n == 0.0) return Distance(origin, p);
  return std::abs(Cross(dir, p - origin)) / n;
}

Vec2 Line::Project(Vec2 p) const noexcept {
  const double d2 = dir.NormSq();
  if (d2 == 0.0) return origin;
  const double t = Dot(p - origin, dir) / d2;
  return origin + dir * t;
}

Vec2 Line::Mirror(Vec2 p) const noexcept {
  const Vec2 q = Project(p);
  return q + (q - p);
}

double Line::Side(Vec2 p) const noexcept { return Cross(dir, p - origin); }

Vec2 Segment::ClosestPointTo(Vec2 p) const noexcept {
  const Vec2 d = b - a;
  const double d2 = d.NormSq();
  if (d2 == 0.0) return a;
  const double t = std::clamp(Dot(p - a, d) / d2, 0.0, 1.0);
  return a + d * t;
}

double Segment::DistanceTo(Vec2 p) const noexcept {
  return Distance(ClosestPointTo(p), p);
}

std::optional<Vec2> IntersectLines(const Line& l1, const Line& l2,
                                   double eps) noexcept {
  const double denom = Cross(l1.dir, l2.dir);
  if (std::abs(denom) <= eps) return std::nullopt;
  const double t = Cross(l2.origin - l1.origin, l2.dir) / denom;
  return l1.origin + l1.dir * t;
}

std::optional<Vec2> IntersectSegments(const Segment& s1, const Segment& s2,
                                      double eps) noexcept {
  const Vec2 r = s1.b - s1.a;
  const Vec2 s = s2.b - s2.a;
  const double denom = Cross(r, s);
  const Vec2 qp = s2.a - s1.a;
  if (std::abs(denom) <= eps) {
    // Parallel.  Check collinear overlap.
    if (std::abs(Cross(qp, r)) > eps) return std::nullopt;
    const double r2 = r.NormSq();
    if (r2 == 0.0) {
      // s1 is a point; on s2?
      if (s2.DistanceTo(s1.a) <= eps) return s1.a;
      return std::nullopt;
    }
    double t0 = Dot(qp, r) / r2;
    double t1 = t0 + Dot(s, r) / r2;
    if (t0 > t1) std::swap(t0, t1);
    const double lo = std::max(t0, 0.0), hi = std::min(t1, 1.0);
    if (lo > hi + eps) return std::nullopt;
    return s1.a + r * std::clamp(lo, 0.0, 1.0);
  }
  const double t = Cross(qp, s) / denom;
  const double u = Cross(qp, r) / denom;
  if (t < -eps || t > 1.0 + eps || u < -eps || u > 1.0 + eps)
    return std::nullopt;
  return s1.a + r * std::clamp(t, 0.0, 1.0);
}

bool SegmentsIntersect(const Segment& s1, const Segment& s2,
                       double eps) noexcept {
  // Decision-equivalent to IntersectSegments (the same comparisons, in
  // the same order, negated), skipping the intersection-point arithmetic
  // and the optional — this is the hot predicate of both the brute wall
  // scans and the spatial index.
  const Vec2 r = s1.b - s1.a;
  const Vec2 s = s2.b - s2.a;
  const double denom = Cross(r, s);
  const Vec2 qp = s2.a - s1.a;
  if (std::abs(denom) <= eps) {
    if (std::abs(Cross(qp, r)) > eps) return false;
    const double r2 = r.NormSq();
    if (r2 == 0.0) return s2.DistanceTo(s1.a) <= eps;
    double t0 = Dot(qp, r) / r2;
    double t1 = t0 + Dot(s, r) / r2;
    if (t0 > t1) std::swap(t0, t1);
    return !(std::max(t0, 0.0) > std::min(t1, 1.0) + eps);
  }
  const double t = Cross(qp, s) / denom;
  const double u = Cross(qp, r) / denom;
  return !(t < -eps || t > 1.0 + eps || u < -eps || u > 1.0 + eps);
}

}  // namespace nomloc::geometry
