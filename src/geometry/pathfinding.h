// Obstacle-avoiding shortest paths (visibility graph + Dijkstra).
//
// Nomadic APs are carried by people who walk around furniture, not through
// it.  This plans the walking route between dwell sites: nodes are the
// start, the goal, obstacle vertices inflated outward by a clearance
// margin and (for non-convex floors) boundary vertices pulled inward;
// edges connect mutually visible nodes; Dijkstra extracts the shortest
// route.  Exact for polygonal scenes of this size.
#pragma once

#include <span>
#include <vector>

#include "common/status.h"
#include "geometry/polygon.h"

namespace nomloc::geometry {

struct PathPlan {
  /// Waypoints from start to goal inclusive.
  std::vector<Vec2> waypoints;
  /// Total walking distance [m].
  double length_m = 0.0;
};

struct PathPlannerOptions {
  /// How far routes keep away from obstacle corners [m].
  double clearance_m = 0.25;
};

/// Plans the shortest walkable route from start to goal inside `boundary`
/// avoiding `obstacles`.  Endpoints must lie inside the boundary and
/// outside every obstacle.  Fails with kNotFound when no route exists
/// (e.g. obstacles sealing off the goal).
common::Result<PathPlan> ShortestPath(const Polygon& boundary,
                                      std::span<const Polygon> obstacles,
                                      Vec2 start, Vec2 goal,
                                      const PathPlannerOptions& options = {});

/// Total walking distance of a site tour (consecutive ShortestPath legs).
/// Fails if any leg fails.
common::Result<double> TourLength(const Polygon& boundary,
                                  std::span<const Polygon> obstacles,
                                  std::span<const Vec2> sites,
                                  const PathPlannerOptions& options = {});

}  // namespace nomloc::geometry
