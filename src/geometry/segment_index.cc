#include "geometry/segment_index.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "geometry/segment_index_scan.h"

namespace nomloc::geometry {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Clips the parametric segment a + t*d, t in [t0, t1], to the box
// [blo, bhi].  Returns false when the clipped interval is empty.
bool ClipToBox(Vec2 a, Vec2 d, Vec2 blo, Vec2 bhi, double& t0,
               double& t1) noexcept {
  const double orig[2] = {a.x, a.y};
  const double dir[2] = {d.x, d.y};
  const double mins[2] = {blo.x, blo.y};
  const double maxs[2] = {bhi.x, bhi.y};
  for (int axis = 0; axis < 2; ++axis) {
    if (dir[axis] == 0.0) {
      if (orig[axis] < mins[axis] || orig[axis] > maxs[axis]) return false;
      continue;
    }
    double ta = (mins[axis] - orig[axis]) / dir[axis];
    double tb = (maxs[axis] - orig[axis]) / dir[axis];
    if (ta > tb) std::swap(ta, tb);
    t0 = std::max(t0, ta);
    t1 = std::min(t1, tb);
    if (t0 > t1) return false;
  }
  return true;
}

bool SegmentOverlapsBox(const Segment& s, Vec2 blo, Vec2 bhi) noexcept {
  double t0 = 0.0, t1 = 1.0;
  return ClipToBox(s.a, s.b - s.a, blo, bhi, t0, t1);
}

// Parameter of `p` along the query a -> b (0 at a, 1 at b; 0 for a
// zero-length query).
double ParamAlong(Vec2 a, Vec2 d, Vec2 p) noexcept {
  const double d2 = d.NormSq();
  if (d2 == 0.0) return 0.0;
  return std::clamp(Dot(p - a, d) / d2, 0.0, 1.0);
}

// Candidate endpoints of `slot` out of the interleaved lane blocks (see
// segment_index.h for the layout).
inline Segment CandidateAt(const double* lanes, std::uint32_t slot) noexcept {
  const double* g = lanes + std::size_t(slot & ~3u) * 4;
  const std::uint32_t l = slot & 3u;
  return Segment{{g[l], g[4 + l]}, {g[8 + l], g[12 + l]}};
}

// Decision-identical copy of geometry::SegmentsIntersect at the default
// 1e-12 eps, with the query direction `r` hoisted out of the survivor
// loop (r == q.b - q.a, the same value SegmentsIntersect would compute).
// Kept in lockstep with line.cc; the randomized brute-vs-indexed
// equivalence suite would catch any drift.
//
// The transversal branch replaces the two IEEE divides with sign-aware
// multiply-form bounds plus a conservative guard band: the reference
// comparisons nt/denom vs {-eps, 1+eps} and the multiply-form nt vs
// {-eps*denom, (1+eps)*denom} can disagree only within a few ulp of a
// boundary (each form carries <= ~2 ulp of rounding, < 1e-15*|denom|),
// so outcomes more than band = 1e-14*|denom| away from both boundaries
// are certain under either form.  Only the razor-thin ambiguous band
// falls back to the exact divides, so results match line.cc bit for bit
// while the common case runs divide-free.
inline bool CrossesQuery(Vec2 qa, Vec2 r, const Segment& s2) noexcept {
  constexpr double eps = 1e-12;
  const Vec2 s = s2.b - s2.a;
  const double denom = Cross(r, s);
  const Vec2 qp = s2.a - qa;
  if (std::abs(denom) <= eps) {
    if (std::abs(Cross(qp, r)) > eps) return false;
    const double r2 = r.NormSq();
    if (r2 == 0.0) return s2.DistanceTo(qa) <= eps;
    double t0 = Dot(qp, r) / r2;
    double t1 = t0 + Dot(s, r) / r2;
    if (t0 > t1) std::swap(t0, t1);
    return !(std::max(t0, 0.0) > std::min(t1, 1.0) + eps);
  }
  const double nt = Cross(qp, s);
  const double nu = Cross(qp, r);
  // Accept iff both t = nt/denom and u = nu/denom land in [-eps, 1+eps];
  // in multiply form that interval is [tmin, tmax] regardless of the
  // sign of denom.
  const double lo = -eps * denom;
  const double hi = (1.0 + eps) * denom;
  const double tmin = std::min(lo, hi), tmax = std::max(lo, hi);
  const double band = 1e-14 * std::abs(denom);
  const double in_lo = tmin + band, in_hi = tmax - band;
  if (nt > in_lo && nt < in_hi && nu > in_lo && nu < in_hi) return true;
  const double out_lo = tmin - band, out_hi = tmax + band;
  if (nt < out_lo || nt > out_hi || nu < out_lo || nu > out_hi) return false;
  const double t = nt / denom;
  const double u = nu / denom;
  return !(t < -eps || t > 1.0 + eps || u < -eps || u > 1.0 + eps);
}

// Per-thread query scratch: the epoch-stamped dedupe table and the
// pretest-survivor buffer.  32-bit stamps halve the table's cache
// footprint; the epoch clears the table when it wraps, so a stale stamp
// can never alias a live one.
struct QueryScratch {
  std::vector<std::uint32_t> stamps;
  std::vector<std::uint32_t> survivors;
  std::uint32_t epoch = 0;

  std::uint32_t NextEpoch() {
    if (++epoch == 0) {
      std::fill(stamps.begin(), stamps.end(), 0u);
      epoch = 1;
    }
    return epoch;
  }
};

QueryScratch& Scratch() {
  thread_local QueryScratch scratch;
  return scratch;
}

bool EnvFlagSet(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr) return false;
  return std::strcmp(v, "1") == 0 || std::strcmp(v, "true") == 0 ||
         std::strcmp(v, "yes") == 0 || std::strcmp(v, "on") == 0;
}

}  // namespace

namespace detail {

std::size_t PretestScanScalar(const double* lanes, std::size_t begin,
                              std::size_t end, double qax, double qay,
                              double rx, double ry, std::uint32_t* out) {
  // Conservative straddle pretest: a candidate is excluded only when both
  // endpoints lie strictly on one side of the query's supporting line,
  // which proves it cannot pass the eps-tolerant IntersectSegments test.
  // The tolerance dominates the exact test's parameter eps (1e-12) in
  // both its branches — |cross| <= eps * |alpha - beta| for the
  // transversal accept and |cross| <= eps absolute for the collinear
  // accept — with 4x margin.  False survivors fall through to the exact
  // test; rejections are provably safe.
  std::size_t n_out = 0;
  for (std::size_t s = begin; s < end; s += 4) {
    const double* g = lanes + s * 4;
    for (std::size_t lane = 0; lane < 4; ++lane) {
      const double dax = g[lane] - qax, day = g[4 + lane] - qay;
      const double dbx = g[8 + lane] - qax, dby = g[12 + lane] - qay;
      const double alpha = rx * day - ry * dax;
      const double beta = rx * dby - ry * dbx;
      const double tol = 4e-12 * (std::abs(alpha) + std::abs(beta) + 1.0);
      if (!((alpha > tol && beta > tol) || (alpha < -tol && beta < -tol)))
        out[n_out++] = std::uint32_t(s + lane);
    }
  }
  return n_out;
}

std::size_t PointPretestScanScalar(const double* lanes, std::size_t count,
                                   double px, double py, std::uint32_t* out) {
  // Same conservative straddle pretest as PretestScanScalar (and the same
  // tolerance argument), but each slot brings its own ray origin o: the
  // query line is o -> (px, py) and the endpoints tested are the slot's
  // segment.  Rejections prove the eps-tolerant exact test would reject.
  std::size_t n_out = 0;
  for (std::size_t s = 0; s < count; s += 4) {
    const double* g = lanes + s * 6;
    for (std::size_t lane = 0; lane < 4; ++lane) {
      const double ox = g[16 + lane], oy = g[20 + lane];
      const double rx = px - ox, ry = py - oy;
      const double dax = g[lane] - ox, day = g[4 + lane] - oy;
      const double dbx = g[8 + lane] - ox, dby = g[12 + lane] - oy;
      const double alpha = rx * day - ry * dax;
      const double beta = rx * dby - ry * dbx;
      const double tol = 4e-12 * (std::abs(alpha) + std::abs(beta) + 1.0);
      if (!((alpha > tol && beta > tol) || (alpha < -tol && beta < -tol)))
        out[n_out++] = std::uint32_t(s + lane);
    }
  }
  return n_out;
}

const ScanKernel& ActiveScanKernel() noexcept {
  static const ScanKernel kernel = [] {
    // Wider kernels make candidate visits cheap relative to DDA steps, so
    // they prefer coarser cells: ~4 segments per scalar cell vs ~16 per
    // AVX2 cell measured best on the generated office worlds.
    ScanKernel k{&PretestScanScalar, &PointPretestScanScalar, "scalar", 2.0};
#if defined(NOMLOC_GEOMETRY_HAVE_X86) && (defined(__GNUC__) || defined(__clang__))
    bool want_avx2 = !EnvFlagSet("NOMLOC_FORCE_SCALAR");
    if (const char* name = std::getenv("NOMLOC_SIMD_TARGET"))
      want_avx2 = want_avx2 && std::strcmp(name, "avx2") == 0;
    if (want_avx2 && __builtin_cpu_supports("avx2") != 0)
      k = ScanKernel{&PretestScanAvx2, &PointPretestScanAvx2, "avx2", 4.0};
#endif
    return k;
  }();
  return kernel;
}

}  // namespace detail

std::size_t SegmentIndex::CellX(double x) const noexcept {
  return std::size_t(
      std::clamp((x - lo_.x) / cell_w_, 0.0, double(nx_ - 1)));
}

std::size_t SegmentIndex::CellY(double y) const noexcept {
  return std::size_t(
      std::clamp((y - lo_.y) / cell_h_, 0.0, double(ny_ - 1)));
}

SegmentIndex SegmentIndex::Build(std::span<const Segment> segments) {
  SegmentIndex idx;
  idx.segments_.assign(segments.begin(), segments.end());
  const std::size_t n = idx.segments_.size();
  if (n == 0) return idx;

  Aabb box{idx.segments_.front().a, idx.segments_.front().a};
  for (const Segment& s : idx.segments_) {
    box.Expand(s.a);
    box.Expand(s.b);
  }
  // Outer margin well beyond any ε-tolerant touch of a stored segment, so
  // every reachable intersection point lies strictly inside the grid.
  constexpr double kMarginM = 1e-3;
  idx.lo_ = box.lo - Vec2{kMarginM, kMarginM};
  idx.hi_ = box.hi + Vec2{kMarginM, kMarginM};
  const double w = idx.hi_.x - idx.lo_.x;
  const double h = idx.hi_.y - idx.lo_.y;

  // Cell edge targets cell_factor * sqrt(area / n): candidate pretests
  // cost a few ns (less with the vector kernel) while every extra DDA
  // step costs a min/branch/bounds round, so coarse cells beat the
  // 1-per-cell ideal (measured on the generated office worlds).  Clamp
  // cell size to sane indoor scales and the grid to a bounded allocation.
  idx.scan_fn_ = detail::ActiveScanKernel().fn;
  double target = detail::ActiveScanKernel().cell_factor *
                  std::sqrt(std::max(w * h, 1e-12) / double(n));
  target = std::clamp(target, 0.25, 64.0);
  idx.nx_ = std::clamp<std::size_t>(std::size_t(std::ceil(w / target)), 1,
                                    2048);
  idx.ny_ = std::clamp<std::size_t>(std::size_t(std::ceil(h / target)), 1,
                                    2048);
  idx.cell_w_ = std::max(w / double(idx.nx_), 1e-9);
  idx.cell_h_ = std::max(h / double(idx.ny_), 1e-9);

  // Conservative registration: a segment joins every cell its kPadM-padded
  // box overlaps.  Two CSR passes: count, then fill.
  const auto for_each_covered_cell = [&](const Segment& s, auto&& cell_fn) {
    const double x0 = std::min(s.a.x, s.b.x) - kPadM;
    const double x1 = std::max(s.a.x, s.b.x) + kPadM;
    const double y0 = std::min(s.a.y, s.b.y) - kPadM;
    const double y1 = std::max(s.a.y, s.b.y) + kPadM;
    const std::size_t ix0 = idx.CellX(x0), ix1 = idx.CellX(x1);
    const std::size_t iy0 = idx.CellY(y0), iy1 = idx.CellY(y1);
    for (std::size_t cy = iy0; cy <= iy1; ++cy) {
      for (std::size_t cx = ix0; cx <= ix1; ++cx) {
        const Vec2 blo{idx.lo_.x + double(cx) * idx.cell_w_ - kPadM,
                       idx.lo_.y + double(cy) * idx.cell_h_ - kPadM};
        const Vec2 bhi{idx.lo_.x + double(cx + 1) * idx.cell_w_ + kPadM,
                       idx.lo_.y + double(cy + 1) * idx.cell_h_ + kPadM};
        if (SegmentOverlapsBox(s, blo, bhi)) cell_fn(cy * idx.nx_ + cx);
      }
    }
  };

  // Count registrations, then round every cell up to whole 4-wide lanes
  // so the vector kernel never reads past its cell.
  const std::size_t cells = idx.nx_ * idx.ny_;
  std::vector<std::uint32_t> count(cells, 0);
  for (const Segment& s : idx.segments_)
    for_each_covered_cell(s, [&](std::size_t cell) { ++count[cell]; });
  idx.cell_start_.assign(cells + 1, 0);
  for (std::size_t c = 0; c < cells; ++c)
    idx.cell_start_[c + 1] = idx.cell_start_[c] + ((count[c] + 3u) & ~3u);
  const std::size_t slots = idx.cell_start_.back();
  // Over-allocate by one cache line and offset group 0 onto a 64-byte
  // boundary, so every 16-double group is exactly two lines.
  idx.cand_lanes_.assign(slots * 4 + 8, 0.0);
  idx.lane_base_ =
      (64 - (reinterpret_cast<std::uintptr_t>(idx.cand_lanes_.data()) & 63)) %
      64 / sizeof(double);
  idx.cand_idx_.assign(slots, 0);
  const auto set_slot = [&](std::size_t s, const Segment& seg) {
    double* g = idx.cand_lanes_.data() + idx.lane_base_ +
                (s & ~std::size_t(3)) * 4;
    const std::size_t lane = s & 3;
    g[lane] = seg.a.x;
    g[4 + lane] = seg.a.y;
    g[8 + lane] = seg.b.x;
    g[12 + lane] = seg.b.y;
  };
  std::vector<std::uint32_t> cursor(idx.cell_start_.begin(),
                                    idx.cell_start_.end() - 1);
  for (std::size_t i = 0; i < n; ++i)
    for_each_covered_cell(idx.segments_[i], [&](std::size_t cell) {
      const std::uint32_t s = cursor[cell]++;
      set_slot(s, idx.segments_[i]);
      idx.cand_idx_[s] = std::uint32_t(i);
    });
  // Pad each cell's tail lanes with copies of its first entry: a
  // duplicate either fails the pretest with its twin or is deduped /
  // re-tested downstream with an identical outcome.
  for (std::size_t c = 0; c < cells; ++c) {
    if (count[c] == 0) continue;
    const std::size_t first = idx.cell_start_[c];
    const Segment fill = CandidateAt(idx.LaneData(),
                                     std::uint32_t(first));
    for (std::size_t s = first + count[c]; s < idx.cell_start_[c + 1]; ++s) {
      set_slot(s, fill);
      idx.cand_idx_[s] = idx.cand_idx_[first];
    }
  }
  return idx;
}

// Amanatides–Woo traversal of the cells along `q` (clipped to the grid),
// emitting same-row *runs*: consecutive x-steps stay within one grid row,
// whose cells are adjacent in the CSR, so the whole run is the single
// contiguous slot range [slot_begin, slot_end) — one kernel scan instead
// of one per cell.  `fn(slot_begin, slot_end, next_t)` receives the
// parameter at which the walk leaves the run; returning true stops the
// walk.  Runs preserve the result contract: every query method is
// order-independent within a range (dedupe + exact test for crossings,
// min-with-tie-break for first hit), so merging cells cannot change
// outputs.
template <typename RunFn>
void SegmentIndex::WalkCells(const Segment& q, RunFn&& fn) const {
  if (Empty()) return;
  const Vec2 d = q.b - q.a;
  double t0 = 0.0, t1 = 1.0;
  if (!ClipToBox(q.a, d, lo_, hi_, t0, t1)) return;

  const Vec2 entry = q.a + d * t0;
  std::size_t cx = CellX(entry.x);
  std::size_t cy = CellY(entry.y);

  // Parameter at which the walk leaves the current cell along each axis.
  double tmax_x = kInf, tmax_y = kInf, tdelta_x = kInf, tdelta_y = kInf;
  std::ptrdiff_t step_x = 0, step_y = 0;
  if (d.x != 0.0) {
    const double inv = 1.0 / d.x;
    step_x = d.x > 0.0 ? 1 : -1;
    const std::size_t edge = d.x > 0.0 ? cx + 1 : cx;
    tmax_x = (lo_.x + double(edge) * cell_w_ - q.a.x) * inv;
    tdelta_x = double(step_x) * cell_w_ * inv;
  }
  if (d.y != 0.0) {
    const double inv = 1.0 / d.y;
    step_y = d.y > 0.0 ? 1 : -1;
    const std::size_t edge = d.y > 0.0 ? cy + 1 : cy;
    tmax_y = (lo_.y + double(edge) * cell_h_ - q.a.y) * inv;
    tdelta_y = double(step_y) * cell_h_ * inv;
  }

  // The walk cannot visit more cells than one full row plus one column.
  std::size_t steps_left = nx_ + ny_ + 4;
  std::size_t run_lo = cx, run_hi = cx;  // Inclusive cx span of the run.
  while (steps_left-- > 0) {
    const double boundary_t = std::min(tmax_x, tmax_y);
    const double exit_t = std::min(boundary_t, t1);
    if (boundary_t <= t1 && tmax_x < tmax_y &&
        (step_x > 0 ? cx + 1 < nx_ : cx > 0)) {
      // Next crossing stays in this row: extend the run.
      cx = std::size_t(std::ptrdiff_t(cx) + step_x);
      tmax_x += tdelta_x;
      run_lo = std::min(run_lo, cx);
      run_hi = std::max(run_hi, cx);
      continue;
    }
    const std::size_t base = cy * nx_;
    if (fn(cell_start_[base + run_lo], cell_start_[base + run_hi + 1],
           exit_t))
      return;
    if (boundary_t > t1) return;  // Clip end reached.
    if (tmax_x < tmax_y) return;  // Grid edge in x.
    if (step_y > 0 ? cy + 1 >= ny_ : cy == 0) return;
    cy = std::size_t(std::ptrdiff_t(cy) + step_y);
    tmax_y += tdelta_y;
    run_lo = run_hi = cx;
  }
}

void SegmentIndex::CrossingIndices(const Segment& q,
                                   std::vector<std::uint32_t>& out) const {
  if (Empty()) return;
  // Per run: pretest-scan the candidate lanes, then exact-test the
  // survivors once each (candidates repeat across cells; the epoch stamp
  // dedupes them).  Only the matches are sorted back into ascending input
  // order — the crossing set is far smaller than the candidate set, and
  // ascending order is what lets callers summing over matches reproduce
  // the brute-force scan bit for bit.
  const auto scan = scan_fn_;
  const double* lanes = LaneData();
  QueryScratch& scratch = Scratch();
  if (scratch.stamps.size() < segments_.size())
    scratch.stamps.resize(segments_.size(), 0);
  if (scratch.survivors.size() < cand_idx_.size())
    scratch.survivors.resize(cand_idx_.size());
  const std::uint32_t epoch = scratch.NextEpoch();
  const Vec2 r = q.b - q.a;
  const std::size_t first = out.size();
  WalkCells(q, [&](std::size_t slot_begin, std::size_t slot_end, double) {
    const std::size_t n_surv = scan(lanes, slot_begin, slot_end, q.a.x, q.a.y,
                                    r.x, r.y, scratch.survivors.data());
    for (std::size_t k = 0; k < n_surv; ++k) {
      const std::uint32_t slot = scratch.survivors[k];
      const std::uint32_t seg = cand_idx_[slot];
      if (scratch.stamps[seg] == epoch) continue;
      scratch.stamps[seg] = epoch;
      if (CrossesQuery(q.a, r, CandidateAt(lanes, slot))) out.push_back(seg);
    }
    return false;
  });
  // Insertion sort: the typical crossing set is a handful of indices, far
  // below where std::sort's dispatch overhead pays for itself.
  for (std::size_t i = first + 1; i < out.size(); ++i) {
    const std::uint32_t v = out[i];
    std::size_t j = i;
    for (; j > first && out[j - 1] > v; --j) out[j] = out[j - 1];
    out[j] = v;
  }
}

bool SegmentIndex::AnyCrossing(const Segment& q) const {
  if (Empty()) return false;
  const auto scan = scan_fn_;
  const double* lanes = LaneData();
  QueryScratch& scratch = Scratch();
  if (scratch.survivors.size() < cand_idx_.size())
    scratch.survivors.resize(cand_idx_.size());
  const Vec2 r = q.b - q.a;
  bool found = false;
  WalkCells(q, [&](std::size_t slot_begin, std::size_t slot_end, double) {
    const std::size_t n_surv = scan(lanes, slot_begin, slot_end, q.a.x, q.a.y,
                                    r.x, r.y, scratch.survivors.data());
    for (std::size_t k = 0; k < n_surv; ++k) {
      if (CrossesQuery(q.a, r, CandidateAt(lanes, scratch.survivors[k]))) {
        found = true;
        return true;
      }
    }
    return false;
  });
  return found;
}

std::optional<SegmentIndex::Hit> SegmentIndex::FirstHit(
    const Segment& q) const {
  if (Empty()) return std::nullopt;
  const auto scan = scan_fn_;
  const double* lanes = LaneData();
  QueryScratch& scratch = Scratch();
  if (scratch.survivors.size() < cand_idx_.size())
    scratch.survivors.resize(cand_idx_.size());
  std::optional<Hit> best;
  const Vec2 d = q.b - q.a;
  WalkCells(q, [&](std::size_t slot_begin, std::size_t slot_end,
                   double next_t) {
    const std::size_t n_surv = scan(lanes, slot_begin, slot_end, q.a.x, q.a.y,
                                    d.x, d.y, scratch.survivors.data());
    for (std::size_t k = 0; k < n_surv; ++k) {
      const std::uint32_t slot = scratch.survivors[k];
      const Segment s = CandidateAt(lanes, slot);
      const auto hit = IntersectSegments(q, s);
      if (!hit) continue;
      const std::uint32_t idx = cand_idx_[slot];
      const double t = ParamAlong(q.a, d, *hit);
      if (!best || t < best->t || (t == best->t && idx < best->index))
        best = Hit{idx, *hit, t};
    }
    // Runs are visited in increasing entry order; once the best hit
    // strictly precedes the next run's entry (with margin for the
    // ε-tolerant intersection test), no later run can beat it.
    return best && best->t + 1e-9 < next_t;
  });
  return best;
}

std::size_t SegmentIndex::ApproxBytes() const noexcept {
  return segments_.capacity() * sizeof(Segment) +
         cell_start_.capacity() * sizeof(std::uint32_t) +
         cand_lanes_.capacity() * sizeof(double) +
         cand_idx_.capacity() * sizeof(std::uint32_t);
}

}  // namespace nomloc::geometry
