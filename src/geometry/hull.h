// Convex hulls and polygon point sampling.
#pragma once

#include <span>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "geometry/polygon.h"

namespace nomloc::geometry {

/// Convex hull of a point set (Andrew monotone chain), CCW, collinear
/// points on the hull boundary removed.  Returns fewer than 3 points for
/// degenerate inputs (all points collinear or coincident).
std::vector<Vec2> ConvexHull(std::span<const Vec2> points);

/// Uniform random point inside the polygon (rejection from the bounding
/// box).  Requires a polygon with positive area.
Vec2 RandomPointIn(const Polygon& polygon, common::Rng& rng);

/// `count` evenly spread grid points inside the polygon (row-major scan of
/// a grid sized to yield roughly `count` interior points).  Useful for
/// Monte-Carlo-free coverage sweeps.
std::vector<Vec2> GridPointsIn(const Polygon& polygon, double step_m);

}  // namespace nomloc::geometry
