// Convex hulls and polygon point sampling.
#pragma once

#include <span>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "geometry/polygon.h"

namespace nomloc::geometry {

/// Convex hull of a point set (Andrew monotone chain), CCW, collinear
/// points on the hull boundary removed.  Returns fewer than 3 points for
/// degenerate inputs (all points collinear or coincident).
std::vector<Vec2> ConvexHull(std::span<const Vec2> points);

/// Uniform random point inside the polygon (rejection from the bounding
/// box).  Requires a polygon with positive area.
Vec2 RandomPointIn(const Polygon& polygon, common::Rng& rng);

/// Grid points with spacing `step_m` inside the polygon, in row-major
/// order.  Useful for Monte-Carlo-free coverage sweeps.  Each row's scan
/// is clipped to the polygon's slice at that scanline, so the per-point
/// O(edges) containment test only runs where points can actually fall;
/// the returned points are bit-identical to an unclipped scan of the full
/// bounding box.
std::vector<Vec2> GridPointsIn(const Polygon& polygon, double step_m);

}  // namespace nomloc::geometry
