// Simple polygons: area/centroid, containment, convexity, edges.
//
// Invariant: a constructed Polygon has >= 3 vertices, is stored in
// counter-clockwise (CCW) order, and is simple (non-self-intersecting).
// Simplicity is checked at construction (O(n^2), fine for room shapes).
#pragma once

#include <span>
#include <vector>

#include "common/status.h"
#include "geometry/line.h"
#include "geometry/vec2.h"

namespace nomloc::geometry {

class Polygon {
 public:
  /// Validates and normalises the boundary: >= 3 distinct vertices, simple;
  /// reverses CW input to CCW.
  static common::Result<Polygon> Create(std::vector<Vec2> vertices);

  /// Axis-aligned rectangle [x0,x1] x [y0,y1]; requires x1>x0, y1>y0.
  static Polygon Rectangle(double x0, double y0, double x1, double y1);

  std::span<const Vec2> Vertices() const noexcept { return vertices_; }
  std::size_t VertexCount() const noexcept { return vertices_.size(); }
  Vec2 Vertex(std::size_t i) const;

  /// Boundary edge i, from vertex i to vertex (i+1) mod n.
  Segment Edge(std::size_t i) const;
  std::size_t EdgeCount() const noexcept { return vertices_.size(); }

  /// Positive area (shoelace).
  double Area() const noexcept;
  double Perimeter() const noexcept;
  Vec2 Centroid() const noexcept;
  Aabb BoundingBox() const noexcept;

  /// True when every interior angle is <= 180 degrees.
  bool IsConvex(double eps = 1e-9) const noexcept;

  /// Point-in-polygon (boundary counts as inside), crossing-number test.
  bool Contains(Vec2 p, double eps = 1e-9) const noexcept;

  /// Distance from p to the boundary (0 if p lies on it).
  double BoundaryDistance(Vec2 p) const noexcept;

  /// True when segment (a, b) stays strictly inside except possibly at its
  /// endpoints — i.e. no boundary edge is crossed.  Endpoints on the
  /// boundary are tolerated.
  bool ContainsSegment(Vec2 a, Vec2 b, double eps = 1e-9) const noexcept;

 private:
  explicit Polygon(std::vector<Vec2> vertices)
      : vertices_(std::move(vertices)) {}
  std::vector<Vec2> vertices_;
};

/// Signed area of a closed polyline (positive = CCW).
double SignedArea(std::span<const Vec2> vertices) noexcept;

}  // namespace nomloc::geometry
