// AVX2 pretest-scan kernel for SegmentIndex.  This is the only geometry
// translation unit compiled with -mavx2; it is reached exclusively via
// the runtime dispatch in segment_index_scan.h, so the rest of the
// library stays baseline-ISA (the simd/ module uses the same scheme).
#if defined(NOMLOC_GEOMETRY_HAVE_X86)

#include <immintrin.h>

#include "geometry/segment_index_scan.h"

namespace nomloc::geometry::detail {

namespace {

// Survivor lane ids per 4-bit keep mask, packed for a branchless
// compress: four unconditional stores (the tail beyond the popcount is
// overwritten by the next group or ignored), so a sparse survivor
// pattern costs no mispredicted branches.
constexpr std::uint8_t kCompress[16][4] = {
    {0, 0, 0, 0}, {0, 0, 0, 0}, {1, 0, 0, 0}, {0, 1, 0, 0},
    {2, 0, 0, 0}, {0, 2, 0, 0}, {1, 2, 0, 0}, {0, 1, 2, 0},
    {3, 0, 0, 0}, {0, 3, 0, 0}, {1, 3, 0, 0}, {0, 1, 3, 0},
    {2, 3, 0, 0}, {0, 2, 3, 0}, {1, 2, 3, 0}, {0, 1, 2, 3},
};

}  // namespace

std::size_t PretestScanAvx2(const double* lanes, std::size_t begin,
                            std::size_t end, double qax, double qay, double rx,
                            double ry, std::uint32_t* out) {
  // Four candidates per iteration, running the conservative straddle
  // pretest lane-parallel with the same arithmetic as the scalar kernel
  // (see PretestScanScalar for why the rejection is safe against the
  // exact test's tolerances).  Each 4-candidate group is 16 contiguous
  // doubles, so the four loads below walk one forward stream two cache
  // lines at a time.
  const __m256d vqax = _mm256_set1_pd(qax), vqay = _mm256_set1_pd(qay);
  const __m256d vrx = _mm256_set1_pd(rx), vry = _mm256_set1_pd(ry);
  const __m256d scale = _mm256_set1_pd(4e-12);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  std::size_t n_out = 0;
  for (std::size_t s = begin; s < end; s += 4) {
    const double* g = lanes + s * 4;
    const __m256d dax = _mm256_sub_pd(_mm256_loadu_pd(g), vqax);
    const __m256d day = _mm256_sub_pd(_mm256_loadu_pd(g + 4), vqay);
    const __m256d dbx = _mm256_sub_pd(_mm256_loadu_pd(g + 8), vqax);
    const __m256d dby = _mm256_sub_pd(_mm256_loadu_pd(g + 12), vqay);
    const __m256d alpha =
        _mm256_sub_pd(_mm256_mul_pd(vrx, day), _mm256_mul_pd(vry, dax));
    const __m256d beta =
        _mm256_sub_pd(_mm256_mul_pd(vrx, dby), _mm256_mul_pd(vry, dbx));
    const __m256d tol = _mm256_mul_pd(
        scale, _mm256_add_pd(_mm256_add_pd(_mm256_and_pd(alpha, abs_mask),
                                           _mm256_and_pd(beta, abs_mask)),
                             one));
    const __m256d ntol = _mm256_sub_pd(_mm256_setzero_pd(), tol);
    const __m256d pos = _mm256_and_pd(_mm256_cmp_pd(alpha, tol, _CMP_GT_OQ),
                                      _mm256_cmp_pd(beta, tol, _CMP_GT_OQ));
    const __m256d neg = _mm256_and_pd(_mm256_cmp_pd(alpha, ntol, _CMP_LT_OQ),
                                      _mm256_cmp_pd(beta, ntol, _CMP_LT_OQ));
    const unsigned m =
        unsigned(~_mm256_movemask_pd(_mm256_or_pd(pos, neg))) & 0xFu;
    const std::uint8_t* c = kCompress[m];
    const std::uint32_t base = std::uint32_t(s);
    out[n_out] = base + c[0];
    out[n_out + 1] = base + c[1];
    out[n_out + 2] = base + c[2];
    out[n_out + 3] = base + c[3];
    n_out += std::size_t(__builtin_popcount(m));
  }
  return n_out;
}

std::size_t PointPretestScanAvx2(const double* lanes, std::size_t count,
                                 double px, double py, std::uint32_t* out) {
  // Per-slot ray origins against one shared target point (the image-tree
  // prune; see PointPretestScanScalar for the tolerance argument).  Each
  // 4-slot group is 24 contiguous doubles — three cache lines on one
  // forward stream.
  const __m256d vpx = _mm256_set1_pd(px), vpy = _mm256_set1_pd(py);
  const __m256d scale = _mm256_set1_pd(4e-12);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  std::size_t n_out = 0;
  for (std::size_t s = 0; s < count; s += 4) {
    const double* g = lanes + s * 6;
    const __m256d ox = _mm256_loadu_pd(g + 16);
    const __m256d oy = _mm256_loadu_pd(g + 20);
    const __m256d rx = _mm256_sub_pd(vpx, ox);
    const __m256d ry = _mm256_sub_pd(vpy, oy);
    const __m256d dax = _mm256_sub_pd(_mm256_loadu_pd(g), ox);
    const __m256d day = _mm256_sub_pd(_mm256_loadu_pd(g + 4), oy);
    const __m256d dbx = _mm256_sub_pd(_mm256_loadu_pd(g + 8), ox);
    const __m256d dby = _mm256_sub_pd(_mm256_loadu_pd(g + 12), oy);
    const __m256d alpha =
        _mm256_sub_pd(_mm256_mul_pd(rx, day), _mm256_mul_pd(ry, dax));
    const __m256d beta =
        _mm256_sub_pd(_mm256_mul_pd(rx, dby), _mm256_mul_pd(ry, dbx));
    const __m256d tol = _mm256_mul_pd(
        scale, _mm256_add_pd(_mm256_add_pd(_mm256_and_pd(alpha, abs_mask),
                                           _mm256_and_pd(beta, abs_mask)),
                             one));
    const __m256d ntol = _mm256_sub_pd(_mm256_setzero_pd(), tol);
    const __m256d pos = _mm256_and_pd(_mm256_cmp_pd(alpha, tol, _CMP_GT_OQ),
                                      _mm256_cmp_pd(beta, tol, _CMP_GT_OQ));
    const __m256d neg = _mm256_and_pd(_mm256_cmp_pd(alpha, ntol, _CMP_LT_OQ),
                                      _mm256_cmp_pd(beta, ntol, _CMP_LT_OQ));
    const unsigned m =
        unsigned(~_mm256_movemask_pd(_mm256_or_pd(pos, neg))) & 0xFu;
    const std::uint8_t* c = kCompress[m];
    const std::uint32_t base = std::uint32_t(s);
    out[n_out] = base + c[0];
    out[n_out + 1] = base + c[1];
    out[n_out + 2] = base + c[2];
    out[n_out + 3] = base + c[3];
    n_out += std::size_t(__builtin_popcount(m));
  }
  return n_out;
}

}  // namespace nomloc::geometry::detail

#endif  // NOMLOC_GEOMETRY_HAVE_X86
