#include "geometry/hull.h"

#include <algorithm>

#include "common/assert.h"

namespace nomloc::geometry {

std::vector<Vec2> ConvexHull(std::span<const Vec2> points) {
  std::vector<Vec2> pts(points.begin(), points.end());
  std::sort(pts.begin(), pts.end(), [](Vec2 a, Vec2 b) {
    return a.x < b.x || (a.x == b.x && a.y < b.y);
  });
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  const std::size_t n = pts.size();
  if (n < 3) return pts;

  std::vector<Vec2> hull(2 * n);
  std::size_t k = 0;
  // Lower hull.
  for (std::size_t i = 0; i < n; ++i) {
    while (k >= 2 &&
           Cross(hull[k - 1] - hull[k - 2], pts[i] - hull[k - 2]) <= 0.0)
      --k;
    hull[k++] = pts[i];
  }
  // Upper hull.
  const std::size_t lower = k + 1;
  for (std::size_t i = n - 1; i-- > 0;) {
    while (k >= lower &&
           Cross(hull[k - 1] - hull[k - 2], pts[i] - hull[k - 2]) <= 0.0)
      --k;
    hull[k++] = pts[i];
  }
  hull.resize(k - 1);  // Last point equals the first.
  return hull;
}

Vec2 RandomPointIn(const Polygon& polygon, common::Rng& rng) {
  NOMLOC_REQUIRE(polygon.Area() > 0.0);
  const Aabb box = polygon.BoundingBox();
  for (int attempt = 0; attempt < 100000; ++attempt) {
    const Vec2 p{rng.Uniform(box.lo.x, box.hi.x),
                 rng.Uniform(box.lo.y, box.hi.y)};
    if (polygon.Contains(p)) return p;
  }
  // Unreachable for positive-area polygons; keep a defined fallback.
  return polygon.Centroid();
}

std::vector<Vec2> GridPointsIn(const Polygon& polygon, double step_m) {
  NOMLOC_REQUIRE(step_m > 0.0);
  const Aabb box = polygon.BoundingBox();
  std::vector<Vec2> out;
  for (double y = box.lo.y + step_m / 2.0; y < box.hi.y; y += step_m)
    for (double x = box.lo.x + step_m / 2.0; x < box.hi.x; x += step_m)
      if (polygon.Contains({x, y})) out.push_back({x, y});
  return out;
}

}  // namespace nomloc::geometry
