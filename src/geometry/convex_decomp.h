// Convex decomposition of simple polygons.
//
// The paper handles non-convex areas (the L-shape lobby) by "dividing it
// into several convex ones" (§IV-B2).  We triangulate by ear clipping and
// then greedily merge triangles across shared diagonals while the union
// stays convex (Hertel–Mehlhorn style), which yields at most 4x the
// optimal number of convex parts — more than good enough for room shapes.
#pragma once

#include <vector>

#include "common/status.h"
#include "geometry/polygon.h"

namespace nomloc::geometry {

/// Ear-clipping triangulation of a simple polygon (CCW).  Returns
/// triangles as vertex triples.  Fails only on numerically degenerate
/// input that survived Polygon validation.
common::Result<std::vector<std::array<Vec2, 3>>> Triangulate(
    const Polygon& polygon);

/// Decomposes a simple polygon into convex parts whose union is the
/// polygon and whose interiors are disjoint.  A convex input is returned
/// as a single part.
common::Result<std::vector<Polygon>> DecomposeConvex(const Polygon& polygon);

}  // namespace nomloc::geometry
