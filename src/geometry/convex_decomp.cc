#include "geometry/convex_decomp.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <list>

#include "common/assert.h"

namespace nomloc::geometry {
namespace {

bool PointInTriangle(Vec2 p, Vec2 a, Vec2 b, Vec2 c, double eps) {
  const double d1 = Cross(b - a, p - a);
  const double d2 = Cross(c - b, p - b);
  const double d3 = Cross(a - c, p - c);
  const bool has_neg = d1 < -eps || d2 < -eps || d3 < -eps;
  const bool has_pos = d1 > eps || d2 > eps || d3 > eps;
  return !(has_neg && has_pos);
}

}  // namespace

common::Result<std::vector<std::array<Vec2, 3>>> Triangulate(
    const Polygon& polygon) {
  std::vector<Vec2> v(polygon.Vertices().begin(), polygon.Vertices().end());
  std::vector<std::array<Vec2, 3>> tris;
  tris.reserve(v.size() - 2);
  constexpr double kEps = 1e-12;

  // Ear clipping: repeatedly cut a convex vertex whose triangle contains
  // no other vertex.
  std::size_t guard = 0;
  const std::size_t guard_limit = v.size() * v.size() + 16;
  while (v.size() > 3) {
    if (++guard > guard_limit)
      return common::NumericalError("ear clipping failed to converge");
    bool clipped = false;
    const std::size_t n = v.size();
    for (std::size_t i = 0; i < n; ++i) {
      const Vec2 prev = v[(i + n - 1) % n];
      const Vec2 cur = v[i];
      const Vec2 next = v[(i + 1) % n];
      // Reflex or collinear vertex cannot be an ear.
      if (Cross(cur - prev, next - cur) <= kEps) continue;
      bool contains_other = false;
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i || j == (i + n - 1) % n || j == (i + 1) % n) continue;
        if (PointInTriangle(v[j], prev, cur, next, kEps)) {
          contains_other = true;
          break;
        }
      }
      if (contains_other) continue;
      tris.push_back({prev, cur, next});
      v.erase(v.begin() + std::ptrdiff_t(i));
      clipped = true;
      break;
    }
    if (!clipped)
      return common::NumericalError("no ear found (degenerate polygon)");
  }
  tris.push_back({v[0], v[1], v[2]});
  return tris;
}

namespace {

// A part under construction: CCW vertex loop.
using Loop = std::vector<Vec2>;

bool LoopIsConvex(const Loop& loop, double eps = 1e-9) {
  const std::size_t n = loop.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 a = loop[i];
    const Vec2 b = loop[(i + 1) % n];
    const Vec2 c = loop[(i + 2) % n];
    if (Cross(b - a, c - b) < -eps) return false;
  }
  return true;
}

// If loops p and q share a (reversed) edge, merge them into one loop across
// that diagonal; returns merged loop or nullopt.
std::optional<Loop> MergeAcrossSharedEdge(const Loop& p, const Loop& q) {
  const std::size_t np = p.size(), nq = q.size();
  for (std::size_t i = 0; i < np; ++i) {
    const Vec2 a = p[i];
    const Vec2 b = p[(i + 1) % np];
    for (std::size_t j = 0; j < nq; ++j) {
      // Shared edge must be traversed in opposite directions in the two
      // CCW loops.
      if (AlmostEqual(q[j], b, 1e-9) &&
          AlmostEqual(q[(j + 1) % nq], a, 1e-9)) {
        Loop merged;
        merged.reserve(np + nq - 2);
        // Walk p from b (after the shared edge) all the way round to a…
        for (std::size_t k = 0; k < np; ++k)
          merged.push_back(p[(i + 1 + k) % np]);
        // …then q's interior vertices between a and b.
        for (std::size_t k = 2; k < nq; ++k)
          merged.push_back(q[(j + k) % nq]);
        // Remove collinear vertices to keep loops tidy.
        Loop tidy;
        const std::size_t nm = merged.size();
        for (std::size_t k = 0; k < nm; ++k) {
          const Vec2 prv = merged[(k + nm - 1) % nm];
          const Vec2 cur = merged[k];
          const Vec2 nxt = merged[(k + 1) % nm];
          if (std::abs(Cross(cur - prv, nxt - cur)) > 1e-12 ||
              Dot(cur - prv, nxt - cur) < 0.0)
            tidy.push_back(cur);
        }
        if (tidy.size() < 3) return std::nullopt;
        return tidy;
      }
    }
  }
  return std::nullopt;
}

}  // namespace

common::Result<std::vector<Polygon>> DecomposeConvex(const Polygon& polygon) {
  if (polygon.IsConvex()) return std::vector<Polygon>{polygon};

  NOMLOC_ASSIGN_OR_RETURN(auto tris, Triangulate(polygon));
  std::list<Loop> parts;
  for (const auto& t : tris) parts.push_back(Loop{t[0], t[1], t[2]});

  // Greedy pairwise merging while convexity is preserved.
  bool merged_any = true;
  while (merged_any) {
    merged_any = false;
    for (auto it = parts.begin(); it != parts.end() && !merged_any; ++it) {
      for (auto jt = std::next(it); jt != parts.end(); ++jt) {
        auto merged = MergeAcrossSharedEdge(*it, *jt);
        if (merged && LoopIsConvex(*merged)) {
          *it = std::move(*merged);
          parts.erase(jt);
          merged_any = true;
          break;
        }
      }
    }
  }

  std::vector<Polygon> out;
  out.reserve(parts.size());
  for (auto& loop : parts) {
    NOMLOC_ASSIGN_OR_RETURN(auto poly, Polygon::Create(std::move(loop)));
    NOMLOC_ASSERT(poly.IsConvex());
    out.push_back(std::move(poly));
  }
  return out;
}

}  // namespace nomloc::geometry
