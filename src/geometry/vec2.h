// 2-D vector/point type.  Plain value semantics; header-only.
#pragma once

#include <cmath>
#include <ostream>

namespace nomloc::geometry {

/// A point or displacement in the plane [metres].
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

  constexpr Vec2 operator+(Vec2 o) const noexcept { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const noexcept { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator-() const noexcept { return {-x, -y}; }
  constexpr Vec2 operator*(double s) const noexcept { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const noexcept { return {x / s, y / s}; }
  Vec2& operator+=(Vec2 o) noexcept { x += o.x; y += o.y; return *this; }
  Vec2& operator-=(Vec2 o) noexcept { x -= o.x; y -= o.y; return *this; }
  Vec2& operator*=(double s) noexcept { x *= s; y *= s; return *this; }

  constexpr bool operator==(const Vec2&) const = default;

  double Norm() const noexcept { return std::hypot(x, y); }
  constexpr double NormSq() const noexcept { return x * x + y * y; }

  /// Unit vector in the same direction; requires a non-zero vector.
  Vec2 Normalized() const noexcept {
    const double n = Norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{0.0, 0.0};
  }

  /// 90° counter-clockwise rotation.
  constexpr Vec2 Perp() const noexcept { return {-y, x}; }

  /// Rotation by `angle` radians counter-clockwise.
  Vec2 Rotated(double angle) const noexcept {
    const double c = std::cos(angle), s = std::sin(angle);
    return {c * x - s * y, s * x + c * y};
  }
};

constexpr Vec2 operator*(double s, Vec2 v) noexcept { return v * s; }

constexpr double Dot(Vec2 a, Vec2 b) noexcept { return a.x * b.x + a.y * b.y; }

/// z-component of the 3-D cross product; >0 when b is CCW from a.
constexpr double Cross(Vec2 a, Vec2 b) noexcept { return a.x * b.y - a.y * b.x; }

inline double Distance(Vec2 a, Vec2 b) noexcept { return (a - b).Norm(); }
constexpr double DistanceSq(Vec2 a, Vec2 b) noexcept { return (a - b).NormSq(); }

/// Linear interpolation: a at t=0, b at t=1.
constexpr Vec2 Lerp(Vec2 a, Vec2 b, double t) noexcept {
  return a + (b - a) * t;
}

/// Componentwise approximate equality within `eps`.
inline bool AlmostEqual(Vec2 a, Vec2 b, double eps = 1e-9) noexcept {
  return std::abs(a.x - b.x) <= eps && std::abs(a.y - b.y) <= eps;
}

inline std::ostream& operator<<(std::ostream& os, Vec2 v) {
  return os << "(" << v.x << ", " << v.y << ")";
}

/// Axis-aligned bounding box.
struct Aabb {
  Vec2 lo{0.0, 0.0};
  Vec2 hi{0.0, 0.0};

  constexpr bool Contains(Vec2 p) const noexcept {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }
  constexpr double Width() const noexcept { return hi.x - lo.x; }
  constexpr double Height() const noexcept { return hi.y - lo.y; }
  constexpr Vec2 Center() const noexcept {
    return {(lo.x + hi.x) / 2.0, (lo.y + hi.y) / 2.0};
  }
  /// Grows the box to include `p`.
  void Expand(Vec2 p) noexcept {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
  }
};

}  // namespace nomloc::geometry
