#include "geometry/halfplane.h"

#include <cmath>

#include "common/assert.h"

namespace nomloc::geometry {

HalfPlane HalfPlane::Normalized() const {
  const double norm = a.Norm();
  NOMLOC_REQUIRE(norm > 0.0);
  return {a / norm, c / norm};
}

HalfPlane HalfPlane::CloserTo(Vec2 winner, Vec2 loser) {
  NOMLOC_REQUIRE(!AlmostEqual(winner, loser, 0.0));
  const Vec2 a{2.0 * (loser.x - winner.x), 2.0 * (loser.y - winner.y)};
  const double c = loser.NormSq() - winner.NormSq();
  return {a, c};
}

void ClipLoopInto(std::span<const Vec2> loop, const HalfPlane& hp,
                  std::vector<Vec2>& out, double eps) {
  NOMLOC_ASSERT(loop.empty() || loop.data() != out.data());
  out.clear();
  const std::size_t n = loop.size();
  if (n == 0) return;
  out.reserve(n + 1);
  // Emit with consecutive near-duplicates dropped in place (clipping
  // introduces them where a crossing point lands on a vertex).
  const auto emit = [&out](Vec2 v) {
    if (out.empty() || !AlmostEqual(out.back(), v, 1e-12)) out.push_back(v);
  };
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 cur = loop[i];
    const Vec2 nxt = loop[(i + 1) % n];
    const double sc = hp.Slack(cur);
    const double sn = hp.Slack(nxt);
    const bool cur_in = sc >= -eps;
    const bool nxt_in = sn >= -eps;
    if (cur_in) emit(cur);
    // Edge crosses the boundary: emit the crossing point.
    if (cur_in != nxt_in) {
      const double denom = sc - sn;
      if (std::abs(denom) > 0.0) {
        const double t = sc / denom;
        emit(Lerp(cur, nxt, t));
      }
    }
  }
  while (out.size() > 1 && AlmostEqual(out.front(), out.back(), 1e-12))
    out.pop_back();
}

std::vector<Vec2> ClipLoop(std::span<const Vec2> loop, const HalfPlane& hp,
                           double eps) {
  std::vector<Vec2> out;
  ClipLoopInto(loop, hp, out, eps);
  return out;
}

std::optional<Polygon> IntersectConvex(const Polygon& convex,
                                       std::span<const HalfPlane> half_planes,
                                       double min_area) {
  NOMLOC_REQUIRE(convex.IsConvex());
  std::vector<Vec2> loop(convex.Vertices().begin(), convex.Vertices().end());
  for (const HalfPlane& hp : half_planes) {
    loop = ClipLoop(loop, hp);
    if (loop.size() < 3) return std::nullopt;
  }
  if (std::abs(SignedArea(loop)) < min_area) return std::nullopt;
  auto poly = Polygon::Create(std::move(loop));
  if (!poly.ok()) return std::nullopt;
  return std::move(poly).value();
}

std::vector<HalfPlane> ToHalfPlanes(const Polygon& convex) {
  NOMLOC_REQUIRE(convex.IsConvex());
  std::vector<HalfPlane> out;
  out.reserve(convex.EdgeCount());
  for (std::size_t i = 0; i < convex.EdgeCount(); ++i) {
    const Segment e = convex.Edge(i);
    const Vec2 d = e.b - e.a;
    // CCW polygon: interior is the left side of each directed edge, i.e.
    // Cross(d, p - a) >= 0  <=>  d.y*p.x - d.x*p.y <= d.y*a.x - d.x*a.y.
    out.push_back({{d.y, -d.x}, d.y * e.a.x - d.x * e.a.y});
  }
  return out;
}

Vec2 LoopCentroid(std::span<const Vec2> loop) noexcept {
  if (loop.empty()) return {0.0, 0.0};
  // Near-degenerate loops (slivers, point-like clip residues) make the
  // area-weighted formula divide by ~0 and fling the centroid far away;
  // the vertex mean is a safe convex combination instead.
  if (loop.size() < 3 || std::abs(SignedArea(loop)) < 1e-9) {
    Vec2 acc{0.0, 0.0};
    for (const Vec2 v : loop) acc += v;
    return acc / double(loop.size());
  }
  double twice_area = 0.0;
  Vec2 acc{0.0, 0.0};
  const std::size_t n = loop.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 a = loop[i];
    const Vec2 b = loop[(i + 1) % n];
    const double c = Cross(a, b);
    twice_area += c;
    acc += (a + b) * c;
  }
  return acc / (3.0 * twice_area);
}

}  // namespace nomloc::geometry
