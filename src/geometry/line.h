// Infinite lines and finite segments: intersection, distance, reflection.
#pragma once

#include <optional>

#include "geometry/vec2.h"

namespace nomloc::geometry {

/// Infinite line through `origin` with (non-zero) direction `dir`.
struct Line {
  Vec2 origin;
  Vec2 dir;

  /// Line through two distinct points.
  static Line Through(Vec2 a, Vec2 b);

  /// Perpendicular distance from `p` to the line.
  double DistanceTo(Vec2 p) const noexcept;

  /// Orthogonal projection of `p` onto the line.
  Vec2 Project(Vec2 p) const noexcept;

  /// Mirror image of `p` across the line.  This is the operation that
  /// places the paper's virtual APs (§IV-B2): the perpendicular bisector
  /// of (p, Mirror(p)) is exactly this line.
  Vec2 Mirror(Vec2 p) const noexcept;

  /// Signed side of `p`: >0 left of dir, <0 right, ~0 on the line.
  double Side(Vec2 p) const noexcept;
};

/// Finite segment from a to b.
struct Segment {
  Vec2 a;
  Vec2 b;

  double Length() const noexcept { return Distance(a, b); }
  Vec2 Midpoint() const noexcept { return Lerp(a, b, 0.5); }
  Line SupportingLine() const { return Line::Through(a, b); }

  /// Closest point on the segment to `p`.
  Vec2 ClosestPointTo(Vec2 p) const noexcept;
  double DistanceTo(Vec2 p) const noexcept;
};

/// Intersection point of two infinite lines; nullopt when parallel
/// (within tolerance) including collinear.
std::optional<Vec2> IntersectLines(const Line& l1, const Line& l2,
                                   double eps = 1e-12) noexcept;

/// Proper intersection of two segments (shared endpoints count).  Returns
/// the intersection point, or nullopt when they do not meet.  Collinear
/// overlapping segments return one point of the overlap.
std::optional<Vec2> IntersectSegments(const Segment& s1, const Segment& s2,
                                      double eps = 1e-12) noexcept;

/// True when the open segment (a,b) crosses segment `wall`.  Touching an
/// endpoint of the query segment exactly at the wall still counts as a
/// crossing — used for conservative LOS blockage tests.
bool SegmentsIntersect(const Segment& s1, const Segment& s2,
                       double eps = 1e-12) noexcept;

}  // namespace nomloc::geometry
