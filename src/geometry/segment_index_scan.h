// Internal pretest-scan kernels for SegmentIndex (see segment_index.h).
//
// The per-cell candidate scan is the hot loop of every index query: for
// each registered candidate it evaluates the conservative straddle
// pretest (both endpoints strictly on one side of the query's supporting
// line => provably no crossing) and collects the survivors for the exact
// IntersectSegments test.  Candidates are stored as interleaved lane
// blocks — each group of 4 slots is 16 contiguous doubles
// [ax0..3][ay0..3][bx0..3][by0..3], exactly two cache lines — so a cell
// scan is one forward stream the hardware prefetcher tracks, and the
// vector kernel's four loads per group all hit the same pair of lines.
// This header declares the scalar and AVX2 kernels plus the one-shot
// runtime dispatch that picks between them, mirroring the simd/ module's
// idiom (per-source -mavx2, __builtin_cpu_supports probe,
// NOMLOC_FORCE_SCALAR / NOMLOC_SIMD_TARGET overrides).
//
// Conservativeness is the only contract: a kernel may pass extra
// candidates through (they fail the exact test downstream) but must never
// reject a true eps-tolerant crossing.  The pretest tolerance
// 4e-12 * (|alpha| + |beta| + 1) dominates the exact test's 1e-12 eps in
// both its branches with 4x margin, so the <= 2-ulp differences between
// scalar and vector evaluation orders cannot change a query result.
// (A classifying variant that also proved certain *hits* with the second
// straddle pair was tried and reverted: in-situ counts show survivors
// are ~95% true crossings plus cell-duplicates, so the extra per-slot
// arithmetic bought almost no exact-test savings.)
#pragma once

#include <cstddef>
#include <cstdint>

namespace nomloc::geometry::detail {

/// Scans candidate slots [begin, end) (multiples of 4) of the interleaved
/// lane-block array `lanes` (slot s lives in the 16-double group at
/// lanes + (s & ~3) * 4, lane s & 3) against the query ray a=(qax,qay),
/// r=(rx,ry) and appends the slot numbers the pretest cannot exclude to
/// `out` (caller-sized for the worst case end-begin).  Returns the number
/// written.
using PretestScanFn = std::size_t (*)(const double* lanes, std::size_t begin,
                                      std::size_t end, double qax, double qay,
                                      double rx, double ry,
                                      std::uint32_t* out);

std::size_t PretestScanScalar(const double* lanes, std::size_t begin,
                              std::size_t end, double qax, double qay,
                              double rx, double ry, std::uint32_t* out);

/// Variant for per-candidate query origins against one shared target
/// point: slot s carries its own segment (a, b) *and* ray origin o in a
/// 24-double group [ax0..3][ay0..3][bx0..3][by0..3][ox0..3][oy0..3]
/// (three cache lines), and the straddle pretest runs against the ray
/// o -> p.  This is the image-method prune: o is a mirrored transmitter
/// image, p the receiver, (a, b) the bounce wall, and a candidate whose
/// wall lies strictly on one side of its image-to-receiver line cannot
/// host the reflection point.  Scans slots [0, count) — count a multiple
/// of 4, tail slots padded by the caller — with the same conservative
/// tolerance contract as the cell-scan kernel above.
using PointPretestScanFn = std::size_t (*)(const double* lanes,
                                           std::size_t count, double px,
                                           double py, std::uint32_t* out);

std::size_t PointPretestScanScalar(const double* lanes, std::size_t count,
                                   double px, double py, std::uint32_t* out);

#if defined(NOMLOC_GEOMETRY_HAVE_X86)
std::size_t PretestScanAvx2(const double* lanes, std::size_t begin,
                            std::size_t end, double qax, double qay, double rx,
                            double ry, std::uint32_t* out);
std::size_t PointPretestScanAvx2(const double* lanes, std::size_t count,
                                 double px, double py, std::uint32_t* out);
#endif

/// The resolved scan kernel plus its build-time tuning: wider kernels
/// make candidate visits cheap relative to DDA steps, so they prefer
/// coarser grid cells (cell_factor scales the target cell edge).
struct ScanKernel {
  PretestScanFn fn = nullptr;
  PointPretestScanFn point_fn = nullptr;
  const char* name = "scalar";
  double cell_factor = 2.0;
};

/// Widest kernel this build and CPU support, resolved once per process.
/// NOMLOC_FORCE_SCALAR=1 pins scalar; NOMLOC_SIMD_TARGET names a target
/// exactly like simd/dispatch.h (anything but "avx2" falls back to
/// scalar here, since these are the only two pretest kernels).
const ScanKernel& ActiveScanKernel() noexcept;

}  // namespace nomloc::geometry::detail
