#include "geometry/pathfinding.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/assert.h"

namespace nomloc::geometry {

namespace {

// Obstacle vertices pushed outward by `clearance` along the angle
// bisector of the adjacent edges (vertex normal of a CCW polygon).
std::vector<Vec2> InflatedVertices(const Polygon& obstacle,
                                   double clearance) {
  std::vector<Vec2> out;
  const std::size_t n = obstacle.VertexCount();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 prev = obstacle.Vertex((i + n - 1) % n);
    const Vec2 cur = obstacle.Vertex(i);
    const Vec2 next = obstacle.Vertex((i + 1) % n);
    // Outward normals of the two incident edges (CCW polygon: outward is
    // right of the edge direction).
    const Vec2 n1 = -(cur - prev).Perp().Normalized();
    const Vec2 n2 = -(next - cur).Perp().Normalized();
    Vec2 dir = (n1 + n2);
    if (dir.Norm() < 1e-12) dir = n1;  // 180-degree spike.
    out.push_back(cur + dir.Normalized() * clearance);
  }
  return out;
}

// Boundary vertices pulled inward (for walking around notches of a
// non-convex floor).
std::vector<Vec2> InsetBoundaryVertices(const Polygon& boundary,
                                        double clearance) {
  std::vector<Vec2> out;
  const std::size_t n = boundary.VertexCount();
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 prev = boundary.Vertex((i + n - 1) % n);
    const Vec2 cur = boundary.Vertex(i);
    const Vec2 next = boundary.Vertex((i + 1) % n);
    // Inward normal of a CCW boundary is the left side of each edge.
    const Vec2 n1 = (cur - prev).Perp().Normalized();
    const Vec2 n2 = (next - cur).Perp().Normalized();
    Vec2 dir = (n1 + n2);
    if (dir.Norm() < 1e-12) dir = n1;
    out.push_back(cur + dir.Normalized() * clearance);
  }
  return out;
}

bool SegmentWalkable(const Polygon& boundary,
                     std::span<const Polygon> obstacles, Vec2 a, Vec2 b) {
  if (!boundary.ContainsSegment(a, b)) return false;
  const Segment leg{a, b};
  for (const Polygon& obstacle : obstacles) {
    // Crossing any obstacle edge, or running through its interior, blocks.
    for (std::size_t e = 0; e < obstacle.EdgeCount(); ++e)
      if (SegmentsIntersect(leg, obstacle.Edge(e))) return false;
    if (obstacle.Contains(Lerp(a, b, 0.5)) &&
        obstacle.BoundaryDistance(Lerp(a, b, 0.5)) > 1e-9)
      return false;
  }
  return true;
}

}  // namespace

common::Result<PathPlan> ShortestPath(const Polygon& boundary,
                                      std::span<const Polygon> obstacles,
                                      Vec2 start, Vec2 goal,
                                      const PathPlannerOptions& options) {
  if (options.clearance_m < 0.0)
    return common::InvalidArgument("clearance must be non-negative");
  auto in_free_space = [&](Vec2 p) {
    if (!boundary.Contains(p)) return false;
    for (const Polygon& obstacle : obstacles)
      if (obstacle.Contains(p) && obstacle.BoundaryDistance(p) > 1e-9)
        return false;
    return true;
  };
  if (!in_free_space(start))
    return common::InvalidArgument("start is not in free space");
  if (!in_free_space(goal))
    return common::InvalidArgument("goal is not in free space");

  // Node set.
  std::vector<Vec2> nodes{start, goal};
  for (const Polygon& obstacle : obstacles)
    for (const Vec2 v : InflatedVertices(obstacle, options.clearance_m))
      if (in_free_space(v)) nodes.push_back(v);
  if (!boundary.IsConvex())
    for (const Vec2 v : InsetBoundaryVertices(boundary, options.clearance_m))
      if (in_free_space(v)) nodes.push_back(v);

  // Visibility edges.
  const std::size_t n = nodes.size();
  std::vector<std::vector<std::pair<std::size_t, double>>> adj(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (SegmentWalkable(boundary, obstacles, nodes[i], nodes[j])) {
        const double d = Distance(nodes[i], nodes[j]);
        adj[i].emplace_back(j, d);
        adj[j].emplace_back(i, d);
      }
    }
  }

  // Dijkstra from node 0 (start) to node 1 (goal).
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(n, kInf);
  std::vector<std::size_t> prev(n, n);
  using Entry = std::pair<double, std::size_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
  dist[0] = 0.0;
  queue.emplace(0.0, 0);
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (d > dist[u]) continue;
    if (u == 1) break;
    for (const auto& [v, w] : adj[u]) {
      if (dist[u] + w < dist[v]) {
        dist[v] = dist[u] + w;
        prev[v] = u;
        queue.emplace(dist[v], v);
      }
    }
  }
  if (dist[1] == kInf)
    return common::NotFound("no walkable route between the endpoints");

  PathPlan plan;
  plan.length_m = dist[1];
  std::vector<Vec2> reverse_path;
  for (std::size_t v = 1; v != n; v = prev[v]) {
    reverse_path.push_back(nodes[v]);
    if (v == 0) break;
  }
  plan.waypoints.assign(reverse_path.rbegin(), reverse_path.rend());
  NOMLOC_ASSERT(AlmostEqual(plan.waypoints.front(), start));
  NOMLOC_ASSERT(AlmostEqual(plan.waypoints.back(), goal));
  return plan;
}

common::Result<double> TourLength(const Polygon& boundary,
                                  std::span<const Polygon> obstacles,
                                  std::span<const Vec2> sites,
                                  const PathPlannerOptions& options) {
  if (sites.size() < 2)
    return common::InvalidArgument("a tour needs >= 2 sites");
  double total = 0.0;
  for (std::size_t i = 0; i + 1 < sites.size(); ++i) {
    NOMLOC_ASSIGN_OR_RETURN(
        PathPlan leg,
        ShortestPath(boundary, obstacles, sites[i], sites[i + 1], options));
    total += leg.length_m;
  }
  return total;
}

}  // namespace nomloc::geometry
