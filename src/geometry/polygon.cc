#include "geometry/polygon.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.h"

namespace nomloc::geometry {

double SignedArea(std::span<const Vec2> vertices) noexcept {
  double twice = 0.0;
  const std::size_t n = vertices.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 a = vertices[i];
    const Vec2 b = vertices[(i + 1) % n];
    twice += Cross(a, b);
  }
  return twice / 2.0;
}

namespace {

// True when non-adjacent edges of the closed polyline intersect.
bool IsSelfIntersecting(std::span<const Vec2> v) {
  const std::size_t n = v.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Segment ei{v[i], v[(i + 1) % n]};
    for (std::size_t j = i + 1; j < n; ++j) {
      // Skip adjacent edges (they share one endpoint by construction).
      if (j == i || (j + 1) % n == i || (i + 1) % n == j) continue;
      const Segment ej{v[j], v[(j + 1) % n]};
      if (SegmentsIntersect(ei, ej)) return true;
    }
  }
  return false;
}

}  // namespace

common::Result<Polygon> Polygon::Create(std::vector<Vec2> vertices) {
  if (vertices.size() < 3)
    return common::InvalidArgument("polygon needs at least 3 vertices");
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    const Vec2 a = vertices[i];
    const Vec2 b = vertices[(i + 1) % vertices.size()];
    if (AlmostEqual(a, b, 1e-12))
      return common::InvalidArgument("polygon has duplicate adjacent vertices");
  }
  const double area = SignedArea(vertices);
  if (std::abs(area) < 1e-12)
    return common::InvalidArgument("polygon is degenerate (zero area)");
  if (area < 0.0) std::reverse(vertices.begin(), vertices.end());
  if (IsSelfIntersecting(vertices))
    return common::InvalidArgument("polygon is self-intersecting");
  return Polygon(std::move(vertices));
}

Polygon Polygon::Rectangle(double x0, double y0, double x1, double y1) {
  NOMLOC_REQUIRE(x1 > x0 && y1 > y0);
  auto r = Create({{x0, y0}, {x1, y0}, {x1, y1}, {x0, y1}});
  NOMLOC_ASSERT(r.ok());
  return std::move(r).value();
}

Vec2 Polygon::Vertex(std::size_t i) const {
  NOMLOC_REQUIRE(i < vertices_.size());
  return vertices_[i];
}

Segment Polygon::Edge(std::size_t i) const {
  NOMLOC_REQUIRE(i < vertices_.size());
  return {vertices_[i], vertices_[(i + 1) % vertices_.size()]};
}

double Polygon::Area() const noexcept {
  return std::abs(SignedArea(vertices_));
}

double Polygon::Perimeter() const noexcept {
  double total = 0.0;
  for (std::size_t i = 0; i < vertices_.size(); ++i) total += Edge(i).Length();
  return total;
}

Vec2 Polygon::Centroid() const noexcept {
  // Area-weighted centroid of the polygon interior.
  double twice_area = 0.0;
  Vec2 acc{0.0, 0.0};
  const std::size_t n = vertices_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 a = vertices_[i];
    const Vec2 b = vertices_[(i + 1) % n];
    const double c = Cross(a, b);
    twice_area += c;
    acc += (a + b) * c;
  }
  if (std::abs(twice_area) < 1e-15) return vertices_.front();
  return acc / (3.0 * twice_area);
}

Aabb Polygon::BoundingBox() const noexcept {
  Aabb box{vertices_.front(), vertices_.front()};
  for (const Vec2 v : vertices_) box.Expand(v);
  return box;
}

bool Polygon::IsConvex(double eps) const noexcept {
  const std::size_t n = vertices_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 a = vertices_[i];
    const Vec2 b = vertices_[(i + 1) % n];
    const Vec2 c = vertices_[(i + 2) % n];
    // CCW polygon: every turn must be left (cross >= 0).
    if (Cross(b - a, c - b) < -eps) return false;
  }
  return true;
}

bool Polygon::Contains(Vec2 p, double eps) const noexcept {
  // Boundary counts as inside.
  for (std::size_t i = 0; i < vertices_.size(); ++i)
    if (Edge(i).DistanceTo(p) <= eps) return true;
  // Crossing number with a horizontal ray to +x.
  bool inside = false;
  const std::size_t n = vertices_.size();
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    const Vec2 a = vertices_[j];
    const Vec2 b = vertices_[i];
    const bool crosses = (b.y > p.y) != (a.y > p.y);
    if (crosses) {
      const double x_at = b.x + (p.y - b.y) * (a.x - b.x) / (a.y - b.y);
      if (p.x < x_at) inside = !inside;
    }
  }
  return inside;
}

double Polygon::BoundaryDistance(Vec2 p) const noexcept {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < vertices_.size(); ++i)
    best = std::min(best, Edge(i).DistanceTo(p));
  return best;
}

bool Polygon::ContainsSegment(Vec2 a, Vec2 b, double eps) const noexcept {
  if (!Contains(a, eps) || !Contains(b, eps)) return false;
  // Check crossings against each edge, tolerating touches at the segment's
  // own endpoints (they may legitimately lie on the boundary).
  const Segment q{a, b};
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    const auto hit = IntersectSegments(q, Edge(i));
    if (!hit) continue;
    if (Distance(*hit, a) <= eps || Distance(*hit, b) <= eps) continue;
    return false;
  }
  // Midpoint check catches segments running along the exterior of a
  // non-convex polygon while touching the boundary at both ends.
  return Contains(Lerp(a, b, 0.5), eps);
}

}  // namespace nomloc::geometry
