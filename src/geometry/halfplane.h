// Half-planes and convex-region operations.
//
// A HalfPlane is the set {p : a.x*p.x + a.y*p.y <= c}.  The SP-based
// localization algorithm (paper §IV-B) represents each proximity judgement
// and each boundary edge as one HalfPlane; the feasible region is their
// intersection, computed here by repeated Sutherland–Hodgman clipping.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "geometry/polygon.h"
#include "geometry/vec2.h"

namespace nomloc::geometry {

struct HalfPlane {
  Vec2 a;       ///< Outward normal coefficients.
  double c = 0; ///< Right-hand side.

  /// Signed slack c - a·p: >= 0 inside (satisfied), < 0 outside.
  double Slack(Vec2 p) const noexcept { return c - Dot(a, p); }
  bool Contains(Vec2 p, double eps = 1e-9) const noexcept {
    return Slack(p) >= -eps;
  }

  /// Shifts the boundary outward so that the half-plane grows by `amount`
  /// of slack: {a·p <= c + amount}.
  HalfPlane Relaxed(double amount) const noexcept { return {a, c + amount}; }

  /// The same half-plane with a unit normal, so Slack() is the signed
  /// Euclidean distance to the boundary.  Requires a non-zero normal.
  HalfPlane Normalized() const;

  /// The half-plane of points at least as close to `winner` as to `loser`
  /// (the perpendicular-bisector constraint, paper Eq. 7):
  ///   2(x_l - x_w) x + 2(y_l - y_w) y <= x_l^2 + y_l^2 - x_w^2 - y_w^2.
  /// Requires winner != loser.
  static HalfPlane CloserTo(Vec2 winner, Vec2 loser);
};

/// Clips a convex polygon (given as a CCW vertex loop) against one
/// half-plane (Sutherland–Hodgman).  Returns the clipped loop; empty when
/// nothing remains.  The input need not be a valid `Polygon` object — this
/// is the low-level workhorse.
std::vector<Vec2> ClipLoop(std::span<const Vec2> loop, const HalfPlane& hp,
                           double eps = 1e-9);

/// ClipLoop into a caller-owned buffer (cleared first; must not alias
/// `loop`).  Lets clip chains double-buffer two vectors instead of
/// allocating per plane — the solver clips O(constraints) planes per
/// update, so the malloc per clip is measurable there.
void ClipLoopInto(std::span<const Vec2> loop, const HalfPlane& hp,
                  std::vector<Vec2>& out, double eps = 1e-9);

/// Intersection of a convex polygon with a set of half-planes.
/// Returns nullopt when the intersection is empty or degenerate
/// (area below `min_area`).
std::optional<Polygon> IntersectConvex(const Polygon& convex,
                                       std::span<const HalfPlane> half_planes,
                                       double min_area = 1e-9);

/// Largest inscribed-circle center of a convex loop — cheap geometric
/// fallback when an LP-based Chebyshev center is not wanted.  Requires a
/// non-empty loop; returns its centroid for degenerate inputs.
Vec2 LoopCentroid(std::span<const Vec2> loop) noexcept;

/// The half-planes whose intersection is the given convex polygon (one per
/// edge, interior side).  Requires a convex polygon.
std::vector<HalfPlane> ToHalfPlanes(const Polygon& convex);

}  // namespace nomloc::geometry
