#include "localization/fingerprint.h"

#include <gtest/gtest.h>

#include <cmath>

#include "channel/csi_model.h"
#include "common/rng.h"
#include "geometry/hull.h"

namespace nomloc::localization {
namespace {

using geometry::Polygon;
using geometry::Vec2;

// Synthetic map: power = 1/d^2 to each of 3 APs over a grid.
RadioMap SyntheticMap(const Polygon& area, std::span<const Vec2> aps,
                      double step) {
  std::vector<FingerprintEntry> entries;
  for (const Vec2 p : geometry::GridPointsIn(area, step)) {
    FingerprintEntry e;
    e.position = p;
    for (const Vec2 ap : aps) {
      const double d = std::max(Distance(p, ap), 0.1);
      e.pdp.push_back(1.0 / (d * d));
    }
    entries.push_back(std::move(e));
  }
  auto map = RadioMap::Create(std::move(entries));
  return std::move(map).value();
}

const std::vector<Vec2> kAps{{1, 1}, {9, 1}, {5, 7}};

TEST(RadioMap, CreateValidation) {
  EXPECT_FALSE(RadioMap::Create({}).ok());
  std::vector<FingerprintEntry> bad_dim{{{0, 0}, {1.0, 2.0}},
                                        {{1, 0}, {1.0}}};
  EXPECT_FALSE(RadioMap::Create(bad_dim).ok());
  std::vector<FingerprintEntry> empty_dim{{{0, 0}, {}}};
  EXPECT_FALSE(RadioMap::Create(empty_dim).ok());
  std::vector<FingerprintEntry> neg{{{0, 0}, {1.0, -1.0}}};
  EXPECT_FALSE(RadioMap::Create(neg).ok());
}

TEST(RadioMap, SizeAndApCount) {
  const Polygon room = Polygon::Rectangle(0, 0, 10, 8);
  const RadioMap map = SyntheticMap(room, kAps, 1.0);
  EXPECT_EQ(map.ApCount(), 3u);
  EXPECT_EQ(map.Size(), 80u);
}

TEST(RadioMap, LocateValidation) {
  const Polygon room = Polygon::Rectangle(0, 0, 10, 8);
  const RadioMap map = SyntheticMap(room, kAps, 2.0);
  const std::vector<double> wrong_dim{1.0, 2.0};
  EXPECT_FALSE(map.Locate(wrong_dim).ok());
  const std::vector<double> neg{1.0, 2.0, -1.0};
  EXPECT_FALSE(map.Locate(neg).ok());
  const std::vector<double> ok{1.0, 2.0, 3.0};
  EXPECT_FALSE(map.Locate(ok, 0).ok());
  EXPECT_FALSE(map.Locate(ok, map.Size() + 1).ok());
}

TEST(RadioMap, ExactFingerprintSnapsToGridPoint) {
  const Polygon room = Polygon::Rectangle(0, 0, 10, 8);
  const RadioMap map = SyntheticMap(room, kAps, 1.0);
  // Query with the exact fingerprint of a map entry, k = 1.
  const FingerprintEntry& ref = map.Entries()[17];
  auto est = map.Locate(ref.pdp, 1);
  ASSERT_TRUE(est.ok());
  EXPECT_LT(Distance(*est, ref.position), 1e-9);
}

TEST(RadioMap, CleanQueriesLocalizeFinely) {
  const Polygon room = Polygon::Rectangle(0, 0, 10, 8);
  const RadioMap map = SyntheticMap(room, kAps, 0.5);
  common::Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const Vec2 truth{rng.Uniform(0.5, 9.5), rng.Uniform(0.5, 7.5)};
    std::vector<double> query;
    for (const Vec2 ap : kAps) {
      const double d = std::max(Distance(truth, ap), 0.1);
      query.push_back(1.0 / (d * d));
    }
    auto est = map.Locate(query, 3);
    ASSERT_TRUE(est.ok());
    // Fine survey grid -> sub-grid-step accuracy.
    EXPECT_LT(Distance(*est, truth), 1.0);
  }
}

TEST(RadioMap, DenserSurveyImprovesAccuracy) {
  const Polygon room = Polygon::Rectangle(0, 0, 10, 8);
  const RadioMap coarse = SyntheticMap(room, kAps, 2.5);
  const RadioMap fine = SyntheticMap(room, kAps, 0.5);
  common::Rng rng(7);
  double err_coarse = 0.0, err_fine = 0.0;
  for (int trial = 0; trial < 20; ++trial) {
    const Vec2 truth{rng.Uniform(0.5, 9.5), rng.Uniform(0.5, 7.5)};
    std::vector<double> query;
    for (const Vec2 ap : kAps) {
      const double d = std::max(Distance(truth, ap), 0.1);
      query.push_back(1.0 / (d * d));
    }
    err_coarse += Distance(*coarse.Locate(query, 3), truth);
    err_fine += Distance(*fine.Locate(query, 3), truth);
  }
  EXPECT_LT(err_fine, err_coarse);
}

// The NomLoc argument in one test: a radio map surveyed with the AP at its
// home position becomes systematically wrong once that AP moves.
TEST(RadioMap, MapInvalidatedWhenApMoves) {
  const Polygon room = Polygon::Rectangle(0, 0, 10, 8);
  const RadioMap map = SyntheticMap(room, kAps, 0.5);
  std::vector<Vec2> moved_aps = kAps;
  moved_aps[0] = {5.0, 4.0};  // AP 0 wandered off.
  common::Rng rng(9);
  double err_static = 0.0, err_moved = 0.0;
  for (int trial = 0; trial < 20; ++trial) {
    const Vec2 truth{rng.Uniform(0.5, 9.5), rng.Uniform(0.5, 7.5)};
    auto query_for = [&](std::span<const Vec2> aps) {
      std::vector<double> q;
      for (const Vec2 ap : aps) {
        const double d = std::max(Distance(truth, ap), 0.1);
        q.push_back(1.0 / (d * d));
      }
      return q;
    };
    err_static += Distance(*map.Locate(query_for(kAps), 3), truth);
    err_moved += Distance(*map.Locate(query_for(moved_aps), 3), truth);
  }
  EXPECT_GT(err_moved, 2.0 * err_static);
}

// End-to-end through the channel simulator: survey + query with real CSI.
TEST(RadioMap, WorksOnSimulatedCsi) {
  auto env =
      channel::IndoorEnvironment::Create(Polygon::Rectangle(0, 0, 10, 8));
  ASSERT_TRUE(env.ok());
  const channel::CsiSimulator sim(*env, {});
  common::Rng rng(11);
  const std::vector<Vec2> aps{{1, 1}, {9, 1}, {9, 7}, {1, 7}};

  auto fingerprint_at = [&](Vec2 p) {
    std::vector<double> pdp;
    for (const Vec2 ap : aps) {
      const auto frames = sim.MakeLink(p, ap).SampleBatch(25, rng);
      pdp.push_back(dsp::PdpOfBatch(frames, 20e6));
    }
    return pdp;
  };

  std::vector<FingerprintEntry> entries;
  for (const Vec2 p : geometry::GridPointsIn(env->Boundary(), 1.0))
    entries.push_back({p, fingerprint_at(p)});
  auto map = RadioMap::Create(std::move(entries));
  ASSERT_TRUE(map.ok());

  double total_err = 0.0;
  const std::vector<Vec2> truths{{3.2, 2.7}, {7.1, 5.3}, {5.0, 4.0}};
  for (const Vec2 truth : truths) {
    auto est = map->Locate(fingerprint_at(truth), 3);
    ASSERT_TRUE(est.ok());
    total_err += Distance(*est, truth);
  }
  EXPECT_LT(total_err / double(truths.size()), 2.0);
}

}  // namespace
}  // namespace nomloc::localization
