#include "localization/baselines.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace nomloc::localization {
namespace {

using geometry::Vec2;

TEST(RangingModel, InvertsPowerLaw) {
  RangingModel model{.ref_distance_m = 1.0,
                     .ref_power_mw = 100.0,
                     .path_loss_exponent = 2.0};
  EXPECT_NEAR(model.EstimateDistance(100.0), 1.0, 1e-12);
  EXPECT_NEAR(model.EstimateDistance(25.0), 2.0, 1e-12);
  EXPECT_NEAR(model.EstimateDistance(1.0), 10.0, 1e-12);
}

TEST(RangingModel, ExponentChangesSlope) {
  RangingModel g4{.ref_distance_m = 1.0,
                  .ref_power_mw = 16.0,
                  .path_loss_exponent = 4.0};
  EXPECT_NEAR(g4.EstimateDistance(1.0), 2.0, 1e-12);
}

TEST(RangingModel, NonPositivePowerThrows) {
  RangingModel model;
  EXPECT_THROW(model.EstimateDistance(0.0), std::logic_error);
  EXPECT_THROW(model.EstimateDistance(-1.0), std::logic_error);
}

TEST(FitRangingModel, RecoversExactLawFromCleanData) {
  // P(d) = 50 / d^3.
  std::vector<std::pair<double, double>> pairs;
  for (double d : {0.5, 1.0, 2.0, 4.0, 8.0})
    pairs.emplace_back(d, 50.0 / std::pow(d, 3.0));
  auto model = FitRangingModel(pairs);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->path_loss_exponent, 3.0, 1e-9);
  EXPECT_NEAR(model->ref_power_mw, 50.0, 1e-6);
}

TEST(FitRangingModel, RobustToMildNoise) {
  common::Rng rng(3);
  std::vector<std::pair<double, double>> pairs;
  for (double d = 0.5; d < 12.0; d += 0.5) {
    const double p = 30.0 / (d * d) * std::exp(rng.Gaussian(0.0, 0.1));
    pairs.emplace_back(d, p);
  }
  auto model = FitRangingModel(pairs);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->path_loss_exponent, 2.0, 0.2);
}

TEST(FitRangingModel, ValidatesInput) {
  EXPECT_FALSE(FitRangingModel({}).ok());
  std::vector<std::pair<double, double>> one{{1.0, 2.0}};
  EXPECT_FALSE(FitRangingModel(one).ok());
  std::vector<std::pair<double, double>> bad{{1.0, 2.0}, {2.0, -1.0}};
  EXPECT_FALSE(FitRangingModel(bad).ok());
  std::vector<std::pair<double, double>> same_d{{2.0, 1.0}, {2.0, 3.0}};
  EXPECT_FALSE(FitRangingModel(same_d).ok());
}

std::vector<Anchor> AnchorsAt(std::span<const Vec2> positions, Vec2 truth,
                              const RangingModel& model) {
  // Perfect power measurements consistent with the model.
  std::vector<Anchor> anchors;
  for (const Vec2 p : positions) {
    const double d = std::max(Distance(p, truth), 0.05);
    const double power = model.ref_power_mw *
                         std::pow(model.ref_distance_m / d,
                                  model.path_loss_exponent);
    anchors.push_back({p, power, false});
  }
  return anchors;
}

TEST(Trilaterate, ExactRecoveryFromCleanRanges) {
  RangingModel model{.ref_distance_m = 1.0,
                     .ref_power_mw = 10.0,
                     .path_loss_exponent = 2.5};
  const std::vector<Vec2> aps{{0, 0}, {10, 0}, {0, 10}, {10, 10}};
  const Vec2 truth{3.0, 6.0};
  const auto anchors = AnchorsAt(aps, truth, model);
  auto est = Trilaterate(anchors, model, {5.0, 5.0});
  ASSERT_TRUE(est.ok()) << est.status().ToString();
  EXPECT_NEAR(est->x, truth.x, 1e-6);
  EXPECT_NEAR(est->y, truth.y, 1e-6);
}

TEST(Trilaterate, RandomTruthsRecovered) {
  RangingModel model{.ref_distance_m = 1.0,
                     .ref_power_mw = 5.0,
                     .path_loss_exponent = 2.0};
  const std::vector<Vec2> aps{{0, 0}, {12, 0}, {6, 9}};
  common::Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const Vec2 truth{rng.Uniform(1.0, 11.0), rng.Uniform(1.0, 8.0)};
    auto est = Trilaterate(AnchorsAt(aps, truth, model), model, {6.0, 4.0});
    ASSERT_TRUE(est.ok());
    EXPECT_NEAR(est->x, truth.x, 1e-4);
    EXPECT_NEAR(est->y, truth.y, 1e-4);
  }
}

TEST(Trilaterate, TooFewAnchorsRejected) {
  RangingModel model;
  std::vector<Anchor> two{{{0, 0}, 1.0, false}, {{1, 0}, 1.0, false}};
  EXPECT_EQ(Trilaterate(two, model, {0, 0}).status().code(),
            common::StatusCode::kInvalidArgument);
}

TEST(Trilaterate, CollinearAnchorsDegenerate) {
  RangingModel model{.ref_distance_m = 1.0,
                     .ref_power_mw = 5.0,
                     .path_loss_exponent = 2.0};
  const std::vector<Vec2> aps{{0, 0}, {5, 0}, {10, 0}};
  const Vec2 truth{5.0, 0.0};  // On the anchor line.
  const auto anchors = AnchorsAt(aps, truth, model);
  // Starting on the line keeps the Jacobian singular in y.
  const auto est = Trilaterate(anchors, model, {2.0, 0.0});
  EXPECT_FALSE(est.ok());
}

TEST(WeightedCentroid, PullsTowardStrongAnchor) {
  std::vector<Anchor> anchors{{{0.0, 0.0}, 9.0, false},
                              {{10.0, 0.0}, 1.0, false}};
  const Vec2 c = WeightedCentroid(anchors, 1.0);
  EXPECT_NEAR(c.x, 1.0, 1e-12);  // (0*9 + 10*1)/10.
  EXPECT_NEAR(c.y, 0.0, 1e-12);
}

TEST(WeightedCentroid, AlphaSharpensWeighting) {
  std::vector<Anchor> anchors{{{0.0, 0.0}, 9.0, false},
                              {{10.0, 0.0}, 1.0, false}};
  const Vec2 soft = WeightedCentroid(anchors, 0.5);
  const Vec2 sharp = WeightedCentroid(anchors, 2.0);
  EXPECT_LT(sharp.x, soft.x);
}

TEST(WeightedCentroid, EqualWeightsGiveMean) {
  std::vector<Anchor> anchors{{{0.0, 0.0}, 2.0, false},
                              {{4.0, 8.0}, 2.0, false}};
  const Vec2 c = WeightedCentroid(anchors);
  EXPECT_NEAR(c.x, 2.0, 1e-12);
  EXPECT_NEAR(c.y, 4.0, 1e-12);
}

TEST(WeightedCentroid, InvalidInputThrows) {
  EXPECT_THROW(WeightedCentroid({}), std::logic_error);
  std::vector<Anchor> bad{{{0, 0}, 0.0, false}};
  EXPECT_THROW(WeightedCentroid(bad), std::logic_error);
}

TEST(NearestAnchor, PicksStrongest) {
  std::vector<Anchor> anchors{{{0.0, 0.0}, 1.0, false},
                              {{3.0, 3.0}, 5.0, false},
                              {{9.0, 0.0}, 2.0, false}};
  EXPECT_EQ(NearestAnchor(anchors), Vec2(3.0, 3.0));
}

TEST(NearestAnchor, EmptyThrows) {
  EXPECT_THROW(NearestAnchor({}), std::logic_error);
}

}  // namespace
}  // namespace nomloc::localization
