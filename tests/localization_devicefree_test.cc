#include "localization/devicefree.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geometry/polygon.h"

namespace nomloc::localization {
namespace {

using geometry::Polygon;
using geometry::Vec2;

channel::IndoorEnvironment EmptyRoom() {
  auto env =
      channel::IndoorEnvironment::Create(Polygon::Rectangle(0, 0, 12, 8));
  return std::move(env).value();
}

channel::ChannelConfig QuietConfig() {
  channel::ChannelConfig cfg;
  // A truly static room: both the direct path and the wall reflections
  // are temporally stable, so consecutive frames differ only by noise.
  cfg.rician_k_db = 30.0;
  cfg.bounce_rician_k_db = 30.0;
  cfg.noise_floor_dbm = -100.0;
  cfg.propagation.include_scatterers = false;
  return cfg;
}

TEST(MagnitudeCorrelation, IdenticalFramesAreOne) {
  const auto env = EmptyRoom();
  const channel::CsiSimulator sim(env, QuietConfig());
  const auto frame = sim.MakeLink({2, 4}, {10, 4}).MeanResponse();
  auto corr = MagnitudeCorrelation(frame, frame);
  ASSERT_TRUE(corr.ok());
  EXPECT_NEAR(*corr, 1.0, 1e-12);
}

TEST(MagnitudeCorrelation, MismatchedGridsRejected) {
  auto a = dsp::CsiFrame::Create({1, 2, 3},
                                 {{1, 0}, {2, 0}, {3, 0}});
  auto b = dsp::CsiFrame::Create({1, 2},
                                 {{1, 0}, {2, 0}});
  auto c = dsp::CsiFrame::Create({1, 2, 4},
                                 {{1, 0}, {2, 0}, {3, 0}});
  EXPECT_FALSE(MagnitudeCorrelation(*a, *b).ok());
  EXPECT_FALSE(MagnitudeCorrelation(*a, *c).ok());
}

TEST(MagnitudeCorrelation, ConstantVectorRejected) {
  auto flat = dsp::CsiFrame::Create({1, 2, 3},
                                    {{1, 0}, {1, 0}, {1, 0}});
  EXPECT_FALSE(MagnitudeCorrelation(*flat, *flat).ok());
}

TEST(MotionDetector, ValidatesOptions) {
  MotionDetectorOptions bad;
  bad.window = 1;
  EXPECT_THROW(MotionDetector{bad}, std::logic_error);
  bad = MotionDetectorOptions{};
  bad.similarity_threshold = 1.5;
  EXPECT_THROW(MotionDetector{bad}, std::logic_error);
}

TEST(MotionDetector, NoDecisionWhileWindowFills) {
  const auto env = EmptyRoom();
  const channel::CsiSimulator sim(env, QuietConfig());
  const auto link = sim.MakeLink({2, 4}, {10, 4});
  common::Rng rng(1);
  MotionDetectorOptions opts;
  opts.window = 5;
  MotionDetector detector(opts);
  for (int i = 0; i < 4; ++i)
    EXPECT_FALSE(detector.Feed(link.Sample(rng)).has_value());
  EXPECT_TRUE(detector.Feed(link.Sample(rng)).has_value());
}

TEST(MotionDetector, QuietChannelReportsNoMotion) {
  const auto env = EmptyRoom();
  const channel::CsiSimulator sim(env, QuietConfig());
  const auto link = sim.MakeLink({2, 4}, {10, 4});
  common::Rng rng(3);
  MotionDetector detector;
  int decisions = 0, motions = 0;
  for (int i = 0; i < 60; ++i) {
    const auto decision = detector.Feed(link.Sample(rng));
    if (decision) {
      ++decisions;
      motions += decision->motion;
      EXPECT_GT(decision->score, 0.8);
    }
  }
  EXPECT_GT(decisions, 0);
  EXPECT_EQ(motions, 0);
}

TEST(MotionDetector, PersonCrossingTheLinkIsDetected) {
  const auto env = EmptyRoom();
  const channel::CsiSimulator sim(env, QuietConfig());
  const Vec2 tx{2, 4}, rx{10, 4};
  common::Rng rng(5);
  MotionDetector detector;

  // Warm up with the empty room.
  const auto link = sim.MakeLink(tx, rx);
  for (int i = 0; i < 10; ++i) (void)detector.Feed(link.Sample(rng));

  // The person walks across the LOS path, perturbing each packet.
  bool detected = false;
  for (int step = 0; step <= 20; ++step) {
    const Vec2 person{2.0 + 0.4 * step, 2.0 + 0.2 * step};
    const auto frame = SampleWithPerson(sim, tx, rx, person, rng);
    const auto decision = detector.Feed(frame);
    if (decision && decision->motion) detected = true;
  }
  EXPECT_TRUE(detected);
}

TEST(MotionDetector, StationaryPersonDoesNotTrigger) {
  // The true negative for a *motion* detector: a person who is present
  // but perfectly still leaves consecutive frames as stable as an empty
  // room (after the initial transient leaves the window).
  const auto env = EmptyRoom();
  const channel::CsiSimulator sim(env, QuietConfig());
  const Vec2 tx{2, 7}, rx{10, 7};
  common::Rng rng(7);
  MotionDetector detector;
  const Vec2 person{5.0, 3.0};
  // Window fills entirely with stationary-person frames.
  for (int i = 0; i < 10; ++i)
    (void)detector.Feed(SampleWithPerson(sim, tx, rx, person, rng));
  int motions = 0, decisions = 0;
  for (int step = 0; step <= 20; ++step) {
    const auto decision =
        detector.Feed(SampleWithPerson(sim, tx, rx, person, rng));
    if (decision) {
      ++decisions;
      motions += decision->motion;
      EXPECT_GT(decision->score, 0.9);
    }
  }
  EXPECT_GT(decisions, 0);
  EXPECT_EQ(motions, 0);
}

TEST(MotionDetector, ResetClearsState) {
  const auto env = EmptyRoom();
  const channel::CsiSimulator sim(env, QuietConfig());
  const auto link = sim.MakeLink({2, 4}, {10, 4});
  common::Rng rng(9);
  MotionDetector detector;
  for (int i = 0; i < 10; ++i) (void)detector.Feed(link.Sample(rng));
  detector.Reset();
  EXPECT_FALSE(detector.Feed(link.Sample(rng)).has_value());
}

TEST(SampleWithPerson, BlockingPersonDropsDirectPower) {
  const auto env = EmptyRoom();
  channel::ChannelConfig cfg = QuietConfig();
  cfg.rician_k_db = 60.0;
  cfg.noise_floor_dbm = -150.0;
  const channel::CsiSimulator sim(env, cfg);
  const Vec2 tx{2, 4}, rx{10, 4};
  common::Rng rng(11);
  const auto blocked = SampleWithPerson(sim, tx, rx, {6.0, 4.0}, rng);
  const auto clear = SampleWithPerson(sim, tx, rx, {6.0, 1.0}, rng);
  EXPECT_GT(clear.TotalPower(), 2.0 * blocked.TotalPower());
}

}  // namespace
}  // namespace nomloc::localization
