// Cluster router contract (ISSUE 9 tentpole): a multi-shard topology over
// byte-stream transports must answer bit-identically to one unsharded
// StreamingLocalizer — plain, across a live migration, and across a
// kill/checkpoint-restore cycle — with typed admission, per-shard breaker
// route-around, and an exactly-once cluster.* metrics surface.
#include "cluster/cluster.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "eval/scenario.h"
#include "serving/clock.h"
#include "serving/replay.h"
#include "serving/service.h"

namespace nomloc::cluster {
namespace {

struct Harness {
  eval::Scenario scenario;
  serving::ReplayConfig replay;
  serving::ReplayPlan plan;
  core::NomLocEngine engine;
};

common::Result<Harness> MakeHarness(std::size_t objects, std::size_t epochs) {
  NOMLOC_ASSIGN_OR_RETURN(eval::Scenario scenario,
                          eval::ScenarioByName("lab"));
  serving::ReplayConfig replay;
  replay.objects = objects;
  replay.epochs = epochs;
  replay.run.packets_per_batch = 3;
  replay.run.dwell_count = 3;
  NOMLOC_ASSIGN_OR_RETURN(serving::ReplayPlan plan,
                          BuildReplayPlan(scenario, replay));
  core::NomLocConfig engine_cfg;
  engine_cfg.bandwidth_hz = replay.run.channel.bandwidth_hz;
  NOMLOC_ASSIGN_OR_RETURN(
      core::NomLocEngine engine,
      core::NomLocEngine::Create(scenario.env.Boundary(), engine_cfg));
  return Harness{std::move(scenario), replay, std::move(plan),
                 std::move(engine)};
}

ClusterConfig FourShardConfig() {
  ClusterConfig config;
  config.shards = 4;
  config.serving.workers = 2;
  return config;
}

void TuneServing(const Harness& harness, serving::ServingConfig& serving) {
  serving.store.anchor_ttl_s = harness.plan.suggested_anchor_ttl_s;
  serving.store.session_idle_ttl_s =
      10.0 * harness.replay.epoch_interval_s;
  serving.expected_anchors = harness.plan.expected_anchors;
}

/// Replays the plan epoch-by-epoch (flush at each boundary), invoking
/// `at_boundary(epoch_just_finished)` between epochs.
template <typename Sink, typename AtBoundary>
void Replay(const Harness& harness, serving::ManualClock& clock, Sink&& sink,
            AtBoundary&& at_boundary) {
  std::size_t next = 0;
  const auto& stream = harness.plan.packets;
  for (std::size_t e = 0; e < harness.plan.epoch_count; ++e) {
    const double epoch_end_s =
        double(e + 1) * harness.replay.epoch_interval_s;
    while (next < stream.size() &&
           stream[next].timestamp_s < epoch_end_s) {
      clock.Set(stream[next].timestamp_s);
      sink(stream[next]);
      ++next;
    }
    at_boundary(e + 1);
  }
}

using ResponseKey = std::pair<std::uint64_t, std::uint64_t>;

ResponseKey KeyOf(std::uint64_t object_id, double timestamp_s) {
  std::uint64_t bits;
  std::memcpy(&bits, &timestamp_s, sizeof(bits));
  return {object_id, bits};
}

/// Unsharded golden twin of the same replay.
std::map<ResponseKey, serving::ServeResponse> GoldenRun(
    const Harness& harness, serving::ServingConfig serving) {
  serving::ManualClock clock;
  auto service =
      serving::StreamingLocalizer::Create(harness.engine, serving, &clock);
  EXPECT_TRUE(service.ok()) << service.status().ToString();
  Replay(
      harness, clock,
      [&](const serving::IngestPacket& p) { (void)(*service)->Ingest(p); },
      [&](std::size_t) { (*service)->Flush(); });
  (*service)->Shutdown();
  std::map<ResponseKey, serving::ServeResponse> golden;
  for (const serving::ServeResponse& r : (*service)->TakeResponses())
    golden[KeyOf(r.object_id, r.timestamp_s)] = r;
  return golden;
}

void ExpectBitIdentical(
    const std::vector<ClusterResponse>& responses,
    const std::map<ResponseKey, serving::ServeResponse>& golden) {
  ASSERT_EQ(responses.size(), golden.size());
  std::set<ResponseKey> seen;
  auto bits_equal = [](double a, double b) {
    return std::memcmp(&a, &b, sizeof(a)) == 0;
  };
  for (const ClusterResponse& received : responses) {
    const serving::WireResponse& r = received.response;
    const ResponseKey key = KeyOf(r.object_id, r.timestamp_s);
    ASSERT_TRUE(seen.insert(key).second)
        << "duplicate response for object " << r.object_id;
    const auto golden_it = golden.find(key);
    ASSERT_NE(golden_it, golden.end())
        << "no golden twin for object " << r.object_id;
    const serving::ServeResponse& want = golden_it->second;
    EXPECT_EQ(r.status, static_cast<std::uint8_t>(want.status));
    EXPECT_TRUE(bits_equal(r.position.x, want.estimate.position.x));
    EXPECT_TRUE(bits_equal(r.position.y, want.estimate.position.y));
    EXPECT_TRUE(
        bits_equal(r.relaxation_cost, want.estimate.relaxation_cost));
    EXPECT_TRUE(
        bits_equal(r.feasible_area_m2, want.estimate.feasible_area_m2));
    EXPECT_TRUE(bits_equal(r.confidence, want.confidence));
  }
}

TEST(Cluster, FourShardsBitIdenticalToUnsharded) {
  auto harness = MakeHarness(4, 2);
  ASSERT_TRUE(harness.ok()) << harness.status().ToString();
  ClusterConfig config = FourShardConfig();
  TuneServing(*harness, config.serving);

  serving::ManualClock clock;
  auto cluster = Cluster::Create(harness->engine, config, &clock);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  Replay(
      *harness, clock,
      [&](const serving::IngestPacket& p) {
        EXPECT_EQ((*cluster)->Ingest(p), serving::AdmitStatus::kAccepted);
      },
      [&](std::size_t) { (*cluster)->Flush(); });
  const auto responses = (*cluster)->TakeResponses();
  (*cluster)->Shutdown();

  ExpectBitIdentical(responses, GoldenRun(*harness, config.serving));
}

TEST(Cluster, LiveMigrationPreservesBitIdentity) {
  auto harness = MakeHarness(4, 4);
  ASSERT_TRUE(harness.ok()) << harness.status().ToString();
  ClusterConfig config = FourShardConfig();
  TuneServing(*harness, config.serving);

  serving::ManualClock clock;
  auto cluster = Cluster::Create(harness->engine, config, &clock);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  const auto migrations_before = common::MetricRegistry::Global()
                                     .Counter("cluster.migrations")
                                     .Value();
  Replay(
      *harness, clock,
      [&](const serving::IngestPacket& p) {
        EXPECT_EQ((*cluster)->Ingest(p), serving::AdmitStatus::kAccepted);
      },
      [&](std::size_t finished) {
        (*cluster)->Flush();
        if (finished == 2) {
          // Migrate every shard mid-replay — each host is drained,
          // checkpointed (filtered to its placement slot), and replaced.
          for (std::size_t shard = 0; shard < 4; ++shard) {
            auto migrated = (*cluster)->Migrate(shard);
            ASSERT_TRUE(migrated.ok()) << migrated.status().ToString();
          }
        }
      });
  const auto responses = (*cluster)->TakeResponses();
  (*cluster)->Shutdown();

  EXPECT_EQ(common::MetricRegistry::Global()
                .Counter("cluster.migrations")
                .Value(),
            migrations_before + 4);
  ExpectBitIdentical(responses, GoldenRun(*harness, config.serving));
}

TEST(Cluster, KillRestoreCycleRoutesAroundAndStaysBitIdentical) {
  auto harness = MakeHarness(4, 4);
  ASSERT_TRUE(harness.ok()) << harness.status().ToString();
  ClusterConfig config = FourShardConfig();
  TuneServing(*harness, config.serving);
  // A short backoff so the restored shard is re-admitted through the
  // half-open probe within the remaining epochs.
  config.shard_breaker.failure_threshold = 2;
  config.shard_breaker.base_backoff_s = 0.2;
  config.shard_breaker.max_backoff_s = 0.4;

  serving::ManualClock clock;
  auto cluster = Cluster::Create(harness->engine, config, &clock);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  auto& registry = common::MetricRegistry::Global();
  const auto rerouted_before = registry.Counter("cluster.rerouted").Value();
  const auto trips_before = registry.Counter("cluster.shard_trips").Value();

  // Kill the shard that owns object 0, so the kill provably disrupts
  // live traffic (the hash may park all four objects away from slot 0).
  const std::size_t victim = (*cluster)->ShardOf(0);
  Replay(
      *harness, clock,
      [&](const serving::IngestPacket& p) {
        // Route-around keeps every packet deliverable while the victim
        // is down: admission stays kAccepted for the whole stream.
        EXPECT_EQ((*cluster)->Ingest(p), serving::AdmitStatus::kAccepted);
      },
      [&](std::size_t finished) {
        (*cluster)->Flush();
        if (finished == 2) {
          ASSERT_TRUE((*cluster)->Checkpoint(victim).ok());
          (*cluster)->Kill(victim);
          EXPECT_FALSE((*cluster)->ShardLive(victim));
        } else if (finished == 3) {
          ASSERT_TRUE((*cluster)->Restart(victim, /*restore=*/true).ok());
          EXPECT_TRUE((*cluster)->ShardLive(victim));
        }
      });
  const auto responses = (*cluster)->TakeResponses();
  (*cluster)->Shutdown();

  // The victim owns some objects in a 4-object plan with near-certainty;
  // their killed-epoch packets must have rerouted (and tripped the
  // breaker once the failure threshold was crossed).
  EXPECT_GT(registry.Counter("cluster.rerouted").Value(), rerouted_before);
  EXPECT_GT(registry.Counter("cluster.shard_trips").Value(), trips_before);
  ExpectBitIdentical(responses, GoldenRun(*harness, config.serving));
}

TEST(Cluster, BreakerOpenRejectionWhenRouteAroundDisabled) {
  auto harness = MakeHarness(4, 2);
  ASSERT_TRUE(harness.ok()) << harness.status().ToString();
  ClusterConfig config = FourShardConfig();
  TuneServing(*harness, config.serving);
  config.route_around = false;
  config.shard_breaker.failure_threshold = 1;

  serving::ManualClock clock;
  auto cluster = Cluster::Create(harness->engine, config, &clock);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  const std::size_t victim = (*cluster)->ShardOf(0);
  (*cluster)->Kill(victim);

  std::size_t rejected = 0, accepted = 0;
  Replay(
      *harness, clock,
      [&](const serving::IngestPacket& p) {
        const auto admit = (*cluster)->Ingest(p);
        if ((*cluster)->ShardOf(p.object_id) == victim) {
          EXPECT_EQ(admit, serving::AdmitStatus::kRejectedBreakerOpen);
          ++rejected;
        } else {
          EXPECT_EQ(admit, serving::AdmitStatus::kAccepted);
          ++accepted;
        }
      },
      [&](std::size_t) { (*cluster)->Flush(); });
  (*cluster)->Shutdown();
  EXPECT_GT(rejected, 0u);  // The victim owns someone in 4 objects.
  EXPECT_GT(accepted, 0u);
}

TEST(Cluster, LoopbackBackpressureIsTypedQueueFull) {
  auto harness = MakeHarness(2, 1);
  ASSERT_TRUE(harness.ok()) << harness.status().ToString();
  ClusterConfig config;
  config.shards = 1;
  TuneServing(*harness, config.serving);
  // A pipe too small for even one observation frame: every data packet
  // sees typed backpressure (header-only writes still fit).
  config.transport.loopback_capacity_bytes = serving::kWireHeaderBytes + 8;

  serving::ManualClock clock;
  auto cluster = Cluster::Create(harness->engine, config, &clock);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  // Stall the pipe so the host cannot drain it.
  ASSERT_TRUE((*cluster)->SetStalled(0, true));
  const serving::IngestPacket& packet = harness->plan.packets.front();
  clock.Set(packet.timestamp_s);
  EXPECT_EQ((*cluster)->Ingest(packet),
            serving::AdmitStatus::kRejectedQueueFull);
  ASSERT_TRUE((*cluster)->SetStalled(0, false));
  (*cluster)->Shutdown();
}

TEST(Cluster, ShutdownRejectsIngest) {
  auto harness = MakeHarness(2, 1);
  ASSERT_TRUE(harness.ok()) << harness.status().ToString();
  ClusterConfig config;
  config.shards = 2;
  TuneServing(*harness, config.serving);
  serving::ManualClock clock;
  auto cluster = Cluster::Create(harness->engine, config, &clock);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  (*cluster)->Shutdown();
  EXPECT_EQ((*cluster)->Ingest(harness->plan.packets.front()),
            serving::AdmitStatus::kRejectedShutdown);
}

TEST(Cluster, DeadlineRejectionMatchesUnshardedComparison) {
  auto harness = MakeHarness(2, 1);
  ASSERT_TRUE(harness.ok()) << harness.status().ToString();
  ClusterConfig config;
  config.shards = 2;
  TuneServing(*harness, config.serving);
  serving::ManualClock clock;
  auto cluster = Cluster::Create(harness->engine, config, &clock);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  serving::IngestPacket late = harness->plan.packets.front();
  late.deadline_s = late.timestamp_s + 0.5;
  clock.Set(late.deadline_s + 1.0);  // Router time already past it.
  EXPECT_EQ((*cluster)->Ingest(late),
            serving::AdmitStatus::kRejectedDeadline);
  (*cluster)->Shutdown();
}

TEST(Cluster, FilteredCheckpointOnlyHoldsOwnedSessions) {
  auto harness = MakeHarness(4, 2);
  ASSERT_TRUE(harness.ok()) << harness.status().ToString();
  ClusterConfig config = FourShardConfig();
  TuneServing(*harness, config.serving);
  serving::ManualClock clock;
  auto cluster = Cluster::Create(harness->engine, config, &clock);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  Replay(
      *harness, clock,
      [&](const serving::IngestPacket& p) { (void)(*cluster)->Ingest(p); },
      [&](std::size_t) { (*cluster)->Flush(); });
  // Each live store only ever holds sessions its placement slot owns
  // (no route-around happened), so migrating every shard keeps every
  // session: total live sessions is invariant across the flips.
  std::size_t before = 0;
  for (std::size_t shard = 0; shard < 4; ++shard)
    before += (*cluster)->StoreOf(shard)->SessionCount();
  EXPECT_GT(before, 0u);
  for (std::size_t shard = 0; shard < 4; ++shard)
    ASSERT_TRUE((*cluster)->Migrate(shard).ok());
  std::size_t after = 0;
  for (std::size_t shard = 0; shard < 4; ++shard)
    after += (*cluster)->StoreOf(shard)->SessionCount();
  EXPECT_EQ(after, before);
  (*cluster)->Shutdown();
}

TEST(ClusterMetrics, EveryMetricListedExactlyOnce) {
  TouchMetrics();
  const std::string dump = common::MetricRegistry::Global().DumpText();

  std::map<std::string, int> second_tokens;
  std::istringstream lines(dump);
  std::string line;
  while (std::getline(lines, line)) {
    std::istringstream tokens(line);
    std::string kind, name;
    if (tokens >> kind >> name) ++second_tokens[name];
  }

  auto names = AllMetricNames();
  EXPECT_FALSE(names.empty());
  for (std::string_view name : names) {
    EXPECT_EQ(second_tokens[std::string(name)], 1)
        << "metric " << name << " not listed exactly once";
    EXPECT_TRUE(name.starts_with("cluster."))
        << "metric " << name << " escapes the cluster.* namespace";
  }
}

}  // namespace
}  // namespace nomloc::cluster
