#include "dsp/csi.h"

#include <gtest/gtest.h>

#include <set>

namespace nomloc::dsp {
namespace {

CsiFrame MakeFullHt20() {
  auto idx = CsiFrame::Ht20Indices();
  std::vector<Cplx> vals(idx.size());
  for (std::size_t i = 0; i < idx.size(); ++i)
    vals[i] = {double(idx[i]), 1.0};
  auto frame = CsiFrame::Create(idx, vals);
  return std::move(frame).value();
}

TEST(CsiIndices, Ht20Has56WithoutDc) {
  const auto idx = CsiFrame::Ht20Indices();
  EXPECT_EQ(idx.size(), 56u);
  EXPECT_EQ(idx.front(), -28);
  EXPECT_EQ(idx.back(), 28);
  for (int k : idx) EXPECT_NE(k, 0);
  for (std::size_t i = 1; i < idx.size(); ++i) EXPECT_LT(idx[i - 1], idx[i]);
}

TEST(CsiIndices, Intel5300Has30UniqueSortedTones) {
  const auto idx = CsiFrame::Intel5300Indices();
  EXPECT_EQ(idx.size(), 30u);
  std::set<int> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 30u);
  for (std::size_t i = 1; i < idx.size(); ++i) EXPECT_LT(idx[i - 1], idx[i]);
  EXPECT_EQ(idx.front(), -28);
  EXPECT_EQ(idx.back(), 28);
}

TEST(CsiIndices, Intel5300IsSubsetOfHt20) {
  const auto full = CsiFrame::Ht20Indices();
  const std::set<int> full_set(full.begin(), full.end());
  for (int k : CsiFrame::Intel5300Indices())
    EXPECT_TRUE(full_set.count(k)) << "tone " << k;
}

TEST(CsiCreate, RejectsEmptyAndMismatched) {
  EXPECT_FALSE(CsiFrame::Create({}, {}).ok());
  EXPECT_FALSE(CsiFrame::Create({1, 2}, {Cplx(1, 0)}).ok());
}

TEST(CsiCreate, RejectsDcSubcarrier) {
  EXPECT_FALSE(CsiFrame::Create({0}, {Cplx(1, 0)}).ok());
}

TEST(CsiCreate, RejectsOutOfRangeIndex) {
  EXPECT_FALSE(CsiFrame::Create({40}, {Cplx(1, 0)}, 64).ok());
  EXPECT_FALSE(CsiFrame::Create({-33}, {Cplx(1, 0)}, 64).ok());
  EXPECT_TRUE(CsiFrame::Create({31}, {Cplx(1, 0)}, 64).ok());
  EXPECT_TRUE(CsiFrame::Create({-32}, {Cplx(1, 0)}, 64).ok());
  EXPECT_FALSE(CsiFrame::Create({32}, {Cplx(1, 0)}, 64).ok());
}

TEST(CsiCreate, RejectsUnsortedOrDuplicate) {
  EXPECT_FALSE(
      CsiFrame::Create({2, 1}, {Cplx(1, 0), Cplx(1, 0)}).ok());
  EXPECT_FALSE(
      CsiFrame::Create({1, 1}, {Cplx(1, 0), Cplx(1, 0)}).ok());
}

TEST(CsiCreate, RejectsTinyFftSize) {
  EXPECT_FALSE(CsiFrame::Create({1}, {Cplx(1, 0)}, 1).ok());
}

TEST(CsiFrame, AtFindsSubcarrier) {
  const CsiFrame frame = MakeFullHt20();
  EXPECT_EQ(frame.At(-28), Cplx(-28.0, 1.0));
  EXPECT_EQ(frame.At(5), Cplx(5.0, 1.0));
}

TEST(CsiFrame, AtMissingThrows) {
  const CsiFrame frame = MakeFullHt20();
  EXPECT_THROW(frame.At(0), std::logic_error);
  EXPECT_THROW(frame.At(30), std::logic_error);
}

TEST(CsiFrame, TotalPowerSumsSquares) {
  auto frame = CsiFrame::Create({1, 2}, {Cplx(3.0, 4.0), Cplx(0.0, 1.0)});
  ASSERT_TRUE(frame.ok());
  EXPECT_DOUBLE_EQ(frame->TotalPower(), 26.0);
}

TEST(CsiFrame, ToIntel5300KeepsMatchingTones) {
  const CsiFrame frame = MakeFullHt20();
  auto grouped = frame.ToIntel5300();
  ASSERT_TRUE(grouped.ok());
  EXPECT_EQ(grouped->SubcarrierCount(), 30u);
  for (int k : CsiFrame::Intel5300Indices())
    EXPECT_EQ(grouped->At(k), frame.At(k));
}

TEST(CsiFrame, ToIntel5300FailsWhenTonesMissing) {
  auto small = CsiFrame::Create({1, 2}, {Cplx(1, 0), Cplx(1, 0)});
  ASSERT_TRUE(small.ok());
  EXPECT_FALSE(small->ToIntel5300().ok());
}

TEST(CsiFrame, ToFftGridPlacesBinsCorrectly) {
  auto frame = CsiFrame::Create({-28, -1, 1, 28},
                                {Cplx(1, 0), Cplx(2, 0), Cplx(3, 0),
                                 Cplx(4, 0)});
  ASSERT_TRUE(frame.ok());
  const auto grid = frame->ToFftGrid();
  ASSERT_EQ(grid.size(), 64u);
  EXPECT_EQ(grid[64 - 28], Cplx(1, 0));  // k = -28 -> bin 36.
  EXPECT_EQ(grid[63], Cplx(2, 0));       // k = -1  -> bin 63.
  EXPECT_EQ(grid[1], Cplx(3, 0));        // k = +1.
  EXPECT_EQ(grid[28], Cplx(4, 0));       // k = +28.
  EXPECT_EQ(grid[0], Cplx(0, 0));        // DC empty.
  EXPECT_EQ(grid[30], Cplx(0, 0));       // Guard empty.
}

TEST(CsiFrame, ToFftGridRespectsCustomSize) {
  auto frame = CsiFrame::Create({-2, 1}, {Cplx(5, 0), Cplx(6, 0)}, 8);
  ASSERT_TRUE(frame.ok());
  const auto grid = frame->ToFftGrid();
  ASSERT_EQ(grid.size(), 8u);
  EXPECT_EQ(grid[6], Cplx(5, 0));
  EXPECT_EQ(grid[1], Cplx(6, 0));
}

}  // namespace
}  // namespace nomloc::dsp
