#include "serving/service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/assert.h"
#include "common/metrics.h"
#include "core/nomloc.h"
#include "eval/scenario.h"
#include "serving/clock.h"
#include "serving/fault_injection.h"
#include "serving/replay.h"

namespace nomloc::serving {
namespace {

IngestPacket Observation(std::uint64_t object_id, int ap_id,
                         geometry::Vec2 position, double pdp, double t_s) {
  IngestPacket packet;
  packet.kind = PacketKind::kObservation;
  packet.object_id = object_id;
  packet.ap_id = ap_id;
  packet.reported_position = position;
  packet.pdp = pdp;
  packet.timestamp_s = t_s;
  return packet;
}

IngestPacket Query(std::uint64_t object_id, double t_s) {
  IngestPacket packet;
  packet.kind = PacketKind::kQuery;
  packet.object_id = object_id;
  packet.timestamp_s = t_s;
  return packet;
}

class ServiceTest : public ::testing::Test {
 protected:
  ServiceTest() {
    auto engine = core::NomLocEngine::Create(
        geometry::Polygon::Rectangle(0.0, 0.0, 10.0, 10.0));
    NOMLOC_REQUIRE(engine.ok());
    engine_ = std::make_unique<core::NomLocEngine>(std::move(*engine));
  }

  std::unique_ptr<StreamingLocalizer> MakeService(ServingConfig config) {
    auto service = StreamingLocalizer::Create(*engine_, config, &clock_);
    NOMLOC_REQUIRE(service.ok());
    return std::move(*service);
  }

  std::unique_ptr<core::NomLocEngine> engine_;
  ManualClock clock_;
};

TEST_F(ServiceTest, ConfigValidation) {
  ServingConfig config;
  config.workers = 0;
  EXPECT_FALSE(StreamingLocalizer::Create(*engine_, config).ok());
  config = {};
  config.queue_capacity = 0;
  EXPECT_FALSE(StreamingLocalizer::Create(*engine_, config).ok());
  config = {};
  config.faults.ap_dropout_rate = 1.5;
  EXPECT_FALSE(StreamingLocalizer::Create(*engine_, config).ok());
}

TEST_F(ServiceTest, ObservationsThenQueryProduceOneResponse) {
  ServingConfig config;
  config.workers = 2;
  auto service = MakeService(config);

  clock_.Set(0.0);
  EXPECT_EQ(service->Ingest(Observation(1, 0, {1.0, 1.0}, 0.5, 0.0)),
            AdmitStatus::kAccepted);
  EXPECT_EQ(service->Ingest(Observation(1, 1, {9.0, 9.0}, 0.1, 0.0)),
            AdmitStatus::kAccepted);
  EXPECT_EQ(service->Ingest(Query(1, 0.1)), AdmitStatus::kAccepted);
  service->Flush();

  auto responses = service->TakeResponses();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, ServeStatus::kOk);
  EXPECT_EQ(responses[0].object_id, 1u);
  EXPECT_EQ(responses[0].anchor_count, 2u);
  EXPECT_GE(responses[0].confidence, 0.0);
  EXPECT_LE(responses[0].confidence, 1.0);
  EXPECT_GT(responses[0].estimate.feasible_area_m2, 0.0);
}

TEST_F(ServiceTest, QueryWithTooFewAnchorsFailsTyped) {
  auto service = MakeService({});
  clock_.Set(0.0);
  service->Ingest(Observation(1, 0, {1.0, 1.0}, 0.5, 0.0));
  service->Ingest(Query(1, 0.0));
  service->Flush();

  auto responses = service->TakeResponses();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, ServeStatus::kFailed);
  EXPECT_EQ(responses[0].error.code(), common::StatusCode::kFailedPrecondition);
  EXPECT_TRUE(responses[0].degraded);
}

TEST_F(ServiceTest, QueueFullRejectsDeterministically) {
  ServingConfig config;
  config.workers = 1;
  config.queue_capacity = 2;
  config.start_paused = true;  // nothing drains until Start()
  auto service = MakeService(config);

  clock_.Set(0.0);
  EXPECT_EQ(service->Ingest(Observation(1, 0, {1.0, 1.0}, 0.5, 0.0)),
            AdmitStatus::kAccepted);
  EXPECT_EQ(service->Ingest(Observation(1, 1, {9.0, 9.0}, 0.1, 0.0)),
            AdmitStatus::kAccepted);
  EXPECT_EQ(service->Ingest(Query(1, 0.0)),
            AdmitStatus::kRejectedQueueFull);

  service->Start();
  service->Flush();
  EXPECT_EQ(service->Ingest(Query(1, 0.1)), AdmitStatus::kAccepted);
  service->Flush();
  auto responses = service->TakeResponses();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, ServeStatus::kOk);
}

TEST_F(ServiceTest, DeadlineRejectedAtAdmission) {
  auto service = MakeService({});
  clock_.Set(5.0);
  IngestPacket packet = Query(1, 4.0);
  packet.deadline_s = 4.5;  // already past at ingest
  EXPECT_EQ(service->Ingest(packet), AdmitStatus::kRejectedDeadline);
}

TEST_F(ServiceTest, DeadlineExpiringInQueueYieldsRejectionResponse) {
  ServingConfig config;
  config.workers = 1;
  config.start_paused = true;
  auto service = MakeService(config);

  clock_.Set(0.0);
  service->Ingest(Observation(1, 0, {1.0, 1.0}, 0.5, 0.0));
  service->Ingest(Observation(1, 1, {9.0, 9.0}, 0.1, 0.0));
  IngestPacket query = Query(1, 0.0);
  query.deadline_s = 1.0;
  EXPECT_EQ(service->Ingest(query), AdmitStatus::kAccepted);

  clock_.Set(2.0);  // the queued query's deadline passes before it runs
  service->Start();
  service->Flush();

  auto responses = service->TakeResponses();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, ServeStatus::kRejectedDeadline);
}

TEST_F(ServiceTest, ShutdownDrainsThenRejectsIngest) {
  ServingConfig config;
  config.workers = 1;
  config.start_paused = true;
  auto service = MakeService(config);

  clock_.Set(0.0);
  service->Ingest(Observation(1, 0, {1.0, 1.0}, 0.5, 0.0));
  service->Ingest(Observation(1, 1, {9.0, 9.0}, 0.1, 0.0));
  service->Ingest(Query(1, 0.0));
  service->Shutdown();  // drains queued work even though never Start()ed

  EXPECT_EQ(service->Ingest(Query(1, 0.1)), AdmitStatus::kRejectedShutdown);
  auto responses = service->TakeResponses();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, ServeStatus::kOk);
}

TEST_F(ServiceTest, FaultInjectorIsDeterministicAndMemoizesDropout) {
  FaultConfig config;
  config.ap_dropout_rate = 0.5;
  config.packet_loss_rate = 0.0;
  config.seed = 42;
  FaultInjector a(config), b(config);
  for (int ap = 0; ap < 16; ++ap) {
    const bool first = a.OnObservation(ap).drop;
    EXPECT_EQ(first, b.OnObservation(ap).drop);  // same seed, same fate
    EXPECT_EQ(first, a.OnObservation(ap).drop);  // memoized per AP
    EXPECT_EQ(first, a.ApIsDown(ap));
  }
}

// The tentpole equivalence property: with faults off, streaming the
// replay plan produces estimates bit-identical to LocateBatch over the
// plan's golden anchor sets.
TEST_F(ServiceTest, StreamingMatchesLocateBatchBitExactly) {
  auto scenario = eval::ScenarioByName("lab");
  ASSERT_TRUE(scenario.ok());
  ReplayConfig replay;
  replay.objects = 2;
  replay.epochs = 2;
  replay.run.packets_per_batch = 3;
  replay.run.dwell_count = 3;
  auto plan = BuildReplayPlan(*scenario, replay);
  ASSERT_TRUE(plan.ok());

  core::NomLocConfig engine_cfg = replay.run.engine;
  engine_cfg.bandwidth_hz = replay.run.channel.bandwidth_hz;
  auto engine = core::NomLocEngine::Create(scenario->env.Boundary(),
                                           engine_cfg);
  ASSERT_TRUE(engine.ok());

  ServingConfig config;
  config.workers = 2;
  config.store.anchor_ttl_s = plan->suggested_anchor_ttl_s;
  config.expected_anchors = plan->expected_anchors;
  auto service = StreamingLocalizer::Create(*engine, config, &clock_);
  ASSERT_TRUE(service.ok());

  // Replay epoch by epoch; flushing at each boundary pins the logical
  // time every query is served at.
  std::size_t next = 0;
  for (std::size_t e = 0; e < plan->epoch_count; ++e) {
    const double epoch_end_s = double(e + 1) * replay.epoch_interval_s;
    while (next < plan->packets.size() &&
           plan->packets[next].timestamp_s < epoch_end_s) {
      clock_.Set(plan->packets[next].timestamp_s);
      EXPECT_EQ((*service)->Ingest(plan->packets[next]),
                AdmitStatus::kAccepted);
      ++next;
    }
    (*service)->Flush();
  }
  (*service)->Shutdown();

  std::vector<core::LocateRequest> requests(plan->epochs.size());
  for (std::size_t i = 0; i < plan->epochs.size(); ++i)
    requests[i].anchors = plan->epochs[i].anchors;
  auto batch = engine->LocateBatch(requests, 2);
  ASSERT_TRUE(batch.ok());

  auto responses = (*service)->TakeResponses();
  ASSERT_EQ(responses.size(), plan->epochs.size());
  for (const ServeResponse& response : responses) {
    ASSERT_EQ(response.status, ServeStatus::kOk);
    const std::size_t epoch =
        std::size_t(response.timestamp_s / replay.epoch_interval_s);
    const std::size_t row =
        epoch * plan->objects + std::size_t(response.object_id);
    const core::LocationEstimate& want = (*batch)[row].estimate;
    EXPECT_EQ(std::memcmp(&response.estimate.position, &want.position,
                          sizeof(want.position)),
              0);
    EXPECT_EQ(response.estimate.relaxation_cost, want.relaxation_cost);
    EXPECT_EQ(response.estimate.feasible_area_m2, want.feasible_area_m2);
    EXPECT_EQ(response.anchor_count, plan->epochs[row].anchors.size());
  }
}

TEST_F(ServiceTest, CorruptObservationsRejectedAtAdmission) {
  auto service = MakeService({});
  clock_.Set(0.0);
  const double nan = std::numeric_limits<double>::quiet_NaN();

  IngestPacket bad_pos = Observation(1, 0, {nan, 1.0}, 0.5, 0.0);
  EXPECT_EQ(service->Ingest(bad_pos), AdmitStatus::kRejectedCorrupt);
  IngestPacket bad_pdp = Observation(1, 0, {1.0, 1.0}, -0.5, 0.0);
  EXPECT_EQ(service->Ingest(bad_pdp), AdmitStatus::kRejectedCorrupt);
  IngestPacket bad_weight = Observation(1, 0, {1.0, 1.0}, 0.5, 0.0);
  bad_weight.weight = 0.0;
  EXPECT_EQ(service->Ingest(bad_weight), AdmitStatus::kRejectedCorrupt);
  // A rejected observation never reaches the session store.
  EXPECT_EQ(service->Store().SessionCount(), 0u);
}

TEST_F(ServiceTest, BreakerTripsIsolatesApAndRecloses) {
  ServingConfig config;
  config.workers = 1;
  config.breaker.failure_threshold = 2;
  config.breaker.base_backoff_s = 1.0;
  config.breaker.max_backoff_s = 4.0;
  auto service = MakeService(config);

  clock_.Set(0.0);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(service->Ingest(Observation(1, 7, {1.0, nan}, 0.5, 0.0)),
            AdmitStatus::kRejectedCorrupt);
  EXPECT_EQ(service->Ingest(Observation(1, 7, {1.0, nan}, 0.5, 0.0)),
            AdmitStatus::kRejectedCorrupt);
  EXPECT_EQ(service->Breakers().StateOf(7), BreakerState::kOpen);

  // Even a healthy report from the tripped AP is short-circuited, while a
  // sibling AP is untouched.
  clock_.Set(0.5);
  EXPECT_EQ(service->Ingest(Observation(1, 7, {1.0, 1.0}, 0.5, 0.5)),
            AdmitStatus::kRejectedBreakerOpen);
  EXPECT_EQ(service->Ingest(Observation(1, 8, {9.0, 9.0}, 0.5, 0.5)),
            AdmitStatus::kAccepted);

  // Backoff elapsed: the half-open probe is admitted, and its success
  // recloses the breaker for normal traffic.
  clock_.Set(1.0);
  EXPECT_EQ(service->Ingest(Observation(1, 7, {1.0, 1.0}, 0.5, 1.0)),
            AdmitStatus::kAccepted);
  EXPECT_EQ(service->Breakers().StateOf(7), BreakerState::kClosed);
  EXPECT_EQ(service->Ingest(Observation(1, 7, {1.5, 1.0}, 0.5, 1.0)),
            AdmitStatus::kAccepted);
}

TEST_F(ServiceTest, RetryBudgetExhaustedAnswersFromLastKnownGood) {
  ServingConfig config;
  config.workers = 1;
  config.query_retry_budget = 1;
  config.store.anchor_ttl_s = 10.0;
  auto service = MakeService(config);

  clock_.Set(0.0);
  service->Ingest(Observation(1, 0, {1.0, 1.0}, 0.5, 0.0));
  service->Ingest(Observation(1, 1, {9.0, 9.0}, 0.1, 0.0));
  service->Ingest(Query(1, 0.0));
  service->Flush();
  auto first = service->TakeResponses();
  ASSERT_EQ(first.size(), 1u);
  ASSERT_EQ(first[0].status, ServeStatus::kOk);
  ASSERT_EQ(first[0].degradation, common::DegradationLevel::kNone);

  // Fifty seconds on: the original anchors aged out, one fresh report is
  // not enough to solve, and the retry cannot fix that — the last rung of
  // the ladder answers from the remembered estimate.
  clock_.Set(50.0);
  service->Ingest(Observation(1, 0, {2.0, 2.0}, 0.5, 50.0));
  service->Ingest(Query(1, 50.0));
  service->Flush();
  auto second = service->TakeResponses();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].status, ServeStatus::kOk);
  EXPECT_EQ(second[0].degradation, common::DegradationLevel::kLastKnownGood);
  EXPECT_TRUE(second[0].degraded);
  EXPECT_EQ(second[0].retries, 1u);
  EXPECT_EQ(std::memcmp(&second[0].estimate.position,
                        &first[0].estimate.position,
                        sizeof(first[0].estimate.position)),
            0);
  EXPECT_DOUBLE_EQ(
      second[0].confidence,
      common::DegradationConfidenceScale(
          common::DegradationLevel::kLastKnownGood) *
          first[0].confidence);
}

TEST_F(ServiceTest, LkgDisabledSurfacesTypedFailure) {
  ServingConfig config;
  config.workers = 1;
  config.store.anchor_ttl_s = 10.0;
  config.last_known_good_fallback = false;
  auto service = MakeService(config);

  clock_.Set(0.0);
  service->Ingest(Observation(1, 0, {1.0, 1.0}, 0.5, 0.0));
  service->Ingest(Observation(1, 1, {9.0, 9.0}, 0.1, 0.0));
  service->Ingest(Query(1, 0.0));
  service->Flush();
  ASSERT_EQ(service->TakeResponses().size(), 1u);

  clock_.Set(50.0);
  service->Ingest(Observation(1, 0, {2.0, 2.0}, 0.5, 50.0));
  service->Ingest(Query(1, 50.0));
  service->Flush();
  auto responses = service->TakeResponses();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, ServeStatus::kFailed);
  EXPECT_EQ(responses[0].error.code(),
            common::StatusCode::kFailedPrecondition);
}

// Satellite (f): every serving metric is registered under the serving.*
// namespace and a --metrics dump lists each exactly once.
TEST_F(ServiceTest, IncrementalSolverModeMatchesColdMode) {
  // The same packet stream served under both solver modes must produce
  // the same estimates to solver tolerance; the incremental service keeps
  // one warm solver session per object in the store.
  const auto fire = [&](localization::SpSessionMode mode) {
    ServingConfig config;
    config.workers = 1;
    config.solver_mode = mode;
    auto service = MakeService(config);
    clock_.Set(0.0);
    const std::vector<geometry::Vec2> aps{{1, 1}, {9, 1}, {9, 9}, {1, 9}};
    // Drifting PDPs: each epoch updates every anchor, then queries.
    for (int epoch = 0; epoch < 6; ++epoch) {
      const double t = 0.1 * epoch;
      for (int ap = 0; ap < 4; ++ap) {
        const double pdp = 0.2 + 0.1 * ((ap + epoch) % 4);
        EXPECT_EQ(service->Ingest(
                      Observation(1, ap, aps[std::size_t(ap)], pdp, t)),
                  AdmitStatus::kAccepted);
      }
      EXPECT_EQ(service->Ingest(Query(1, t)), AdmitStatus::kAccepted);
    }
    service->Flush();
    auto responses = service->TakeResponses();
    std::sort(responses.begin(), responses.end(),
              [](const ServeResponse& a, const ServeResponse& b) {
                return a.seq < b.seq;
              });
    return responses;
  };

  const auto sessions_before = common::MetricRegistry::Global()
                                   .Counter("serving.solver.sessions")
                                   .Value();
  const auto cold = fire(localization::SpSessionMode::kColdEachSolve);
  const auto warm = fire(localization::SpSessionMode::kIncremental);
  ASSERT_EQ(cold.size(), warm.size());
  ASSERT_EQ(cold.size(), 6u);
  for (std::size_t i = 0; i < cold.size(); ++i) {
    ASSERT_EQ(cold[i].status, ServeStatus::kOk) << "epoch " << i;
    ASSERT_EQ(warm[i].status, ServeStatus::kOk) << "epoch " << i;
    EXPECT_NEAR(warm[i].estimate.position.x, cold[i].estimate.position.x,
                1e-6)
        << "epoch " << i;
    EXPECT_NEAR(warm[i].estimate.position.y, cold[i].estimate.position.y,
                1e-6)
        << "epoch " << i;
    EXPECT_NEAR(warm[i].confidence, cold[i].confidence, 1e-6)
        << "epoch " << i;
    EXPECT_EQ(warm[i].degradation, cold[i].degradation) << "epoch " << i;
  }
  // One object, one warm session — created once, reused across queries.
  EXPECT_EQ(common::MetricRegistry::Global()
                .Counter("serving.solver.sessions")
                .Value(),
            sessions_before + 1);
}

TEST(ServingMetrics, EveryMetricListedExactlyOnce) {
  TouchMetrics();
  const std::string dump = common::MetricRegistry::Global().DumpText();

  std::map<std::string, int> second_tokens;
  std::istringstream lines(dump);
  std::string line;
  while (std::getline(lines, line)) {
    std::istringstream tokens(line);
    std::string kind, name;
    if (tokens >> kind >> name) ++second_tokens[name];
  }

  auto names = AllMetricNames();
  EXPECT_FALSE(names.empty());
  for (std::string_view name : names) {
    EXPECT_EQ(second_tokens[std::string(name)], 1)
        << "metric " << name << " not listed exactly once";
    EXPECT_TRUE(name.starts_with("serving."))
        << "metric " << name << " escapes the serving.* namespace";
  }
}

}  // namespace
}  // namespace nomloc::serving
