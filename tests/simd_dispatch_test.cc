// Runtime dispatch of the SIMD kernel layer: target resolution, env
// overrides, table switching, and the metric export.
#include "simd/dispatch.h"

#include <cstdlib>
#include <string>

#include "common/metrics.h"
#include "gtest/gtest.h"
#include "simd/kernels.h"

namespace nomloc::simd {
namespace {

// Restores the dispatched table and the env overrides after each test so
// the per-test ForceTarget/setenv games don't leak into other suites.
class SimdDispatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_force_ = Getenv("NOMLOC_FORCE_SCALAR");
    saved_target_ = Getenv("NOMLOC_SIMD_TARGET");
  }
  void TearDown() override {
    Restore("NOMLOC_FORCE_SCALAR", saved_force_);
    Restore("NOMLOC_SIMD_TARGET", saved_target_);
    ForceTarget(ResolveTarget());
  }

  static std::pair<bool, std::string> Getenv(const char* name) {
    const char* v = std::getenv(name);
    return {v != nullptr, v != nullptr ? std::string(v) : std::string()};
  }
  static void Restore(const char* name,
                      const std::pair<bool, std::string>& saved) {
    if (saved.first) {
      ::setenv(name, saved.second.c_str(), 1);
    } else {
      ::unsetenv(name);
    }
  }

 private:
  std::pair<bool, std::string> saved_force_;
  std::pair<bool, std::string> saved_target_;
};

TEST_F(SimdDispatchTest, ScalarAlwaysSupported) {
  EXPECT_TRUE(TargetSupported(Target::kScalar));
}

TEST_F(SimdDispatchTest, TargetNamesAreStable) {
  EXPECT_STREQ(TargetName(Target::kScalar), "scalar");
  EXPECT_STREQ(TargetName(Target::kSse2), "sse2");
  EXPECT_STREQ(TargetName(Target::kNeon), "neon");
  EXPECT_STREQ(TargetName(Target::kAvx2), "avx2");
}

TEST_F(SimdDispatchTest, ResolvedTargetIsSupported) {
  EXPECT_TRUE(TargetSupported(ResolveTarget()));
}

TEST_F(SimdDispatchTest, ForceScalarEnvWins) {
  ::setenv("NOMLOC_FORCE_SCALAR", "1", 1);
  EXPECT_EQ(ResolveTarget(), Target::kScalar);
  // Any accepted truthy spelling works.
  ::setenv("NOMLOC_FORCE_SCALAR", "true", 1);
  EXPECT_EQ(ResolveTarget(), Target::kScalar);
  // Non-truthy values do not force.
  ::setenv("NOMLOC_FORCE_SCALAR", "0", 1);
  ::unsetenv("NOMLOC_SIMD_TARGET");
  EXPECT_TRUE(TargetSupported(ResolveTarget()));
}

TEST_F(SimdDispatchTest, NamedTargetEnvSelectsWhenSupported) {
  ::unsetenv("NOMLOC_FORCE_SCALAR");
  ::setenv("NOMLOC_SIMD_TARGET", "scalar", 1);
  EXPECT_EQ(ResolveTarget(), Target::kScalar);
  // Unknown names fail safe to scalar instead of crashing or guessing.
  ::setenv("NOMLOC_SIMD_TARGET", "avx999", 1);
  EXPECT_EQ(ResolveTarget(), Target::kScalar);
}

TEST_F(SimdDispatchTest, ForceTargetSwitchesActiveTable) {
  ForceTarget(Target::kScalar);
  EXPECT_EQ(ActiveTarget(), Target::kScalar);
  EXPECT_EQ(ActiveKernels().target, Target::kScalar);
  const Target best = ResolveTarget();
  ForceTarget(best);
  EXPECT_EQ(ActiveTarget(), best);
}

TEST_F(SimdDispatchTest, WrappersCountKernelCalls) {
  const double a[4] = {1.0, 2.0, 3.0, 4.0};
  const double b[4] = {5.0, 6.0, 7.0, 8.0};
  const std::uint64_t before =
      detail::CallCounter(KernelId::kDot).load(std::memory_order_relaxed);
  (void)Dot(a, b, 4);
  const std::uint64_t after =
      detail::CallCounter(KernelId::kDot).load(std::memory_order_relaxed);
  EXPECT_EQ(after, before + 1);
}

TEST_F(SimdDispatchTest, PublishMetricsExportsCountersOnce) {
  const double a[4] = {1.0, 2.0, 3.0, 4.0};
  const double b[4] = {5.0, 6.0, 7.0, 8.0};
  (void)Dot(a, b, 4);
  PublishMetrics();
  auto& counter = common::MetricRegistry::Global().Counter(
      "simd.kernel.calls", "kernel=dot");
  const std::uint64_t published = counter.Value();
  EXPECT_GE(published, 1u);
  // Publishing again without new calls must not double-count.
  PublishMetrics();
  EXPECT_EQ(counter.Value(), published);
}

TEST_F(SimdDispatchTest, KernelNamesCoverAllIds) {
  for (int i = 0; i < int(KernelId::kCount); ++i) {
    EXPECT_STRNE(KernelName(KernelId(i)), "unknown");
  }
}

}  // namespace
}  // namespace nomloc::simd
