// FlatHashMap: open-addressing semantics, backward-shift deletion, and
// memory accounting, validated against std::unordered_map as the oracle.
#include "common/flat_hash_map.h"

#include <cstdint>

#include "common/slab.h"
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

namespace nomloc::common {
namespace {

std::uint64_t NextRandom(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t x = state;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

TEST(FlatHashMap, InsertFindBasics) {
  FlatHashMap<std::uint64_t, int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(42), nullptr);

  auto [value, created] = map.Insert(42);
  EXPECT_TRUE(created);
  *value = 7;
  EXPECT_EQ(map.size(), 1u);

  auto [again, created_again] = map.Insert(42);
  EXPECT_FALSE(created_again);
  EXPECT_EQ(*again, 7);
  EXPECT_EQ(map.size(), 1u);

  ASSERT_NE(map.Find(42), nullptr);
  EXPECT_EQ(*map.Find(42), 7);
}

TEST(FlatHashMap, EraseRemovesAndReportsAbsence) {
  FlatHashMap<std::uint64_t, int> map;
  *map.Insert(1).first = 10;
  *map.Insert(2).first = 20;
  EXPECT_TRUE(map.Erase(1));
  EXPECT_FALSE(map.Erase(1));
  EXPECT_EQ(map.Find(1), nullptr);
  ASSERT_NE(map.Find(2), nullptr);
  EXPECT_EQ(*map.Find(2), 20);
  EXPECT_EQ(map.size(), 1u);
}

// Adjacent integer keys cluster under weak hashes; interleaved inserts
// and erases exercise the backward-shift path where a probe chain must
// slide over the freed gap without stranding any entry.
TEST(FlatHashMap, RandomizedAgainstUnorderedMap) {
  FlatHashMap<std::uint64_t, std::uint64_t> map;
  std::unordered_map<std::uint64_t, std::uint64_t> oracle;
  std::uint64_t rng = 99;
  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t key = NextRandom(rng) % 512;  // force collisions
    switch (NextRandom(rng) % 3) {
      case 0: {  // insert/overwrite
        const std::uint64_t value = NextRandom(rng);
        *map.Insert(key).first = value;
        oracle[key] = value;
        break;
      }
      case 1: {  // erase
        EXPECT_EQ(map.Erase(key), oracle.erase(key) > 0) << "key " << key;
        break;
      }
      default: {  // lookup
        const auto it = oracle.find(key);
        const std::uint64_t* found = map.Find(key);
        if (it == oracle.end()) {
          EXPECT_EQ(found, nullptr) << "key " << key;
        } else {
          ASSERT_NE(found, nullptr) << "key " << key;
          EXPECT_EQ(*found, it->second);
        }
        break;
      }
    }
    ASSERT_EQ(map.size(), oracle.size());
  }
  // Full sweep: every surviving key readable, none extra.
  std::size_t visited = 0;
  map.ForEach([&](const std::uint64_t& key, std::uint64_t& value) {
    ++visited;
    const auto it = oracle.find(key);
    ASSERT_NE(it, oracle.end());
    EXPECT_EQ(value, it->second);
  });
  EXPECT_EQ(visited, oracle.size());
}

TEST(FlatHashMap, ReserveAvoidsRehashAndKeepsLoadBounded) {
  FlatHashMap<std::uint64_t, int> map;
  map.Reserve(1000);
  const std::size_t capacity = map.capacity();
  EXPECT_GE(capacity * 3, 4u * 1000);  // holds 1000 at <= 0.75 load
  for (std::uint64_t key = 0; key < 1000; ++key) *map.Insert(key).first = 1;
  EXPECT_EQ(map.capacity(), capacity) << "Reserve(1000) should pre-size";
  EXPECT_EQ(map.size(), 1000u);
}

TEST(FlatHashMap, ClearKeepsCapacity) {
  FlatHashMap<std::uint64_t, int> map;
  for (std::uint64_t key = 0; key < 100; ++key) *map.Insert(key).first = 1;
  const std::size_t bytes = map.CapacityBytes();
  EXPECT_GT(bytes, 0u);
  map.Clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.CapacityBytes(), bytes);
  EXPECT_EQ(map.Find(1), nullptr);
}

TEST(FlatHashMap, SlabAllocFreeReuse) {
  Slab<int> slab;
  const std::uint32_t a = slab.Alloc();
  const std::uint32_t b = slab.Alloc();
  EXPECT_NE(a, b);
  EXPECT_EQ(slab.live(), 2u);
  slab[a] = 7;
  slab.Free(a);
  EXPECT_FALSE(slab.IsLive(a));
  EXPECT_EQ(slab.live(), 1u);
  // Freed slot is reused before the backing vector grows, and its
  // payload was reset on Free.
  const std::uint32_t c = slab.Alloc();
  EXPECT_EQ(c, a);
  EXPECT_EQ(slab[c], 0);
  EXPECT_EQ(slab.capacity(), 2u);
}

}  // namespace
}  // namespace nomloc::common
