#include "lp/simplex.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace nomloc::lp {
namespace {

InequalityLp MakeLp(std::size_t m, std::size_t n) {
  InequalityLp lp;
  lp.a = Matrix(m, n);
  lp.b.assign(m, 0.0);
  lp.c.assign(n, 0.0);
  lp.nonneg.assign(n, true);
  return lp;
}

TEST(Simplex, SolvesTextbookMaximization) {
  // max 3x + 5y  s.t.  x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0.
  // Optimum (2, 6) with value 36  =>  minimize -3x - 5y gives -36.
  InequalityLp lp = MakeLp(3, 2);
  lp.a(0, 0) = 1.0;
  lp.a(1, 1) = 2.0;
  lp.a(2, 0) = 3.0;
  lp.a(2, 1) = 2.0;
  lp.b = {4.0, 12.0, 18.0};
  lp.c = {-3.0, -5.0};
  auto sol = SolveSimplex(lp);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_NEAR(sol->x[0], 2.0, 1e-9);
  EXPECT_NEAR(sol->x[1], 6.0, 1e-9);
  EXPECT_NEAR(sol->objective, -36.0, 1e-9);
}

TEST(Simplex, TrivialMinimumAtOrigin) {
  InequalityLp lp = MakeLp(1, 2);
  lp.a(0, 0) = 1.0;
  lp.a(0, 1) = 1.0;
  lp.b = {10.0};
  lp.c = {1.0, 1.0};
  auto sol = SolveSimplex(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->x[0], 0.0, 1e-9);
  EXPECT_NEAR(sol->x[1], 0.0, 1e-9);
}

TEST(Simplex, NegativeRhsNeedsPhase1) {
  // x >= 2 (written -x <= -2), minimize x  =>  x = 2.
  InequalityLp lp = MakeLp(1, 1);
  lp.a(0, 0) = -1.0;
  lp.b = {-2.0};
  lp.c = {1.0};
  auto sol = SolveSimplex(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->x[0], 2.0, 1e-9);
  EXPECT_NEAR(sol->objective, 2.0, 1e-9);
}

TEST(Simplex, DetectsInfeasible) {
  // x <= 1 and x >= 3.
  InequalityLp lp = MakeLp(2, 1);
  lp.a(0, 0) = 1.0;
  lp.a(1, 0) = -1.0;
  lp.b = {1.0, -3.0};
  lp.c = {0.0};
  const auto sol = SolveSimplex(lp);
  ASSERT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), common::StatusCode::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  // minimize -x with only x >= 0 and a vacuous constraint.
  InequalityLp lp = MakeLp(1, 1);
  lp.a(0, 0) = -1.0;
  lp.b = {0.0};
  lp.c = {-1.0};
  const auto sol = SolveSimplex(lp);
  ASSERT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), common::StatusCode::kUnbounded);
}

TEST(Simplex, FreeVariableReachesNegativeValues) {
  // minimize x with x free and x >= -5 (-x <= 5).
  InequalityLp lp = MakeLp(1, 1);
  lp.a(0, 0) = -1.0;
  lp.b = {5.0};
  lp.c = {1.0};
  lp.nonneg = {false};
  auto sol = SolveSimplex(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->x[0], -5.0, 1e-9);
}

TEST(Simplex, MixedFreeAndNonnegVariables) {
  // minimize x + y, x free in [-3, inf) via -x <= 3; y >= 0, x + y >= -1.
  InequalityLp lp = MakeLp(2, 2);
  lp.a(0, 0) = -1.0;
  lp.a(0, 1) = 0.0;
  lp.a(1, 0) = -1.0;
  lp.a(1, 1) = -1.0;
  lp.b = {3.0, 1.0};
  lp.c = {1.0, 1.0};
  lp.nonneg = {false, true};
  auto sol = SolveSimplex(lp);
  ASSERT_TRUE(sol.ok());
  // Optimum: x = -1 - y with y = 0 limited by x >= -3 and x+y >= -1:
  // objective x + y >= -1, attained anywhere on the segment; value -1.
  EXPECT_NEAR(sol->objective, -1.0, 1e-9);
}

TEST(Simplex, EqualityViaTwoInequalities) {
  // x + y = 4 (as <= and >=), minimize 2x + y  =>  x=0, y=4.
  InequalityLp lp = MakeLp(2, 2);
  lp.a(0, 0) = 1.0;
  lp.a(0, 1) = 1.0;
  lp.a(1, 0) = -1.0;
  lp.a(1, 1) = -1.0;
  lp.b = {4.0, -4.0};
  lp.c = {2.0, 1.0};
  auto sol = SolveSimplex(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->x[0], 0.0, 1e-9);
  EXPECT_NEAR(sol->x[1], 4.0, 1e-9);
}

TEST(Simplex, DegenerateVertexTerminates) {
  // Multiple constraints through the same vertex (degeneracy): Bland's
  // rule must still terminate.
  InequalityLp lp = MakeLp(3, 2);
  lp.a(0, 0) = 1.0;
  lp.a(0, 1) = 1.0;
  lp.a(1, 0) = 1.0;
  lp.a(2, 1) = 1.0;
  lp.b = {1.0, 1.0, 1.0};
  lp.c = {-1.0, -1.0};
  auto sol = SolveSimplex(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective, -1.0, 1e-9);
}

TEST(Simplex, ValidatesShapes) {
  InequalityLp lp = MakeLp(2, 2);
  lp.b.resize(1);
  EXPECT_EQ(SolveSimplex(lp).status().code(),
            common::StatusCode::kInvalidArgument);

  lp = MakeLp(2, 2);
  lp.c.resize(3);
  EXPECT_EQ(SolveSimplex(lp).status().code(),
            common::StatusCode::kInvalidArgument);

  lp = MakeLp(2, 2);
  lp.nonneg.resize(1);
  EXPECT_EQ(SolveSimplex(lp).status().code(),
            common::StatusCode::kInvalidArgument);
}

TEST(Simplex, RejectsNonFiniteEntries) {
  InequalityLp lp = MakeLp(1, 1);
  lp.b[0] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(SolveSimplex(lp).status().code(),
            common::StatusCode::kInvalidArgument);
}

TEST(Simplex, RedundantConstraintsHandled) {
  // The same constraint repeated should not confuse phase 1/2.
  InequalityLp lp = MakeLp(3, 1);
  for (std::size_t r = 0; r < 3; ++r) lp.a(r, 0) = -1.0;
  lp.b = {-2.0, -2.0, -2.0};
  lp.c = {1.0};
  auto sol = SolveSimplex(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->x[0], 2.0, 1e-9);
}

// The relaxation program shape used by the SP solver: z free, t >= 0,
// A z - t <= b, minimize w^T t.  With consistent constraints the optimum
// cost must be 0; with contradictory ones the cheapest constraint breaks.
TEST(Simplex, RelaxationProgramConsistentCaseCostsZero) {
  // Constraints: x <= 3 and -x <= -1 (x >= 1), relaxed.
  // Vars: [x, t0, t1].
  InequalityLp lp = MakeLp(2, 3);
  lp.a(0, 0) = 1.0;
  lp.a(0, 1) = -1.0;
  lp.a(1, 0) = -1.0;
  lp.a(1, 2) = -1.0;
  lp.b = {3.0, -1.0};
  lp.c = {0.0, 1.0, 2.0};
  lp.nonneg = {false, true, true};
  auto sol = SolveSimplex(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective, 0.0, 1e-9);
  EXPECT_GE(sol->x[0], 1.0 - 1e-9);
  EXPECT_LE(sol->x[0], 3.0 + 1e-9);
}

TEST(Simplex, RelaxationProgramBreaksCheapestConstraint) {
  // Contradiction: x <= 1 (weight 5) and x >= 3 (weight 1).
  // Optimal: satisfy the expensive one, pay 2 * 1 for the cheap one.
  InequalityLp lp = MakeLp(2, 3);
  lp.a(0, 0) = 1.0;
  lp.a(0, 1) = -1.0;
  lp.a(1, 0) = -1.0;
  lp.a(1, 2) = -1.0;
  lp.b = {1.0, -3.0};
  lp.c = {0.0, 5.0, 1.0};
  lp.nonneg = {false, true, true};
  auto sol = SolveSimplex(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective, 2.0, 1e-9);
  EXPECT_NEAR(sol->x[0], 1.0, 1e-9);   // Sits at the heavy constraint.
  EXPECT_NEAR(sol->x[1], 0.0, 1e-9);   // Heavy constraint kept.
  EXPECT_NEAR(sol->x[2], 2.0, 1e-9);   // Cheap constraint pays t = 2.
}

TEST(Simplex, DuplicateColumnsHandled) {
  // Two identical variables: any split of the optimum between them is
  // valid; the objective must still be right.
  InequalityLp lp = MakeLp(1, 2);
  lp.a(0, 0) = 1.0;
  lp.a(0, 1) = 1.0;
  lp.b = {4.0};
  lp.c = {-1.0, -1.0};
  auto sol = SolveSimplex(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective, -4.0, 1e-9);
  EXPECT_NEAR(sol->x[0] + sol->x[1], 4.0, 1e-9);
}

TEST(Simplex, ZeroRowFeasible) {
  // 0·x <= 1 is vacuous; 0·x <= -1 is a contradiction.
  InequalityLp lp = MakeLp(2, 1);
  lp.a(1, 0) = 1.0;
  lp.b = {1.0, 2.0};
  lp.c = {-1.0};
  auto sol = SolveSimplex(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->x[0], 2.0, 1e-9);

  lp.b = {-1.0, 2.0};
  const auto infeasible = SolveSimplex(lp);
  ASSERT_FALSE(infeasible.ok());
  EXPECT_EQ(infeasible.status().code(), common::StatusCode::kInfeasible);
}

TEST(Simplex, WidelyScaledCoefficients) {
  // Mixed 1e-6 / 1e+6 magnitudes: the solver must stay accurate.
  InequalityLp lp = MakeLp(2, 2);
  lp.a(0, 0) = 1e6;
  lp.a(1, 1) = 1e-6;
  lp.b = {2e6, 3e-6};
  lp.c = {-1.0, -1.0};
  auto sol = SolveSimplex(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->x[0], 2.0, 1e-6);
  EXPECT_NEAR(sol->x[1], 3.0, 1e-6);
}

TEST(Simplex, ManyConstraintsSingleVariable) {
  // 100 upper bounds: the binding one wins.
  InequalityLp lp = MakeLp(100, 1);
  for (std::size_t r = 0; r < 100; ++r) {
    lp.a(r, 0) = 1.0;
    lp.b[r] = 5.0 + double(r);
  }
  lp.b[37] = 2.5;  // The tightest.
  lp.c = {-1.0};
  auto sol = SolveSimplex(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->x[0], 2.5, 1e-9);
}

// Property: for random feasible bounded LPs, the simplex solution is
// feasible and no better than any random feasible point (optimality
// certificate by sampling).
TEST(SimplexProperty, FeasibleAndNotBeatenBySampling) {
  common::Rng rng(47);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 2;
    const std::size_t m = 3 + rng.UniformInt(4);
    InequalityLp lp = MakeLp(m + 2 * n, n);
    lp.nonneg.assign(n, false);
    // Random constraints around a box plus explicit box bounds to keep the
    // problem bounded and feasible (origin always satisfies b >= 0 rows).
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t c = 0; c < n; ++c) lp.a(r, c) = rng.Uniform(-1, 1);
      lp.b[r] = rng.Uniform(0.5, 3.0);  // Origin strictly feasible.
    }
    for (std::size_t i = 0; i < n; ++i) {
      lp.a(m + 2 * i, i) = 1.0;       // x_i <= 5.
      lp.b[m + 2 * i] = 5.0;
      lp.a(m + 2 * i + 1, i) = -1.0;  // x_i >= -5.
      lp.b[m + 2 * i + 1] = 5.0;
    }
    for (std::size_t c = 0; c < n; ++c) lp.c[c] = rng.Uniform(-1, 1);

    auto sol = SolveSimplex(lp);
    ASSERT_TRUE(sol.ok()) << sol.status().ToString();
    // Feasibility.
    const Vector ax = lp.a.MatVec(sol->x);
    for (std::size_t r = 0; r < lp.b.size(); ++r)
      EXPECT_LE(ax[r], lp.b[r] + 1e-7);
    // Sampled points never beat the reported optimum.
    for (int s = 0; s < 200; ++s) {
      Vector p(n);
      for (auto& v : p) v = rng.Uniform(-5, 5);
      const Vector ap = lp.a.MatVec(p);
      bool feasible = true;
      for (std::size_t r = 0; r < lp.b.size(); ++r)
        if (ap[r] > lp.b[r]) feasible = false;
      if (feasible) {
        EXPECT_GE(Dot(lp.c, p), sol->objective - 1e-7);
      }
    }
  }
}

}  // namespace
}  // namespace nomloc::lp
