#include "core/nomloc.h"

#include <gtest/gtest.h>

#include "channel/csi_model.h"
#include "common/rng.h"

namespace nomloc::core {
namespace {

using geometry::Polygon;
using geometry::Vec2;

channel::IndoorEnvironment EmptyRoom() {
  auto env =
      channel::IndoorEnvironment::Create(Polygon::Rectangle(0, 0, 12, 8));
  return std::move(env).value();
}

NomLocEngine MakeEngine(const Polygon& area) {
  auto engine = NomLocEngine::Create(area);
  return std::move(engine).value();
}

// End-to-end observations through the channel simulator.
std::vector<ApObservation> Observe(const channel::IndoorEnvironment& env,
                                   Vec2 object, std::span<const Vec2> aps,
                                   std::size_t packets, common::Rng& rng) {
  const channel::CsiSimulator sim(env, {});
  std::vector<ApObservation> obs;
  for (const Vec2 ap : aps) {
    ApObservation o;
    o.reported_position = ap;
    o.frames = sim.MakeLink(object, ap).SampleBatch(packets, rng);
    obs.push_back(std::move(o));
  }
  return obs;
}

TEST(EngineCreate, ValidatesConfig) {
  NomLocConfig bad;
  bad.bandwidth_hz = 0.0;
  EXPECT_FALSE(
      NomLocEngine::Create(Polygon::Rectangle(0, 0, 1, 1), bad).ok());
}

TEST(EngineCreate, DecomposesNonConvexArea) {
  auto l = Polygon::Create(
      {{0.0, 0.0}, {4.0, 0.0}, {4.0, 2.0}, {2.0, 2.0}, {2.0, 4.0}, {0.0, 4.0}});
  ASSERT_TRUE(l.ok());
  auto engine = NomLocEngine::Create(*l);
  ASSERT_TRUE(engine.ok());
  EXPECT_GE(engine->Parts().size(), 2u);
  for (const Polygon& part : engine->Parts()) EXPECT_TRUE(part.IsConvex());
}

TEST(EngineCreate, ConvexAreaIsOnePart) {
  const NomLocEngine engine = MakeEngine(Polygon::Rectangle(0, 0, 12, 8));
  EXPECT_EQ(engine.Parts().size(), 1u);
}

TEST(Locate, RequiresTwoObservationsWithFrames) {
  const NomLocEngine engine = MakeEngine(Polygon::Rectangle(0, 0, 12, 8));
  EXPECT_EQ(engine.Locate(std::vector<ApObservation>{}).status().code(),
            common::StatusCode::kInvalidArgument);

  std::vector<ApObservation> no_frames(2);
  no_frames[0].reported_position = {1, 1};
  no_frames[1].reported_position = {2, 2};
  EXPECT_EQ(engine.Locate(no_frames).status().code(),
            common::StatusCode::kInvalidArgument);
}

TEST(Locate, EstimateIsInsideArea) {
  const channel::IndoorEnvironment env = EmptyRoom();
  const NomLocEngine engine = MakeEngine(env.Boundary());
  common::Rng rng(3);
  const std::vector<Vec2> aps{{1, 1}, {11, 1}, {11, 7}, {1, 7}};
  const auto obs = Observe(env, {4.0, 3.0}, aps, 30, rng);
  auto est = engine.Locate(obs);
  ASSERT_TRUE(est.ok()) << est.status().ToString();
  EXPECT_TRUE(engine.Area().Contains(est->position, 1e-5));
  EXPECT_EQ(est->anchors.size(), 4u);
}

TEST(Locate, ReasonableAccuracyInOpenRoom) {
  const channel::IndoorEnvironment env = EmptyRoom();
  const NomLocEngine engine = MakeEngine(env.Boundary());
  common::Rng rng(5);
  const std::vector<Vec2> aps{{1, 1}, {11, 1}, {11, 7}, {1, 7},
                              {6, 4}, {3, 6},  {9, 2}};
  const Vec2 truth{4.0, 3.0};
  const auto obs = Observe(env, truth, aps, 40, rng);
  auto est = engine.Locate(obs);
  ASSERT_TRUE(est.ok());
  // 7 anchors partition a 12x8 room finely; error must be small.
  EXPECT_LT(Distance(est->position, truth), 2.5);
}

TEST(Locate, MoreAnchorsImproveAccuracyOnAverage) {
  const channel::IndoorEnvironment env = EmptyRoom();
  const NomLocEngine engine = MakeEngine(env.Boundary());
  const std::vector<Vec2> few{{1, 1}, {11, 1}, {11, 7}, {1, 7}};
  std::vector<Vec2> many = few;
  many.insert(many.end(), {{4, 4}, {8, 4}, {6, 6.5}});

  double err_few = 0.0, err_many = 0.0;
  const std::vector<Vec2> truths{{4, 3}, {9, 5}, {2, 6}, {6, 2}, {10, 3}};
  common::Rng rng(7);
  for (const Vec2 truth : truths) {
    auto est_few = engine.Locate(Observe(env, truth, few, 30, rng));
    auto est_many = engine.Locate(Observe(env, truth, many, 30, rng));
    ASSERT_TRUE(est_few.ok());
    ASSERT_TRUE(est_many.ok());
    err_few += Distance(est_few->position, truth);
    err_many += Distance(est_many->position, truth);
  }
  EXPECT_LT(err_many, err_few);
}

TEST(LocateFromAnchors, CoincidentAnchorsFail) {
  const NomLocEngine engine = MakeEngine(Polygon::Rectangle(0, 0, 10, 8));
  std::vector<localization::Anchor> anchors{{{3.0, 3.0}, 2.0, false},
                                            {{3.0, 3.0}, 1.0, false}};
  EXPECT_EQ(engine.LocateFromAnchors(anchors).status().code(),
            common::StatusCode::kFailedPrecondition);
}

TEST(LocateFromAnchors, DiagnosticsPopulated) {
  const NomLocEngine engine = MakeEngine(Polygon::Rectangle(0, 0, 10, 8));
  std::vector<localization::Anchor> anchors{{{1.0, 1.0}, 4.0, false},
                                            {{9.0, 1.0}, 2.0, false},
                                            {{5.0, 7.0}, 1.0, false}};
  auto est = engine.LocateFromAnchors(anchors);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->anchors.size(), 3u);
  EXPECT_GE(est->relaxation_cost, 0.0);
  EXPECT_EQ(est->part_index, 0u);
}

TEST(LocateFromAnchors, NonConvexAreaEstimateInsideArea) {
  auto l = Polygon::Create({{0.0, 0.0},
                            {20.0, 0.0},
                            {20.0, 6.0},
                            {8.0, 6.0},
                            {8.0, 14.0},
                            {0.0, 14.0}});
  ASSERT_TRUE(l.ok());
  auto engine = NomLocEngine::Create(*l);
  ASSERT_TRUE(engine.ok());
  // Strongest anchor deep in the vertical arm.
  std::vector<localization::Anchor> anchors{{{2.0, 12.0}, 8.0, false},
                                            {{2.0, 2.0}, 2.0, false},
                                            {{18.0, 2.0}, 1.0, false}};
  auto est = engine->LocateFromAnchors(anchors);
  ASSERT_TRUE(est.ok());
  EXPECT_TRUE(l->Contains(est->position, 1e-5));
  // Should land in the vertical arm, near the strong anchor's cell.
  EXPECT_LT(est->position.y, 15.0);
  EXPECT_GT(est->position.y, 4.0);
}

TEST(EngineCreate, ValidatesSolverOptions) {
  NomLocConfig bad;
  bad.solver.boundary_weight = -1.0;
  EXPECT_EQ(NomLocEngine::Create(Polygon::Rectangle(0, 0, 1, 1), bad)
                .status()
                .code(),
            common::StatusCode::kInvalidArgument);
}

TEST(LocateRequest, RejectsObservationsAndAnchorsTogether) {
  const channel::IndoorEnvironment env = EmptyRoom();
  const NomLocEngine engine = MakeEngine(env.Boundary());
  common::Rng rng(3);
  const std::vector<Vec2> aps{{1, 1}, {11, 1}};
  const auto obs = Observe(env, {4.0, 3.0}, aps, 5, rng);
  std::vector<localization::Anchor> anchors{{{1.0, 1.0}, 4.0, false},
                                            {{9.0, 1.0}, 2.0, false}};
  LocateRequest request;
  request.observations = obs;
  request.anchors = anchors;
  EXPECT_EQ(engine.Locate(request).status().code(),
            common::StatusCode::kInvalidArgument);
}

TEST(LocateRequest, ResponseCarriesDiagnosticsAndTimings) {
  const channel::IndoorEnvironment env = EmptyRoom();
  const NomLocEngine engine = MakeEngine(env.Boundary());
  common::Rng rng(3);
  const std::vector<Vec2> aps{{1, 1}, {11, 1}, {11, 7}, {1, 7}};
  const auto obs = Observe(env, {4.0, 3.0}, aps, 10, rng);
  LocateRequest request;
  request.observations = obs;
  auto response = engine.Locate(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->anchor_count, 4u);
  EXPECT_EQ(response->judgement_count, 6u);  // C(4,2), all static pairs.
  EXPECT_EQ(response->constraint_count, 6u);
  EXPECT_GT(response->lp_iterations, 0u);
  EXPECT_GT(response->timings.extract_s, 0.0);
  EXPECT_GT(response->timings.solve_s, 0.0);
  EXPECT_GE(response->timings.total_s,
            response->timings.extract_s + response->timings.solve_s);
  EXPECT_TRUE(engine.Area().Contains(response->estimate.position, 1e-5));
}

TEST(LocateRequest, PerCallPolicyOverrideChangesJudgementSet) {
  const NomLocEngine engine = MakeEngine(Polygon::Rectangle(0, 0, 12, 8));
  // Two nomadic sites: kPaper skips the nomadic–nomadic pair.
  std::vector<localization::Anchor> anchors{{{1.0, 1.0}, 4.0, true},
                                            {{9.0, 1.0}, 2.0, true},
                                            {{5.0, 7.0}, 1.0, false}};
  LocateRequest request;
  request.anchors = anchors;
  auto paper = engine.Locate(request);
  request.pair_policy = localization::PairPolicy::kAllPairs;
  auto all_pairs = engine.Locate(request);
  ASSERT_TRUE(paper.ok());
  ASSERT_TRUE(all_pairs.ok());
  EXPECT_EQ(paper->judgement_count, 2u);
  EXPECT_EQ(all_pairs->judgement_count, 3u);
}

TEST(LocateRequest, WrappersMatchUnifiedEntryPoint) {
  const channel::IndoorEnvironment env = EmptyRoom();
  const NomLocEngine engine = MakeEngine(env.Boundary());
  common::Rng rng(9);
  const std::vector<Vec2> aps{{1, 1}, {11, 1}, {11, 7}, {1, 7}};
  const auto obs = Observe(env, {7.0, 5.0}, aps, 10, rng);
  LocateRequest request;
  request.observations = obs;
  auto unified = engine.Locate(request);
  auto wrapped = engine.Locate(obs);
  ASSERT_TRUE(unified.ok());
  ASSERT_TRUE(wrapped.ok());
  EXPECT_EQ(unified->estimate.position, wrapped->position);
  EXPECT_EQ(unified->estimate.relaxation_cost, wrapped->relaxation_cost);
}

TEST(LocateBatch, BitIdenticalToSerialLoopForAnyThreadCount) {
  const channel::IndoorEnvironment env = EmptyRoom();
  const NomLocEngine engine = MakeEngine(env.Boundary());
  common::Rng rng(17);
  const std::vector<Vec2> aps{{1, 1}, {11, 1}, {11, 7}, {1, 7}, {6, 4}};
  const std::vector<Vec2> truths{{4, 3}, {9, 5}, {2, 6}, {6, 2},
                                 {10, 3}, {3, 2}, {8, 6}, {5, 5}};
  std::vector<std::vector<ApObservation>> observation_sets;
  for (const Vec2 truth : truths)
    observation_sets.push_back(Observe(env, truth, aps, 15, rng));
  std::vector<LocateRequest> requests(observation_sets.size());
  for (std::size_t i = 0; i < observation_sets.size(); ++i)
    requests[i].observations = observation_sets[i];

  // Reference: plain serial Locate loop.
  std::vector<Vec2> serial;
  for (const LocateRequest& request : requests) {
    auto response = engine.Locate(request);
    ASSERT_TRUE(response.ok());
    serial.push_back(response->estimate.position);
  }

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    auto batch = engine.LocateBatch(requests, threads);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    ASSERT_EQ(batch->size(), requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
      EXPECT_EQ((*batch)[i].estimate.position, serial[i])
          << "request " << i << " with " << threads << " threads";
      EXPECT_EQ((*batch)[i].estimate.relaxation_cost,
                engine.Locate(requests[i])->estimate.relaxation_cost);
    }
  }
}

TEST(LocateBatch, LowestIndexErrorWins) {
  const NomLocEngine engine = MakeEngine(Polygon::Rectangle(0, 0, 10, 8));
  std::vector<localization::Anchor> good{{{1.0, 1.0}, 4.0, false},
                                         {{9.0, 1.0}, 2.0, false}};
  // Coincident anchors -> kFailedPrecondition; too few -> kInvalidArgument.
  std::vector<localization::Anchor> coincident{{{3.0, 3.0}, 2.0, false},
                                               {{3.0, 3.0}, 1.0, false}};
  std::vector<localization::Anchor> short_set{{{1.0, 1.0}, 4.0, false}};
  std::vector<LocateRequest> requests(3);
  requests[0].anchors = good;
  requests[1].anchors = coincident;
  requests[2].anchors = short_set;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    auto batch = engine.LocateBatch(requests, threads);
    EXPECT_EQ(batch.status().code(), common::StatusCode::kFailedPrecondition)
        << "with " << threads << " threads";
  }
}

TEST(LocateBatch, EmptyBatchIsEmptySuccess) {
  const NomLocEngine engine = MakeEngine(Polygon::Rectangle(0, 0, 10, 8));
  auto batch = engine.LocateBatch({}, 4);
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch->empty());
}

// Deterministic anchors without the channel simulator: PDP falls off
// with distance from the truth point.
std::vector<localization::Anchor> AnchorsAt(Vec2 truth,
                                            std::span<const Vec2> aps) {
  std::vector<localization::Anchor> out;
  for (const Vec2 ap : aps)
    out.push_back({ap, 1.0 / (1.0 + geometry::DistanceSq(truth, ap)), false});
  return out;
}

TEST(LocateSession, ColdSessionIsBitIdenticalToStateless) {
  const NomLocEngine engine = MakeEngine(Polygon::Rectangle(0, 0, 12, 8));
  const std::vector<Vec2> aps{{1, 1}, {11, 1}, {11, 7}, {1, 7}};
  for (const Vec2 truth : {Vec2{3.0, 2.0}, Vec2{8.5, 6.0}}) {
    const auto anchors = AnchorsAt(truth, aps);
    LocateRequest request;
    request.anchors = anchors;
    auto session = engine.MakeSolverSession();  // default: kColdEachSolve
    auto via_session = engine.Locate(request, &session);
    auto stateless = engine.Locate(request);
    ASSERT_TRUE(via_session.ok()) << via_session.status().ToString();
    ASSERT_TRUE(stateless.ok());
    EXPECT_EQ(via_session->estimate.position, stateless->estimate.position);
    EXPECT_EQ(via_session->estimate.relaxation_cost,
              stateless->estimate.relaxation_cost);
    EXPECT_EQ(via_session->lp_iterations, stateless->lp_iterations);
  }
}

TEST(LocateSession, IncrementalSessionTracksMovingObject) {
  const NomLocEngine engine = MakeEngine(Polygon::Rectangle(0, 0, 12, 8));
  const std::vector<Vec2> aps{{1, 1}, {11, 1}, {11, 7}, {1, 7}, {6, 4}};
  auto session =
      engine.MakeSolverSession(localization::SpSessionMode::kIncremental);
  // One warm session follows the object; every fix must agree with the
  // stateless answer to solver tolerance.
  for (double s = 0.0; s <= 1.0; s += 0.125) {
    const Vec2 truth{2.0 + 8.0 * s, 2.0 + 4.0 * s};
    const auto anchors = AnchorsAt(truth, aps);
    LocateRequest request;
    request.anchors = anchors;
    auto warm = engine.Locate(request, &session);
    auto cold = engine.Locate(request);
    ASSERT_TRUE(warm.ok()) << warm.status().ToString();
    ASSERT_TRUE(cold.ok());
    EXPECT_NEAR(warm->estimate.position.x, cold->estimate.position.x, 1e-6);
    EXPECT_NEAR(warm->estimate.position.y, cold->estimate.position.y, 1e-6);
    EXPECT_NEAR(warm->estimate.relaxation_cost,
                cold->estimate.relaxation_cost, 1e-6);
    EXPECT_EQ(warm->degradation, cold->degradation);
  }
}

TEST(LocateSession, RejectsPerRequestOverrides) {
  const NomLocEngine engine = MakeEngine(Polygon::Rectangle(0, 0, 12, 8));
  const std::vector<Vec2> aps{{1, 1}, {11, 1}, {11, 7}};
  const auto anchors = AnchorsAt({4.0, 3.0}, aps);
  LocateRequest request;
  request.anchors = anchors;
  request.solver = localization::SpSolverOptions{};
  auto session = engine.MakeSolverSession();
  EXPECT_EQ(engine.Locate(request, &session).status().code(),
            common::StatusCode::kInvalidArgument);
  // Without a session the override is honoured as before.
  EXPECT_TRUE(engine.Locate(request).ok());
}

TEST(LocateSession, NullSessionIsPlainLocate) {
  const NomLocEngine engine = MakeEngine(Polygon::Rectangle(0, 0, 12, 8));
  const std::vector<Vec2> aps{{1, 1}, {11, 1}, {11, 7}};
  const auto anchors = AnchorsAt({4.0, 3.0}, aps);
  LocateRequest request;
  request.anchors = anchors;
  auto with_null = engine.Locate(request, nullptr);
  auto plain = engine.Locate(request);
  ASSERT_TRUE(with_null.ok());
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(with_null->estimate.position, plain->estimate.position);
}

TEST(Locate, DeterministicGivenSameObservations) {
  const channel::IndoorEnvironment env = EmptyRoom();
  const NomLocEngine engine = MakeEngine(env.Boundary());
  common::Rng rng(11);
  const std::vector<Vec2> aps{{1, 1}, {11, 1}, {11, 7}, {1, 7}};
  const auto obs = Observe(env, {5.0, 5.0}, aps, 20, rng);
  auto a = engine.Locate(obs);
  auto b = engine.Locate(obs);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->position, b->position);
}

}  // namespace
}  // namespace nomloc::core
