#include "localization/sequence.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace nomloc::localization {
namespace {

using geometry::Polygon;
using geometry::Vec2;

TEST(FractionalRanks, SimpleOrdering) {
  const double v[] = {30.0, 10.0, 20.0};
  const auto r = FractionalRanks(v);
  EXPECT_DOUBLE_EQ(r[0], 3.0);
  EXPECT_DOUBLE_EQ(r[1], 1.0);
  EXPECT_DOUBLE_EQ(r[2], 2.0);
}

TEST(FractionalRanks, TiesShareAverageRank) {
  const double v[] = {5.0, 5.0, 1.0, 9.0};
  const auto r = FractionalRanks(v);
  EXPECT_DOUBLE_EQ(r[0], 2.5);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 1.0);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(FractionalRanks, AllEqual) {
  const double v[] = {2.0, 2.0, 2.0};
  const auto r = FractionalRanks(v);
  for (double x : r) EXPECT_DOUBLE_EQ(x, 2.0);
}

TEST(SpearmanRho, PerfectCorrelation) {
  const double a[] = {1.0, 2.0, 3.0, 4.0};
  const double b[] = {1.0, 2.0, 3.0, 4.0};
  const double rev[] = {4.0, 3.0, 2.0, 1.0};
  EXPECT_NEAR(*SpearmanRho(a, b), 1.0, 1e-12);
  EXPECT_NEAR(*SpearmanRho(a, rev), -1.0, 1e-12);
}

TEST(SpearmanRho, Validation) {
  const double a[] = {1.0, 2.0};
  const double short_b[] = {1.0};
  const double flat[] = {1.0, 1.0};
  EXPECT_FALSE(SpearmanRho(a, short_b).ok());
  EXPECT_FALSE(SpearmanRho(a, flat).ok());
}

TEST(KendallTau, KnownValues) {
  const double a[] = {1.0, 2.0, 3.0};
  const double same[] = {10.0, 20.0, 30.0};
  const double rev[] = {3.0, 2.0, 1.0};
  EXPECT_NEAR(*KendallTau(a, same), 1.0, 1e-12);
  EXPECT_NEAR(*KendallTau(a, rev), -1.0, 1e-12);
}

TEST(KendallTau, PartialDisorder) {
  const double a[] = {1.0, 2.0, 3.0};
  const double b[] = {1.0, 3.0, 2.0};  // One discordant pair of three.
  EXPECT_NEAR(*KendallTau(a, b), 1.0 / 3.0, 1e-12);
}

// Anchors with power following a clean inverse power law around `truth`.
std::vector<Anchor> CleanAnchors(Vec2 truth, std::span<const Vec2> positions) {
  std::vector<Anchor> anchors;
  for (const Vec2 p : positions) {
    const double d = std::max(Distance(p, truth), 0.1);
    anchors.push_back({p, 1.0 / (d * d), false});
  }
  return anchors;
}

TEST(SequenceLocalize, RecoversCleanTruthCoarsely) {
  const Polygon room = Polygon::Rectangle(0.0, 0.0, 10.0, 8.0);
  const std::vector<Vec2> aps{{1, 1}, {9, 1}, {9, 7}, {1, 7}, {5, 4}, {3, 6}};
  common::Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const Vec2 truth{rng.Uniform(1.0, 9.0), rng.Uniform(1.0, 7.0)};
    auto est = SequenceLocalize(room, CleanAnchors(truth, aps), {});
    ASSERT_TRUE(est.ok()) << est.status().ToString();
    // The sequence cell has finite size; just demand cell-scale accuracy.
    EXPECT_LT(Distance(*est, truth), 3.0);
    EXPECT_TRUE(room.Contains(*est, 1e-9));
  }
}

TEST(SequenceLocalize, KendallVariantAlsoWorks) {
  const Polygon room = Polygon::Rectangle(0.0, 0.0, 10.0, 8.0);
  const std::vector<Vec2> aps{{1, 1}, {9, 1}, {9, 7}, {1, 7}, {5, 4}};
  SequenceOptions opts;
  opts.correlation = RankCorrelation::kKendall;
  const Vec2 truth{3.0, 5.0};
  auto est = SequenceLocalize(room, CleanAnchors(truth, aps), opts);
  ASSERT_TRUE(est.ok());
  EXPECT_LT(Distance(*est, truth), 3.0);
}

TEST(SequenceLocalize, MoreAnchorsImproveResolution) {
  const Polygon room = Polygon::Rectangle(0.0, 0.0, 10.0, 8.0);
  const std::vector<Vec2> few{{1, 1}, {9, 1}, {9, 7}};
  std::vector<Vec2> many = few;
  many.insert(many.end(), {{1, 7}, {5, 4}, {3, 2}, {7, 6}});
  common::Rng rng(5);
  double err_few = 0.0, err_many = 0.0;
  for (int trial = 0; trial < 8; ++trial) {
    const Vec2 truth{rng.Uniform(1.0, 9.0), rng.Uniform(1.0, 7.0)};
    err_few += Distance(
        *SequenceLocalize(room, CleanAnchors(truth, few), {}), truth);
    err_many += Distance(
        *SequenceLocalize(room, CleanAnchors(truth, many), {}), truth);
  }
  EXPECT_LT(err_many, err_few);
}

TEST(SequenceLocalize, Validation) {
  const Polygon room = Polygon::Rectangle(0.0, 0.0, 2.0, 2.0);
  std::vector<Anchor> two{{{0, 0}, 1.0, false}, {{1, 0}, 2.0, false}};
  EXPECT_FALSE(SequenceLocalize(room, two, {}).ok());

  std::vector<Anchor> bad{{{0, 0}, 1.0, false},
                          {{1, 0}, 0.0, false},
                          {{0, 1}, 1.0, false}};
  EXPECT_FALSE(SequenceLocalize(room, bad, {}).ok());

  SequenceOptions opts;
  opts.grid_step_m = 0.0;
  std::vector<Anchor> ok_anchors{{{0, 0}, 1.0, false},
                                 {{1, 0}, 2.0, false},
                                 {{0, 1}, 3.0, false}};
  EXPECT_FALSE(SequenceLocalize(room, ok_anchors, opts).ok());
}

TEST(SequenceLocalize, WorksOnNonConvexArea) {
  auto l = Polygon::Create(
      {{0.0, 0.0}, {8.0, 0.0}, {8.0, 3.0}, {3.0, 3.0}, {3.0, 8.0}, {0.0, 8.0}});
  ASSERT_TRUE(l.ok());
  const std::vector<Vec2> aps{{1, 1}, {7, 1}, {1, 7}, {2, 2}};
  const Vec2 truth{1.5, 6.0};
  auto est = SequenceLocalize(*l, CleanAnchors(truth, aps), {});
  ASSERT_TRUE(est.ok());
  EXPECT_LT(Distance(*est, truth), 3.5);
}

}  // namespace
}  // namespace nomloc::localization
