// Equivalence suite for the stateful SpSolverSession (sp_session.h): the
// cold mode must be BIT-IDENTICAL to from-scratch SolveSp over the active
// constraint set, and the incremental mode must agree to solver tolerance
// across seeded add/decay schedules — including degenerate regions,
// non-convex floors, and the fallback degradation ladder.
#include "localization/sp_session.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "geometry/convex_decomp.h"
#include "localization/fallback.h"
#include "localization/sp_solver.h"

namespace nomloc::localization {
namespace {

using geometry::HalfPlane;
using geometry::Polygon;
using geometry::Vec2;

constexpr double kTol = 1e-6;

std::vector<SpConstraint> IdealConstraints(Vec2 truth,
                                           std::span<const Vec2> aps,
                                           double weight = 0.9) {
  std::vector<SpConstraint> out;
  for (std::size_t i = 0; i < aps.size(); ++i) {
    for (std::size_t j = i + 1; j < aps.size(); ++j) {
      const bool i_closer = Distance(truth, aps[i]) <= Distance(truth, aps[j]);
      const Vec2 w = i_closer ? aps[i] : aps[j];
      const Vec2 l = i_closer ? aps[j] : aps[i];
      out.push_back({HalfPlane::CloserTo(w, l), weight, false});
    }
  }
  return out;
}

// One random bisector constraint; contradiction_p controls how often the
// direction is flipped (flipped constraints conflict with the consistent
// ones and force the LP to relax something).
SpConstraint RandomConstraint(common::Rng& rng, Vec2 truth,
                              double contradiction_p) {
  const Vec2 a{rng.Uniform(0.5, 9.5), rng.Uniform(0.5, 7.5)};
  Vec2 b{rng.Uniform(0.5, 9.5), rng.Uniform(0.5, 7.5)};
  while (Distance(a, b) < 0.5) b = {rng.Uniform(0.5, 9.5), rng.Uniform(0.5, 7.5)};
  bool a_closer = Distance(truth, a) <= Distance(truth, b);
  if (rng.Bernoulli(contradiction_p)) a_closer = !a_closer;
  const Vec2 w = a_closer ? a : b;
  const Vec2 l = a_closer ? b : a;
  return {HalfPlane::CloserTo(w, l), rng.Uniform(0.3, 1.0), false};
}

void ExpectBitIdentical(const SpSolution& a, const SpSolution& b) {
  EXPECT_EQ(a.estimate.x, b.estimate.x);
  EXPECT_EQ(a.estimate.y, b.estimate.y);
  EXPECT_EQ(a.relaxation_cost, b.relaxation_cost);
  EXPECT_EQ(a.best_part, b.best_part);
  EXPECT_EQ(a.lp_iterations, b.lp_iterations);
  EXPECT_EQ(a.feasible_area_m2, b.feasible_area_m2);
  ASSERT_EQ(a.parts.size(), b.parts.size());
  for (std::size_t i = 0; i < a.parts.size(); ++i) {
    EXPECT_EQ(a.parts[i].violated, b.parts[i].violated);
    ASSERT_EQ(a.parts[i].region.size(), b.parts[i].region.size());
    for (std::size_t v = 0; v < a.parts[i].region.size(); ++v) {
      EXPECT_EQ(a.parts[i].region[v].x, b.parts[i].region[v].x);
      EXPECT_EQ(a.parts[i].region[v].y, b.parts[i].region[v].y);
    }
  }
}

void ExpectEquivalent(const SpSolution& got, const SpSolution& want,
                      const char* context) {
  EXPECT_NEAR(got.estimate.x, want.estimate.x, kTol) << context;
  EXPECT_NEAR(got.estimate.y, want.estimate.y, kTol) << context;
  EXPECT_NEAR(got.relaxation_cost, want.relaxation_cost, kTol) << context;
  EXPECT_NEAR(got.feasible_area_m2, want.feasible_area_m2, 1e-4) << context;
  ASSERT_EQ(got.parts.size(), want.parts.size()) << context;
  for (std::size_t i = 0; i < got.parts.size(); ++i)
    EXPECT_EQ(got.parts[i].violated, want.parts[i].violated)
        << context << " part " << i;
}

// Drives the same seeded add/decay schedule through a session and through
// from-scratch SolveSp, comparing after every step.
void RunSchedule(std::uint64_t seed, const std::vector<Polygon>& parts,
                 SpSolverOptions options, double contradiction_p,
                 bool expect_bits) {
  common::Rng rng(seed);
  const Vec2 truth{rng.Uniform(2.0, 8.0), rng.Uniform(2.0, 6.0)};
  SpSolverSession session(parts, options);

  std::vector<SpSolverSession::ConstraintId> live;
  for (int step = 0; step < 30; ++step) {
    const bool add = live.size() < 4 || rng.Bernoulli(0.7);
    if (add) {
      std::vector<SpConstraint> batch;
      const std::size_t count = 1 + rng.UniformInt(3);
      for (std::size_t i = 0; i < count; ++i)
        batch.push_back(RandomConstraint(rng, truth, contradiction_p));
      auto first = session.AddConstraints(batch);
      ASSERT_TRUE(first.ok()) << first.status().ToString();
      for (std::size_t i = 0; i < count; ++i) live.push_back(*first + i);
    } else {
      const std::size_t victim = rng.UniformInt(live.size());
      const SpSolverSession::ConstraintId ids[] = {live[victim]};
      ASSERT_TRUE(session.DecayConstraints(ids).ok());
      live.erase(live.begin() + std::ptrdiff_t(victim));
    }
    if (live.empty()) continue;

    auto got = session.Solve();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    auto want = SolveSp(parts, session.ActiveConstraints(), options);
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    if (expect_bits) {
      ExpectBitIdentical(*got, *want);
    } else {
      const std::string context =
          "seed " + std::to_string(seed) + " step " + std::to_string(step);
      ExpectEquivalent(*got, *want, context.c_str());
    }
  }
}

std::vector<Polygon> OneRoom() {
  return {Polygon::Rectangle(0.0, 0.0, 10.0, 8.0)};
}

std::vector<Polygon> LShapedFloor() {
  // L-shape: 10x8 with the top-right 4x4 notch removed.
  auto area = Polygon::Create({{0, 0}, {10, 0}, {10, 4}, {6, 4}, {6, 8},
                               {0, 8}});
  EXPECT_TRUE(area.ok());
  auto parts = geometry::DecomposeConvex(*area);
  EXPECT_TRUE(parts.ok());
  return *parts;
}

TEST(SpSessionCold, BitIdenticalToBatchOverSchedules) {
  for (std::uint64_t seed : {3ull, 17ull, 99ull}) {
    SpSolverOptions options;
    options.session_mode = SpSessionMode::kColdEachSolve;
    RunSchedule(seed, OneRoom(), options, 0.25, /*expect_bits=*/true);
  }
}

TEST(SpSessionCold, BitIdenticalOnNonConvexFloor) {
  SpSolverOptions options;
  options.session_mode = SpSessionMode::kColdEachSolve;
  RunSchedule(11, LShapedFloor(), options, 0.25, /*expect_bits=*/true);
}

TEST(SpSessionIncremental, MatchesBatchOverSchedules) {
  for (std::uint64_t seed : {3ull, 17ull, 99ull, 123ull}) {
    SpSolverOptions options;
    options.session_mode = SpSessionMode::kIncremental;
    RunSchedule(seed, OneRoom(), options, 0.25, /*expect_bits=*/false);
  }
}

TEST(SpSessionIncremental, MatchesBatchOnConsistentConstraints) {
  // Pure fast-path regime: no contradictions, the LP never engages.
  SpSolverOptions options;
  options.session_mode = SpSessionMode::kIncremental;
  RunSchedule(5, OneRoom(), options, 0.0, /*expect_bits=*/false);
}

TEST(SpSessionIncremental, MatchesBatchOnNonConvexFloor) {
  SpSolverOptions options;
  options.session_mode = SpSessionMode::kIncremental;
  RunSchedule(11, LShapedFloor(), options, 0.25, /*expect_bits=*/false);
}

TEST(SpSessionIncremental, MatchesBatchWithInteriorPointBackend) {
  SpSolverOptions options;
  options.session_mode = SpSessionMode::kIncremental;
  options.lp_backend = LpBackend::kInteriorPoint;
  // IPM converges to ~1e-9; loosen nothing — the shared kTol holds.
  RunSchedule(7, OneRoom(), options, 0.25, /*expect_bits=*/false);
}

TEST(SpSessionIncremental, DegenerateRegionPinch) {
  // Two parallel bisectors squeeze the region to a sliver, then conflict
  // outright; the session must track the batch through the transition.
  const auto parts = OneRoom();
  SpSolverOptions options;
  options.session_mode = SpSessionMode::kIncremental;
  SpSolverSession session(parts, options);

  // zx <= 5 (closer to (4,4) than (6,4)), then increasingly tight from
  // the right until contradiction.
  std::vector<SpConstraint> first{{HalfPlane::CloserTo({4, 4}, {6, 4}), 1.0,
                                   false}};
  ASSERT_TRUE(session.AddConstraints(first).ok());
  for (double x : {8.0, 7.0, 6.0, 5.2, 5.05, 4.8, 4.0}) {
    // Closer to (x-2, 4) than ... mirrored pair pushing from the left:
    // keeps x >= x-1 roughly; final ones contradict the first constraint.
    std::vector<SpConstraint> c{{HalfPlane::CloserTo({x, 4.0}, {x - 2.0, 4.0}),
                                 1.3, false}};
    ASSERT_TRUE(session.AddConstraints(c).ok());
    auto got = session.Solve();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    auto want = SolveSp(parts, session.ActiveConstraints(), options);
    ASSERT_TRUE(want.ok());
    ExpectEquivalent(*got, *want, "pinch");
  }
}

TEST(SpSessionIncremental, FastpathAndWarmCountersMove) {
  auto& registry = common::MetricRegistry::Global();
  const auto fast0 = registry.Counter("solver.fastpath_hits").Value();
  const auto warm0 = registry.Counter("solver.warm_hits").Value();

  const auto parts = OneRoom();
  SpSolverOptions options;
  options.session_mode = SpSessionMode::kIncremental;
  SpSolverSession session(parts, options);
  const std::vector<Vec2> aps{{1, 1}, {9, 1}, {9, 7}, {1, 7}};

  // Consistent adds: fast path.
  ASSERT_TRUE(session.AddConstraints(IdealConstraints({3, 2}, aps)).ok());
  ASSERT_TRUE(session.Solve().ok());
  EXPECT_GT(registry.Counter("solver.fastpath_hits").Value(), fast0);

  // A contradiction forces the LP; the next delta re-solves warm.
  std::vector<SpConstraint> clash{
      {HalfPlane::CloserTo({9, 7}, {3, 2}), 2.0, false},
      {HalfPlane::CloserTo({1, 1}, {9, 7}), 2.0, false}};
  ASSERT_TRUE(session.AddConstraints(clash).ok());
  ASSERT_TRUE(session.Solve().ok());
  std::vector<SpConstraint> more{
      {HalfPlane::CloserTo({2, 2}, {8, 6}), 0.7, false}};
  ASSERT_TRUE(session.AddConstraints(more).ok());
  ASSERT_TRUE(session.Solve().ok());
  EXPECT_GT(registry.Counter("solver.warm_hits").Value(), warm0);
}

TEST(SpSessionIncremental, RepeatedSolveWithoutDeltasIsStable) {
  const auto parts = OneRoom();
  SpSolverOptions options;
  options.session_mode = SpSessionMode::kIncremental;
  SpSolverSession session(parts, options);
  const std::vector<Vec2> aps{{1, 1}, {9, 1}, {9, 7}, {1, 7}};
  ASSERT_TRUE(session.AddConstraints(IdealConstraints({4, 3}, aps)).ok());
  auto first = session.Solve();
  ASSERT_TRUE(first.ok());
  auto second = session.Solve();
  ASSERT_TRUE(second.ok());
  ExpectBitIdentical(*first, *second);
}

TEST(SpSession, ReplaceConstraintsKeepsMatchesAndDiffsRest) {
  const auto parts = OneRoom();
  SpSolverOptions options;
  options.session_mode = SpSessionMode::kIncremental;
  SpSolverSession session(parts, options);
  const std::vector<Vec2> aps{{1, 1}, {9, 1}, {9, 7}, {1, 7}};
  const auto set_a = IdealConstraints({3, 2}, aps);
  ASSERT_TRUE(session.ReplaceConstraints(set_a).ok());
  EXPECT_EQ(session.ActiveConstraintCount(), set_a.size());
  const std::size_t total_after_a = session.ConstraintCount();

  // Same set again: pure match, nothing added or decayed.
  ASSERT_TRUE(session.ReplaceConstraints(set_a).ok());
  EXPECT_EQ(session.ConstraintCount(), total_after_a);
  EXPECT_EQ(session.ActiveConstraintCount(), set_a.size());

  // Shifted truth: overlapping set — some bisectors flip, some persist.
  const auto set_b = IdealConstraints({6, 5}, aps);
  ASSERT_TRUE(session.ReplaceConstraints(set_b).ok());
  EXPECT_EQ(session.ActiveConstraintCount(), set_b.size());
  auto got = session.Solve();
  ASSERT_TRUE(got.ok());
  auto want = SolveSp(parts, set_b, options);
  ASSERT_TRUE(want.ok());
  ExpectEquivalent(*got, *want, "replace");
}

TEST(SpSession, DecayUnknownIdFails) {
  SpSolverSession session(OneRoom(), {});
  const SpSolverSession::ConstraintId ids[] = {5};
  EXPECT_EQ(session.DecayConstraints(ids).status().code(),
            common::StatusCode::kInvalidArgument);
}

TEST(SpSession, SolveWithNoConstraintsFailsLikeBatch) {
  SpSolverSession session(OneRoom(), {});
  EXPECT_EQ(session.Solve().status().code(),
            common::StatusCode::kInvalidArgument);
}

TEST(SpSession, RejectsBoundaryConstraints) {
  SpSolverSession session(OneRoom(), {});
  std::vector<SpConstraint> bad{{HalfPlane{{1, 0}, 5.0}, 1.0, true}};
  EXPECT_EQ(session.AddConstraints(bad).status().code(),
            common::StatusCode::kInvalidArgument);
}

TEST(SpSession, ClearRestartsTheSession) {
  const auto parts = OneRoom();
  SpSolverOptions options;
  options.session_mode = SpSessionMode::kIncremental;
  SpSolverSession session(parts, options);
  const std::vector<Vec2> aps{{1, 1}, {9, 1}, {9, 7}, {1, 7}};
  ASSERT_TRUE(session.AddConstraints(IdealConstraints({3, 2}, aps)).ok());
  ASSERT_TRUE(session.Solve().ok());
  session.Clear();
  EXPECT_EQ(session.ActiveConstraintCount(), 0u);
  EXPECT_EQ(session.ConstraintCount(), 0u);
  auto first = session.AddConstraints(IdealConstraints({6, 5}, aps));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, 0u);  // Ids restart.
  auto got = session.Solve();
  ASSERT_TRUE(got.ok());
  auto want = SolveSp(parts, session.ActiveConstraints(), options);
  ASSERT_TRUE(want.ok());
  ExpectEquivalent(*got, *want, "post-clear");
}

TEST(SpSessionLadder, ResilientSessionMatchesStatelessLadder) {
  // Force degradation with a tight cost budget over contradictory
  // constraints: the session ladder and the stateless ladder must agree
  // on level, drops, and estimate.
  const auto parts = OneRoom();
  const std::vector<Vec2> aps{{1, 1}, {9, 1}, {9, 7}, {1, 7}};
  std::vector<Anchor> anchors;
  for (const Vec2& p : aps) anchors.push_back({p, 1.0, false});

  SpSolverOptions options;
  options.session_mode = SpSessionMode::kIncremental;
  options.fallback.max_relaxation_cost = 0.05;

  auto constraints = IdealConstraints({3, 2}, aps, 0.9);
  // Contradictions with low confidence — level 1 sheds them.
  constraints.push_back({HalfPlane::CloserTo({9, 7}, {3, 2}), 0.2, false});
  constraints.push_back({HalfPlane::CloserTo({8, 1}, {3, 2}), 0.1, false});

  SpSolverSession session(parts, options);
  ASSERT_TRUE(session.AddConstraints(constraints).ok());
  auto via_session = SolveSpResilient(session, anchors);
  ASSERT_TRUE(via_session.ok()) << via_session.status().ToString();

  auto stateless = SolveSpResilient(parts, anchors, constraints, options);
  ASSERT_TRUE(stateless.ok());

  EXPECT_EQ(via_session->level, stateless->level);
  EXPECT_NE(via_session->level, common::DegradationLevel::kNone);
  EXPECT_EQ(via_session->dropped_constraints,
            stateless->dropped_constraints);
  EXPECT_NEAR(via_session->solution.estimate.x,
              stateless->solution.estimate.x, kTol);
  EXPECT_NEAR(via_session->solution.estimate.y,
              stateless->solution.estimate.y, kTol);
}

TEST(SpSessionLadder, LadderIterationsAreCounted) {
  // The level-1 winning retry must report level-0's wasted LP work too.
  const auto parts = OneRoom();
  const std::vector<Vec2> aps{{1, 1}, {9, 1}, {9, 7}, {1, 7}};
  std::vector<Anchor> anchors;
  for (const Vec2& p : aps) anchors.push_back({p, 1.0, false});

  SpSolverOptions options;
  options.fallback.max_relaxation_cost = 0.05;
  auto constraints = IdealConstraints({3, 2}, aps, 0.9);
  constraints.push_back({HalfPlane::CloserTo({9, 7}, {3, 2}), 0.2, false});
  constraints.push_back({HalfPlane::CloserTo({8, 1}, {3, 2}), 0.1, false});

  auto resilient = SolveSpResilient(parts, anchors, constraints, options);
  ASSERT_TRUE(resilient.ok());
  ASSERT_NE(resilient->level, common::DegradationLevel::kNone);

  // The winning subset solved alone reports strictly fewer iterations
  // than the resilient solution, which also carries the failed attempts.
  auto kept_only = SolveSp(
      parts,
      std::vector<SpConstraint>(constraints.begin(),
                                constraints.end() - 2),
      options);
  ASSERT_TRUE(kept_only.ok());
  EXPECT_GT(resilient->solution.lp_iterations, kept_only->lp_iterations);
}

}  // namespace
}  // namespace nomloc::localization
