#include "geometry/segment_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <span>
#include <vector>

#include "common/rng.h"
#include "geometry/line.h"

namespace nomloc::geometry {
namespace {

// Brute-force oracle: the linear scan the index must reproduce exactly.
std::vector<std::uint32_t> BruteCrossings(std::span<const Segment> segs,
                                          const Segment& q) {
  std::vector<std::uint32_t> out;
  for (std::size_t i = 0; i < segs.size(); ++i)
    if (SegmentsIntersect(q, segs[i])) out.push_back(std::uint32_t(i));
  return out;
}

std::vector<Segment> RandomSegments(common::Rng& rng, std::size_t n,
                                    double extent) {
  std::vector<Segment> segs;
  segs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 a{rng.Uniform(0.0, extent), rng.Uniform(0.0, extent)};
    const Vec2 d{rng.Uniform(-3.0, 3.0), rng.Uniform(-3.0, 3.0)};
    segs.push_back({a, a + d});
  }
  return segs;
}

TEST(SegmentIndex, EmptyIndexReportsNothing) {
  const SegmentIndex index;
  EXPECT_TRUE(index.Empty());
  std::vector<std::uint32_t> out;
  index.CrossingIndices({{0, 0}, {10, 10}}, out);
  EXPECT_TRUE(out.empty());
  EXPECT_FALSE(index.AnyCrossing({{0, 0}, {10, 10}}));
  EXPECT_FALSE(index.FirstHit({{0, 0}, {10, 10}}).has_value());
}

TEST(SegmentIndex, CrossingsMatchBruteOnGridOfWalls) {
  // A lattice of short walls; queries cut across at varied angles.
  std::vector<Segment> segs;
  for (int i = 0; i < 10; ++i) {
    segs.push_back({{double(i), 0.0}, {double(i), 8.0}});    // Vertical.
    segs.push_back({{0.0, double(i)}, {9.0, double(i)}});    // Horizontal.
  }
  const auto index = SegmentIndex::Build(segs);
  EXPECT_EQ(index.SegmentCount(), segs.size());

  common::Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    const Segment q{{rng.Uniform(-1.0, 10.0), rng.Uniform(-1.0, 9.0)},
                    {rng.Uniform(-1.0, 10.0), rng.Uniform(-1.0, 9.0)}};
    std::vector<std::uint32_t> got;
    index.CrossingIndices(q, got);
    EXPECT_EQ(got, BruteCrossings(segs, q));
    EXPECT_EQ(index.AnyCrossing(q), !got.empty());
  }
}

TEST(SegmentIndex, CrossingsMatchBruteOnRandomSoup) {
  common::Rng rng(42);
  for (const std::size_t n : {1u, 7u, 40u, 300u}) {
    const auto segs = RandomSegments(rng, n, 30.0);
    const auto index = SegmentIndex::Build(segs);
    for (int trial = 0; trial < 100; ++trial) {
      const Segment q{{rng.Uniform(-2.0, 32.0), rng.Uniform(-2.0, 32.0)},
                      {rng.Uniform(-2.0, 32.0), rng.Uniform(-2.0, 32.0)}};
      std::vector<std::uint32_t> got;
      index.CrossingIndices(q, got);
      EXPECT_EQ(got, BruteCrossings(segs, q)) << "n=" << n;
    }
  }
}

TEST(SegmentIndex, FirstHitMatchesBruteMinimum) {
  common::Rng rng(7);
  const auto segs = RandomSegments(rng, 120, 20.0);
  const auto index = SegmentIndex::Build(segs);
  for (int trial = 0; trial < 200; ++trial) {
    const Segment q{{rng.Uniform(0.0, 20.0), rng.Uniform(0.0, 20.0)},
                    {rng.Uniform(0.0, 20.0), rng.Uniform(0.0, 20.0)}};
    // Brute first hit: smallest (t, index) over exact intersections.
    std::optional<SegmentIndex::Hit> want;
    for (std::size_t i = 0; i < segs.size(); ++i) {
      const auto p = IntersectSegments(q, segs[i]);
      if (!p) continue;
      const Vec2 d = q.b - q.a;
      const double len2 = Dot(d, d);
      const double t =
          len2 > 0.0 ? std::clamp(Dot(*p - q.a, d) / len2, 0.0, 1.0) : 0.0;
      if (!want || t < want->t) want = {i, *p, t};
    }
    const auto got = index.FirstHit(q);
    ASSERT_EQ(got.has_value(), want.has_value());
    if (got) {
      EXPECT_EQ(got->index, want->index);
      EXPECT_EQ(got->point.x, want->point.x);
      EXPECT_EQ(got->point.y, want->point.y);
    }
  }
}

TEST(SegmentIndex, HandlesDegenerateSegments) {
  // Zero-length segments, collinear overlapping walls, and a query
  // touching an endpoint exactly.
  const std::vector<Segment> segs{{{2, 2}, {2, 2}},          // Point.
                                  {{0, 1}, {4, 1}},          // Base wall.
                                  {{1, 1}, {3, 1}},          // Collinear overlap.
                                  {{4, 0}, {4, 4}}};
  const auto index = SegmentIndex::Build(segs);
  for (const Segment q : {Segment{{2, 0}, {2, 4}},   // Through the point.
                          Segment{{0, 0}, {4, 4}},   // Diagonal.
                          Segment{{4, 1}, {5, 1}},   // Starts on a wall.
                          Segment{{0, 1}, {4, 1}}})  // Collinear with walls.
  {
    std::vector<std::uint32_t> got;
    index.CrossingIndices(q, got);
    EXPECT_EQ(got, BruteCrossings(segs, q));
  }
}

TEST(SegmentIndex, AppendsWithoutClearing) {
  const std::vector<Segment> segs{{{0, 1}, {2, 1}}};
  const auto index = SegmentIndex::Build(segs);
  std::vector<std::uint32_t> out{99};
  index.CrossingIndices({{1, 0}, {1, 2}}, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 99u);
  EXPECT_EQ(out[1], 0u);
}

TEST(SegmentIndex, ReportsShapeAndFootprint) {
  common::Rng rng(3);
  const auto segs = RandomSegments(rng, 64, 40.0);
  const auto index = SegmentIndex::Build(segs);
  EXPECT_GT(index.CellCount(), 0u);
  EXPECT_GT(index.CellWidthM(), 0.0);
  EXPECT_GT(index.CellHeightM(), 0.0);
  EXPECT_GT(index.ApproxBytes(), 64 * sizeof(Segment));
}

}  // namespace
}  // namespace nomloc::geometry
