#include "common/strings.h"

#include <gtest/gtest.h>

namespace nomloc::common {
namespace {

TEST(StrFormat, BasicFormatting) {
  EXPECT_EQ(StrFormat("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("%s", "abc"), "abc");
}

TEST(StrFormat, EmptyAndLong) {
  EXPECT_EQ(StrFormat("%s", ""), "");
  const std::string big(500, 'x');
  EXPECT_EQ(StrFormat("%s", big.c_str()), big);
}

TEST(Join, JoinsWithSeparator) {
  const std::string items[] = {"a", "b", "c"};
  EXPECT_EQ(Join(items, ", "), "a, b, c");
}

TEST(Join, SingleAndEmpty) {
  const std::string one[] = {"solo"};
  EXPECT_EQ(Join(one, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(FormatDouble(2.0 / 3.0, 3), "0.667");
  EXPECT_EQ(FormatDouble(5.0, 0), "5");
}

TEST(AsciiTable, RendersAlignedCells) {
  const std::string header[] = {"name", "value"};
  const std::vector<std::string> rows_arr[] = {{"x", "1"}, {"longer", "22"}};
  const std::string table = AsciiTable(header, rows_arr);
  EXPECT_NE(table.find("| name   | value |"), std::string::npos);
  EXPECT_NE(table.find("| longer | 22    |"), std::string::npos);
  EXPECT_NE(table.find("+--------+-------+"), std::string::npos);
}

TEST(AsciiTable, MismatchedRowThrows) {
  const std::string header[] = {"a", "b"};
  const std::vector<std::string> rows_arr[] = {{"only-one"}};
  EXPECT_THROW(AsciiTable(header, rows_arr), std::logic_error);
}

TEST(AsciiBar, ScalesToWidth) {
  EXPECT_EQ(AsciiBar(5.0, 10.0, 10), "#####     ");
  EXPECT_EQ(AsciiBar(10.0, 10.0, 4), "####");
  EXPECT_EQ(AsciiBar(0.0, 10.0, 4), "    ");
}

TEST(AsciiBar, ClampsOverflow) {
  EXPECT_EQ(AsciiBar(20.0, 10.0, 4), "####");
  EXPECT_EQ(AsciiBar(-5.0, 10.0, 4), "    ");
}

TEST(AsciiBar, ZeroMaxIsEmpty) { EXPECT_EQ(AsciiBar(1.0, 0.0, 4), ""); }

TEST(AsciiBar, NonPositiveWidthThrows) {
  EXPECT_THROW(AsciiBar(1.0, 1.0, 0), std::logic_error);
}

}  // namespace
}  // namespace nomloc::common
