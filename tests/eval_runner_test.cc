// Focused tests for the experiment runner's plumbing: which anchors each
// deployment produces, how config knobs propagate, and consistency
// between the measurement variants.
#include "eval/runner.h"

#include <gtest/gtest.h>

#include "channel/csi_model.h"
#include "dsp/cir.h"
#include "eval/scenario.h"

namespace nomloc::eval {
namespace {

using geometry::Vec2;

core::NomLocEngine EngineFor(const Scenario& s, const RunConfig& cfg) {
  core::NomLocConfig engine_cfg = cfg.engine;
  engine_cfg.bandwidth_hz = cfg.channel.bandwidth_hz;
  auto engine = core::NomLocEngine::Create(s.env.Boundary(), engine_cfg);
  return std::move(engine).value();
}

RunConfig TinyConfig() {
  RunConfig cfg;
  cfg.packets_per_batch = 8;
  cfg.trials = 1;
  cfg.dwell_count = 6;
  cfg.seed = 9;
  return cfg;
}

TEST(LocalizeEpoch, StaticDeploymentUsesExactlyTheStaticAps) {
  const Scenario lab = LabScenario();
  RunConfig cfg = TinyConfig();
  cfg.deployment = Deployment::kStatic;
  const auto engine = EngineFor(lab, cfg);
  common::Rng rng(1);
  auto est = LocalizeEpoch(lab, cfg, engine, {6.0, 4.0}, rng);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->anchors.size(), lab.static_aps.size());
  for (const auto& anchor : est->anchors)
    EXPECT_FALSE(anchor.is_nomadic_site);
}

TEST(LocalizeEpoch, NomadicDeploymentAnchorsAreStaticsPlusVisitedSites) {
  const Scenario lab = LabScenario();
  RunConfig cfg = TinyConfig();
  const auto engine = EngineFor(lab, cfg);
  common::Rng rng(2);
  auto est = LocalizeEpoch(lab, cfg, engine, {6.0, 4.0}, rng);
  ASSERT_TRUE(est.ok());
  // 3 fixed APs + between 1 and 4 distinct nomadic sites.
  std::size_t nomadic = 0, fixed = 0;
  for (const auto& anchor : est->anchors)
    (anchor.is_nomadic_site ? nomadic : fixed)++;
  EXPECT_EQ(fixed, lab.static_aps.size() - 1);
  EXPECT_GE(nomadic, 1u);
  EXPECT_LE(nomadic, lab.nomadic_sites.size());
}

TEST(LocalizeEpoch, StationaryPatternYieldsSingleNomadicAnchor) {
  const Scenario lab = LabScenario();
  RunConfig cfg = TinyConfig();
  cfg.pattern = mobility::MobilityPattern::kStationary;
  const auto engine = EngineFor(lab, cfg);
  common::Rng rng(3);
  auto est = LocalizeEpoch(lab, cfg, engine, {6.0, 4.0}, rng);
  ASSERT_TRUE(est.ok());
  std::size_t nomadic = 0;
  for (const auto& anchor : est->anchors) nomadic += anchor.is_nomadic_site;
  EXPECT_EQ(nomadic, 1u);
}

TEST(LocalizeEpoch, PatrolVisitsEverySite) {
  const Scenario lab = LabScenario();
  RunConfig cfg = TinyConfig();
  cfg.pattern = mobility::MobilityPattern::kPatrol;
  cfg.dwell_count = lab.nomadic_sites.size();
  const auto engine = EngineFor(lab, cfg);
  common::Rng rng(4);
  auto est = LocalizeEpoch(lab, cfg, engine, {6.0, 4.0}, rng);
  ASSERT_TRUE(est.ok());
  std::size_t nomadic = 0;
  for (const auto& anchor : est->anchors) nomadic += anchor.is_nomadic_site;
  EXPECT_EQ(nomadic, lab.nomadic_sites.size());
}

TEST(LocalizeEpoch, PositionErrorMovesReportedNomadicAnchors) {
  const Scenario lab = LabScenario();
  RunConfig cfg = TinyConfig();
  cfg.position_error_m = 2.0;
  const auto engine = EngineFor(lab, cfg);
  common::Rng rng(5);
  auto est = LocalizeEpoch(lab, cfg, engine, {6.0, 4.0}, rng);
  ASSERT_TRUE(est.ok());
  bool any_offset = false;
  for (const auto& anchor : est->anchors) {
    if (!anchor.is_nomadic_site) continue;
    double nearest_site = 1e9;
    for (const Vec2 s : lab.nomadic_sites)
      nearest_site = std::min(nearest_site, Distance(anchor.position, s));
    if (nearest_site > 1e-6) any_offset = true;
    EXPECT_LE(nearest_site, 2.0 + 1e-9);  // Bounded by ER.
  }
  EXPECT_TRUE(any_offset);
}

TEST(LocalizeEpoch, MultipleNomadicApsReduceFixedAnchors) {
  const Scenario lobby = LobbyScenario();
  RunConfig cfg = TinyConfig();
  cfg.nomadic_ap_count = 2;
  const auto engine = EngineFor(lobby, cfg);
  common::Rng rng(6);
  auto est = LocalizeEpoch(lobby, cfg, engine, {10.0, 3.0}, rng);
  ASSERT_TRUE(est.ok());
  std::size_t fixed = 0;
  for (const auto& anchor : est->anchors) fixed += !anchor.is_nomadic_site;
  EXPECT_EQ(fixed, lobby.static_aps.size() - 2);
}

TEST(LocalizeEpoch, SingleAntennaMimoCombiningEqualsSiso) {
  // The degenerate check tying the two measurement paths together: the
  // MIMO combiner over one antenna is bit-identical to the SISO PDP.
  // (With several antennas the combined PDP legitimately differs — a
  // single antenna can sit in a multipath null; that is the diversity
  // gain, covered in channel_csi_model_test.)
  const Scenario lobby = LobbyScenario();
  const RunConfig cfg = TinyConfig();
  const channel::CsiSimulator sim(lobby.env, cfg.channel);
  const auto link = sim.MakeLink({13.0, 4.5}, lobby.static_aps[0]);
  common::Rng r1(7), r2(7);
  const auto siso_frames = link.SampleBatch(12, r1);
  const auto mimo_packets = link.SampleMimoBatch(12, r2);
  const double pdp_siso =
      dsp::PdpOfBatch(siso_frames, cfg.channel.bandwidth_hz);
  const double pdp_mimo =
      dsp::PdpOfMimoBatch(mimo_packets, cfg.channel.bandwidth_hz);
  EXPECT_NEAR(pdp_mimo / pdp_siso, 1.0, 1e-9);
}

TEST(RunLocalization, RejectsZeroThreads) {
  // threads = 0 used to silently mean sequential; it is now a typed error
  // (RunConfig::Validate).
  RunConfig cfg = TinyConfig();
  cfg.threads = 0;
  auto result = RunLocalization(LabScenario(), cfg);
  EXPECT_EQ(result.status().code(), common::StatusCode::kInvalidArgument);
}

TEST(RunLocalization, RejectsZeroTrialsAndBadEngineConfig) {
  RunConfig zero_trials = TinyConfig();
  zero_trials.trials = 0;
  EXPECT_EQ(RunLocalization(LabScenario(), zero_trials).status().code(),
            common::StatusCode::kInvalidArgument);

  RunConfig negative_er = TinyConfig();
  negative_er.position_error_m = -1.0;
  EXPECT_EQ(RunLocalization(LabScenario(), negative_er).status().code(),
            common::StatusCode::kInvalidArgument);
}

TEST(RunLocalization, ThreadCountDoesNotChangeResults) {
  // Measurement forks one RNG stream per site and the engine solve is
  // RNG-free, so the parallel path must be bit-identical to the serial
  // one — not merely statistically equivalent.
  const Scenario lab = LabScenario();
  RunConfig serial = TinyConfig();
  serial.threads = 1;
  RunConfig parallel = TinyConfig();
  parallel.threads = 4;
  auto rs = RunLocalization(lab, serial);
  auto rp = RunLocalization(lab, parallel);
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(rp.ok());
  ASSERT_EQ(rs->sites.size(), rp->sites.size());
  for (std::size_t i = 0; i < rs->sites.size(); ++i) {
    EXPECT_EQ(rs->sites[i].trial_errors_m, rp->sites[i].trial_errors_m);
    EXPECT_EQ(rs->sites[i].mean_error_m, rp->sites[i].mean_error_m);
  }
  EXPECT_EQ(rs->slv, rp->slv);
}

TEST(RunLocalization, DifferentSeedsDifferentResults) {
  const Scenario lab = LabScenario();
  RunConfig a = TinyConfig();
  RunConfig b = TinyConfig();
  b.seed = a.seed + 1;
  auto ra = RunLocalization(lab, a);
  auto rb = RunLocalization(lab, b);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  bool any_diff = false;
  for (std::size_t i = 0; i < ra->sites.size(); ++i)
    if (ra->sites[i].mean_error_m != rb->sites[i].mean_error_m)
      any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(RunProximityAccuracy, DeterministicPerSeed) {
  const Scenario lobby = LobbyScenario();
  const RunConfig cfg = TinyConfig();
  auto a = RunProximityAccuracy(lobby, cfg);
  auto b = RunProximityAccuracy(lobby, cfg);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->per_site_accuracy, b->per_site_accuracy);
}

}  // namespace
}  // namespace nomloc::eval
