#include "common/status.h"

#include <gtest/gtest.h>

namespace nomloc::common {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad input");
}

TEST(Status, EqualityComparesCodesOnly) {
  EXPECT_EQ(InvalidArgument("a"), InvalidArgument("b"));
  EXPECT_FALSE(InvalidArgument("a") == Infeasible("a"));
}

TEST(Status, AllCodeNamesAreDistinct) {
  const StatusCode codes[] = {
      StatusCode::kOk,         StatusCode::kInvalidArgument,
      StatusCode::kFailedPrecondition, StatusCode::kNotFound,
      StatusCode::kInfeasible, StatusCode::kUnbounded,
      StatusCode::kNumericalError, StatusCode::kExhausted,
      StatusCode::kDataCorruption, StatusCode::kInternal};
  for (std::size_t i = 0; i < std::size(codes); ++i)
    for (std::size_t j = i + 1; j < std::size(codes); ++j)
      EXPECT_NE(StatusCodeName(codes[i]), StatusCodeName(codes[j]));
}

TEST(Status, FactoryHelpersSetExpectedCodes) {
  EXPECT_EQ(FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Infeasible("x").code(), StatusCode::kInfeasible);
  EXPECT_EQ(Unbounded("x").code(), StatusCode::kUnbounded);
  EXPECT_EQ(NumericalError("x").code(), StatusCode::kNumericalError);
  EXPECT_EQ(Exhausted("x").code(), StatusCode::kExhausted);
  EXPECT_EQ(DataCorruption("x").code(), StatusCode::kDataCorruption);
  EXPECT_EQ(Internal("x").code(), StatusCode::kInternal);
}

TEST(Status, DataCorruptionHasStableName) {
  EXPECT_EQ(StatusCodeName(StatusCode::kDataCorruption), "DATA_CORRUPTION");
  EXPECT_NE(DataCorruption("bad taps").ToString().find("DATA_CORRUPTION"),
            std::string::npos);
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r = NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Result, ValueOnErrorThrows) {
  Result<int> r = NotFound("missing");
  EXPECT_THROW(r.value(), std::logic_error);
}

TEST(Result, ConstructingFromOkStatusThrows) {
  EXPECT_THROW(Result<int>(Status::Ok()), std::logic_error);
}

TEST(Result, ValueOrFallsBack) {
  Result<int> good = 7;
  Result<int> bad = Internal("x");
  EXPECT_EQ(good.value_or(-1), 7);
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

TEST(Result, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

Status FailIfNegative(int x) {
  if (x < 0) return InvalidArgument("negative");
  return Status::Ok();
}

Status Chain(int x) {
  NOMLOC_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::Ok();
}

TEST(Macros, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_EQ(Chain(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  NOMLOC_ASSIGN_OR_RETURN(int h, Half(x));
  NOMLOC_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(Macros, AssignOrReturnBindsAndPropagates) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_EQ(Quarter(6).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Quarter(5).status().code(), StatusCode::kInvalidArgument);
}

TEST(Assert, RequireThrowsLogicError) {
  EXPECT_THROW(NOMLOC_REQUIRE(false), std::logic_error);
  EXPECT_NO_THROW(NOMLOC_REQUIRE(true));
}

}  // namespace
}  // namespace nomloc::common
