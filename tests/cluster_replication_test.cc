// Replication + failover + durable recovery contract (ISSUE 10
// tentpole): every accepted observation is dual-written to its standby
// shard, a crashed primary fails over to that standby without losing a
// bit, Recover() hands the sessions back, the router's write-retry
// budget turns transient backpressure into bounded retries, and a stale
// placement epoch is a typed fence, never a silent overwrite.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/shard_host.h"
#include "cluster/transport.h"
#include "common/metrics.h"
#include "eval/scenario.h"
#include "serving/clock.h"
#include "serving/replay.h"
#include "serving/service.h"

namespace nomloc::cluster {
namespace {

struct Harness {
  eval::Scenario scenario;
  serving::ReplayConfig replay;
  serving::ReplayPlan plan;
  core::NomLocEngine engine;
};

common::Result<Harness> MakeHarness(std::size_t objects, std::size_t epochs) {
  NOMLOC_ASSIGN_OR_RETURN(eval::Scenario scenario,
                          eval::ScenarioByName("lab"));
  serving::ReplayConfig replay;
  replay.objects = objects;
  replay.epochs = epochs;
  replay.run.packets_per_batch = 3;
  replay.run.dwell_count = 3;
  NOMLOC_ASSIGN_OR_RETURN(serving::ReplayPlan plan,
                          BuildReplayPlan(scenario, replay));
  core::NomLocConfig engine_cfg;
  engine_cfg.bandwidth_hz = replay.run.channel.bandwidth_hz;
  NOMLOC_ASSIGN_OR_RETURN(
      core::NomLocEngine engine,
      core::NomLocEngine::Create(scenario.env.Boundary(), engine_cfg));
  return Harness{std::move(scenario), replay, std::move(plan),
                 std::move(engine)};
}

ClusterConfig ReplicatedConfig(const Harness& harness) {
  ClusterConfig config;
  config.shards = 4;
  config.serving.workers = 2;
  config.replicate = true;
  config.serving.store.anchor_ttl_s = harness.plan.suggested_anchor_ttl_s;
  config.serving.store.session_idle_ttl_s =
      10.0 * harness.replay.epoch_interval_s;
  config.serving.expected_anchors = harness.plan.expected_anchors;
  return config;
}

template <typename Sink, typename AtBoundary>
void Replay(const Harness& harness, serving::ManualClock& clock, Sink&& sink,
            AtBoundary&& at_boundary) {
  std::size_t next = 0;
  const auto& stream = harness.plan.packets;
  for (std::size_t e = 0; e < harness.plan.epoch_count; ++e) {
    const double epoch_end_s =
        double(e + 1) * harness.replay.epoch_interval_s;
    while (next < stream.size() && stream[next].timestamp_s < epoch_end_s) {
      clock.Set(stream[next].timestamp_s);
      sink(stream[next]);
      ++next;
    }
    at_boundary(e + 1);
  }
}

using ResponseKey = std::pair<std::uint64_t, std::uint64_t>;

ResponseKey KeyOf(std::uint64_t object_id, double timestamp_s) {
  std::uint64_t bits;
  std::memcpy(&bits, &timestamp_s, sizeof(bits));
  return {object_id, bits};
}

std::map<ResponseKey, serving::ServeResponse> GoldenRun(
    const Harness& harness, serving::ServingConfig serving) {
  serving::ManualClock clock;
  auto service =
      serving::StreamingLocalizer::Create(harness.engine, serving, &clock);
  EXPECT_TRUE(service.ok()) << service.status().ToString();
  Replay(
      harness, clock,
      [&](const serving::IngestPacket& p) { (void)(*service)->Ingest(p); },
      [&](std::size_t) { (*service)->Flush(); });
  (*service)->Shutdown();
  std::map<ResponseKey, serving::ServeResponse> golden;
  for (const serving::ServeResponse& r : (*service)->TakeResponses())
    golden[KeyOf(r.object_id, r.timestamp_s)] = r;
  return golden;
}

void ExpectBitIdentical(
    const std::vector<ClusterResponse>& responses,
    const std::map<ResponseKey, serving::ServeResponse>& golden) {
  ASSERT_EQ(responses.size(), golden.size());
  std::set<ResponseKey> seen;
  auto bits_equal = [](double a, double b) {
    return std::memcmp(&a, &b, sizeof(a)) == 0;
  };
  for (const ClusterResponse& received : responses) {
    const serving::WireResponse& r = received.response;
    const ResponseKey key = KeyOf(r.object_id, r.timestamp_s);
    ASSERT_TRUE(seen.insert(key).second)
        << "duplicate response for object " << r.object_id;
    const auto golden_it = golden.find(key);
    ASSERT_NE(golden_it, golden.end())
        << "no golden twin for object " << r.object_id;
    const serving::ServeResponse& want = golden_it->second;
    EXPECT_EQ(r.status, static_cast<std::uint8_t>(want.status));
    EXPECT_TRUE(bits_equal(r.position.x, want.estimate.position.x));
    EXPECT_TRUE(bits_equal(r.position.y, want.estimate.position.y));
    EXPECT_TRUE(
        bits_equal(r.relaxation_cost, want.estimate.relaxation_cost));
    EXPECT_TRUE(
        bits_equal(r.feasible_area_m2, want.estimate.feasible_area_m2));
    EXPECT_TRUE(bits_equal(r.confidence, want.confidence));
  }
}

TEST(Replication, DualWritePopulatesEveryStandby) {
  auto harness = MakeHarness(4, 2);
  ASSERT_TRUE(harness.ok()) << harness.status().ToString();
  ClusterConfig config = ReplicatedConfig(*harness);
  serving::ManualClock clock;
  auto cluster = Cluster::Create(harness->engine, config, &clock);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  const auto replicated_before =
      common::MetricRegistry::Global().Counter("cluster.replicated").Value();
  Replay(
      *harness, clock,
      [&](const serving::IngestPacket& p) {
        EXPECT_EQ((*cluster)->Ingest(p), serving::AdmitStatus::kAccepted);
      },
      [&](std::size_t) { (*cluster)->Flush(); });

  // Every primary session must have exactly one warm-standby copy, and
  // never on its own shard.
  std::size_t primaries = 0;
  for (std::size_t shard = 0; shard < 4; ++shard) {
    for (std::uint64_t id : (*cluster)->StoreOf(shard)->ObjectIds(nullptr)) {
      ++primaries;
      std::size_t copies = 0;
      for (std::size_t other = 0; other < 4; ++other) {
        if ((*cluster)->StandbyStoreOf(other)->Contains(id)) {
          ++copies;
          EXPECT_NE(other, shard)
              << "object " << id << " standby on its own primary shard";
        }
      }
      EXPECT_EQ(copies, 1u) << "object " << id;
    }
  }
  EXPECT_GT(primaries, 0u);
  EXPECT_GT(common::MetricRegistry::Global().Counter("cluster.replicated")
                .Value(),
            replicated_before);
  // Dual-writes never change what the cluster answers.
  const auto responses = (*cluster)->TakeResponses();
  (*cluster)->Shutdown();
  ExpectBitIdentical(responses, GoldenRun(*harness, config.serving));
}

TEST(Replication, CrashFailoverPromotesStandbyAndKeepsBitIdentity) {
  auto harness = MakeHarness(4, 4);
  ASSERT_TRUE(harness.ok()) << harness.status().ToString();
  ClusterConfig config = ReplicatedConfig(*harness);
  serving::ManualClock clock;
  auto cluster = Cluster::Create(harness->engine, config, &clock);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  auto& registry = common::MetricRegistry::Global();
  const auto failovers_before = registry.Counter("cluster.failovers").Value();
  const auto promoted_before =
      registry.Counter("cluster.promoted_sessions").Value();

  const std::size_t victim = (*cluster)->ShardOf(0);
  const std::uint64_t epoch_before = (*cluster)->PlacementEpoch();
  Replay(
      *harness, clock,
      [&](const serving::IngestPacket& p) {
        // Failover keeps the whole stream deliverable: the first packet
        // that finds the primary dead promotes its standby and reroutes.
        EXPECT_EQ((*cluster)->Ingest(p), serving::AdmitStatus::kAccepted);
      },
      [&](std::size_t finished) {
        (*cluster)->Flush();
        if (finished == 2) {
          // A crash, not a drain: no checkpoint, decoded-but-unapplied
          // bytes die with the host.
          (*cluster)->Kill(victim, /*unclean=*/true);
          EXPECT_FALSE((*cluster)->ShardLive(victim));
        }
      });
  const auto responses = (*cluster)->TakeResponses();
  (*cluster)->Shutdown();

  EXPECT_EQ(registry.Counter("cluster.failovers").Value(),
            failovers_before + 1);
  EXPECT_GT(registry.Counter("cluster.promoted_sessions").Value(),
            promoted_before);
  EXPECT_GT((*cluster)->PlacementEpoch(), epoch_before);
  ExpectBitIdentical(responses, GoldenRun(*harness, config.serving));
}

TEST(Replication, RecoverHandsSessionsBackAndKeepsBitIdentity) {
  auto harness = MakeHarness(4, 5);
  ASSERT_TRUE(harness.ok()) << harness.status().ToString();
  ClusterConfig config = ReplicatedConfig(*harness);
  serving::ManualClock clock;
  auto cluster = Cluster::Create(harness->engine, config, &clock);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  auto& registry = common::MetricRegistry::Global();
  const auto recoveries_before =
      registry.Counter("cluster.recoveries").Value();

  const std::size_t victim = (*cluster)->ShardOf(0);
  Replay(
      *harness, clock,
      [&](const serving::IngestPacket& p) {
        EXPECT_EQ((*cluster)->Ingest(p), serving::AdmitStatus::kAccepted);
      },
      [&](std::size_t finished) {
        (*cluster)->Flush();
        if (finished == 2) {
          (*cluster)->Kill(victim, /*unclean=*/true);
        } else if (finished == 3) {
          auto recovered = (*cluster)->Recover(victim);
          ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
          EXPECT_TRUE((*cluster)->ShardLive(victim));
          // Hand-back: the recovered owner holds its sessions again.
          EXPECT_GT((*cluster)->StoreOf(victim)->SessionCount(), 0u);
        }
      });
  const auto responses = (*cluster)->TakeResponses();
  (*cluster)->Shutdown();

  EXPECT_EQ(registry.Counter("cluster.recoveries").Value(),
            recoveries_before + 1);
  ExpectBitIdentical(responses, GoldenRun(*harness, config.serving));
}

TEST(Replication, DurableCrashRecoveryReplaysWalToExactState) {
  auto harness = MakeHarness(4, 4);
  ASSERT_TRUE(harness.ok()) << harness.status().ToString();
  ClusterConfig config = ReplicatedConfig(*harness);
  config.replicate = false;  // Durability alone must carry the state.
  config.durable_dir = ::testing::TempDir() + "nomloc_durable_recovery";
  config.wal_fsync = false;  // Keep the suite fast; fsync is orthogonal.
  // A previous run's WAL would replay into this one: start clean.
  std::error_code ignored;
  std::filesystem::remove_all(config.durable_dir, ignored);
  serving::ManualClock clock;
  auto cluster = Cluster::Create(harness->engine, config, &clock);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  auto& registry = common::MetricRegistry::Global();
  const auto replayed_before =
      registry.Counter("serving.wal.replayed_frames").Value();

  const std::size_t victim = (*cluster)->ShardOf(0);
  Replay(
      *harness, clock,
      [&](const serving::IngestPacket& p) {
        EXPECT_EQ((*cluster)->Ingest(p), serving::AdmitStatus::kAccepted);
      },
      [&](std::size_t finished) {
        (*cluster)->Flush();
        if (finished == 2) {
          // Crash and recover within one drained boundary: the WAL alone
          // must rebuild the exact pre-crash state (no standby to lean
          // on, no traffic to mask a hole).
          (*cluster)->Kill(victim, /*unclean=*/true);
          auto recovered = (*cluster)->Recover(victim);
          ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
          EXPECT_GT((*cluster)->StoreOf(victim)->SessionCount(), 0u);
        }
      });
  const auto responses = (*cluster)->TakeResponses();
  (*cluster)->Shutdown();

  EXPECT_GT(registry.Counter("serving.wal.replayed_frames").Value(),
            replayed_before);
  ExpectBitIdentical(responses, GoldenRun(*harness, config.serving));
}

TEST(Replication, WriteRetryBudgetRetriesThenRejectsTyped) {
  auto harness = MakeHarness(2, 1);
  ASSERT_TRUE(harness.ok()) << harness.status().ToString();
  ClusterConfig config;
  config.shards = 1;
  config.serving.store.anchor_ttl_s = harness->plan.suggested_anchor_ttl_s;
  config.serving.expected_anchors = harness->plan.expected_anchors;
  // A pipe too small for one observation frame, stalled so it never
  // drains: every retry sees the same backpressure.
  config.transport.loopback_capacity_bytes = serving::kWireHeaderBytes + 8;
  config.write_retry_budget = 2;
  config.write_retry_base_ms = 0.1;
  config.write_retry_max_ms = 0.2;

  serving::ManualClock clock;
  auto cluster = Cluster::Create(harness->engine, config, &clock);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  auto& retries = common::MetricRegistry::Global()
                      .Counter("cluster.write_retries");
  const auto retries_before = retries.Value();
  ASSERT_TRUE((*cluster)->SetStalled(0, true));
  const serving::IngestPacket& packet = harness->plan.packets.front();
  clock.Set(packet.timestamp_s);
  EXPECT_EQ((*cluster)->Ingest(packet),
            serving::AdmitStatus::kRejectedQueueFull);
  EXPECT_EQ(retries.Value(), retries_before + 2);  // Budget exhausted.
  ASSERT_TRUE((*cluster)->SetStalled(0, false));
  (*cluster)->Shutdown();
}

TEST(Replication, StaleEpochReplicateIsTypedFence) {
  auto harness = MakeHarness(2, 1);
  ASSERT_TRUE(harness.ok()) << harness.status().ToString();
  auto pair = ConnectLinkPair(TransportConfig{});
  ASSERT_TRUE(pair.ok()) << pair.status().ToString();
  serving::ServingConfig serving;
  serving.workers = 1;
  serving.expected_anchors = harness->plan.expected_anchors;
  ShardHostOptions options;
  options.placement_epoch = 2;
  auto host = ShardHost::Create(harness->engine, serving,
                                std::move(pair->host_end), options);
  ASSERT_TRUE(host.ok()) << host.status().ToString();
  auto& stale = common::MetricRegistry::Global()
                    .Counter("cluster.placement.stale_epoch");
  const auto stale_before = stale.Value();

  serving::WireReplicate replicate;
  replicate.slot = 1;
  replicate.packet = harness->plan.packets.front();
  replicate.packet.kind = serving::PacketKind::kObservation;

  // A router that lost the failover race stamps the old epoch: typed
  // rejection, standby untouched.
  replicate.epoch = 1;
  EXPECT_EQ((*host)->ApplyReplicate(replicate),
            serving::AdmitStatus::kRejectedStaleEpoch);
  EXPECT_EQ(stale.Value(), stale_before + 1);
  EXPECT_EQ((*host)->StandbyStore().SessionCount(), 0u);

  // The current (or a newer) epoch applies.
  replicate.epoch = 2;
  EXPECT_EQ((*host)->ApplyReplicate(replicate),
            serving::AdmitStatus::kAccepted);
  EXPECT_TRUE(
      (*host)->StandbyStore().Contains(replicate.packet.object_id));
  pair->router_end->Close();
  (*host)->Stop();
}

TEST(Replication, ConcurrentIngestAfterCrashPromotesExactlyOnce) {
  // The tsan-checked race: several router-side callers all find the
  // primary dead at once (half-open probes included) — exactly one
  // promotion may happen, and every caller's packet must still land.
  auto harness = MakeHarness(4, 2);
  ASSERT_TRUE(harness.ok()) << harness.status().ToString();
  ClusterConfig config = ReplicatedConfig(*harness);
  config.shard_breaker.failure_threshold = 1;  // Trip on first failure.
  config.shard_breaker.base_backoff_s = 1e-4;  // Probe almost instantly.
  config.shard_breaker.max_backoff_s = 1e-3;
  serving::ManualClock clock;
  auto cluster = Cluster::Create(harness->engine, config, &clock);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  auto& registry = common::MetricRegistry::Global();
  const auto failovers_before = registry.Counter("cluster.failovers").Value();

  // Seed sessions so the promotion has something to move.
  Replay(
      *harness, clock,
      [&](const serving::IngestPacket& p) { (void)(*cluster)->Ingest(p); },
      [&](std::size_t) { (*cluster)->Flush(); });

  const std::size_t victim = (*cluster)->ShardOf(0);
  (*cluster)->Kill(victim, /*unclean=*/true);

  // Observations owned by the dead shard, raced from 4 threads.
  std::vector<serving::IngestPacket> victim_packets;
  for (const serving::IngestPacket& p : harness->plan.packets)
    if (p.kind == serving::PacketKind::kObservation &&
        (*cluster)->ShardOf(p.object_id) == victim)
      victim_packets.push_back(p);
  ASSERT_FALSE(victim_packets.empty());
  const double race_t =
      harness->plan.packets.back().timestamp_s + 1.0;
  clock.Set(race_t);
  for (serving::IngestPacket& p : victim_packets) {
    p.timestamp_s = race_t;
    p.deadline_s = race_t + 10.0;
  }

  std::atomic<std::size_t> accepted{0};
  std::vector<std::thread> threads;
  for (int thread_index = 0; thread_index < 4; ++thread_index) {
    threads.emplace_back([&, thread_index] {
      for (std::size_t k = std::size_t(thread_index);
           k < victim_packets.size(); k += 4)
        if ((*cluster)->Ingest(victim_packets[k]) ==
            serving::AdmitStatus::kAccepted)
          accepted.fetch_add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  (*cluster)->Flush();
  (*cluster)->Shutdown();

  EXPECT_EQ(registry.Counter("cluster.failovers").Value(),
            failovers_before + 1);  // Exactly one promotion.
  EXPECT_EQ(accepted.load(), victim_packets.size());  // Nothing dropped.
}

}  // namespace
}  // namespace nomloc::cluster
