#include "localization/deployment.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/stats.h"
#include "geometry/hull.h"

namespace nomloc::localization {
namespace {

using geometry::Polygon;
using geometry::Vec2;

DeploymentConfig FastConfig() {
  DeploymentConfig cfg;
  cfg.ap_count = 3;
  cfg.sample_points = 20;
  cfg.seed = 3;
  return cfg;
}

TEST(PerSampleCellErrors, OneErrorPerSample) {
  const std::vector<Polygon> parts{Polygon::Rectangle(0, 0, 10, 8)};
  const std::vector<Vec2> anchors{{1, 1}, {9, 1}, {5, 7}};
  const std::vector<Vec2> samples{{2, 2}, {8, 2}, {5, 5}};
  auto errors = PerSampleCellErrors(parts, anchors, samples);
  ASSERT_TRUE(errors.ok());
  EXPECT_EQ(errors->size(), 3u);
  for (double e : *errors) {
    EXPECT_GE(e, 0.0);
    EXPECT_LT(e, 12.0);
  }
}

TEST(PerSampleCellErrors, Validation) {
  const std::vector<Polygon> parts{Polygon::Rectangle(0, 0, 1, 1)};
  const std::vector<Vec2> anchors{{0.2, 0.2}, {0.8, 0.8}};
  EXPECT_FALSE(PerSampleCellErrors(parts, anchors, {}).ok());
  const std::vector<Vec2> one{{0.2, 0.2}};
  const std::vector<Vec2> samples{{0.5, 0.5}};
  EXPECT_FALSE(PerSampleCellErrors(parts, one, samples).ok());
}

TEST(OptimizeStaticDeployment, SelectsRequestedCount) {
  const Polygon room = Polygon::Rectangle(0, 0, 12, 8);
  const auto candidates = geometry::GridPointsIn(room, 3.0);
  ASSERT_GE(candidates.size(), 4u);
  auto result = OptimizeStaticDeployment(room, candidates, FastConfig());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->positions.size(), 3u);
  EXPECT_EQ(result->selected.size(), 3u);
  // Distinct selections.
  auto sel = result->selected;
  std::sort(sel.begin(), sel.end());
  EXPECT_EQ(std::unique(sel.begin(), sel.end()), sel.end());
  EXPECT_GT(result->objective_value_m, 0.0);
}

TEST(OptimizeStaticDeployment, MoreApsLowerObjective) {
  const Polygon room = Polygon::Rectangle(0, 0, 12, 8);
  const auto candidates = geometry::GridPointsIn(room, 2.5);
  DeploymentConfig small = FastConfig();
  small.ap_count = 2;
  DeploymentConfig big = FastConfig();
  big.ap_count = 5;
  auto r_small = OptimizeStaticDeployment(room, candidates, small);
  auto r_big = OptimizeStaticDeployment(room, candidates, big);
  ASSERT_TRUE(r_small.ok());
  ASSERT_TRUE(r_big.ok());
  EXPECT_LE(r_big->objective_value_m, r_small->objective_value_m + 1e-9);
}

TEST(OptimizeStaticDeployment, OptimizedBeatsClusteredLayout) {
  // Compare the optimizer's layout to a deliberately clustered one using
  // the same per-sample metric.
  const Polygon room = Polygon::Rectangle(0, 0, 12, 8);
  const auto candidates = geometry::GridPointsIn(room, 2.5);
  DeploymentConfig cfg = FastConfig();
  cfg.ap_count = 4;
  cfg.sample_points = 30;
  auto result = OptimizeStaticDeployment(room, candidates, cfg);
  ASSERT_TRUE(result.ok());

  const std::vector<Polygon> parts{room};
  common::Rng rng(99);
  std::vector<Vec2> samples;
  for (int i = 0; i < 30; ++i)
    samples.push_back({rng.Uniform(0.5, 11.5), rng.Uniform(0.5, 7.5)});
  const std::vector<Vec2> clustered{{1, 1}, {1.5, 1}, {1, 1.5}, {1.5, 1.5}};
  auto err_opt = PerSampleCellErrors(parts, result->positions, samples);
  auto err_clu = PerSampleCellErrors(parts, clustered, samples);
  ASSERT_TRUE(err_opt.ok());
  ASSERT_TRUE(err_clu.ok());
  EXPECT_LT(common::Mean(*err_opt), common::Mean(*err_clu));
}

TEST(OptimizeStaticDeployment, MaxObjectiveControlsWorstCase) {
  const Polygon room = Polygon::Rectangle(0, 0, 12, 8);
  const auto candidates = geometry::GridPointsIn(room, 3.0);
  DeploymentConfig cfg = FastConfig();
  cfg.ap_count = 4;
  cfg.objective = DeploymentObjective::kMaxError;
  auto result = OptimizeStaticDeployment(room, candidates, cfg);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->positions.size(), 4u);
}

TEST(OptimizeStaticDeployment, Validation) {
  const Polygon room = Polygon::Rectangle(0, 0, 4, 4);
  const std::vector<Vec2> candidates{{1, 1}, {3, 3}};
  DeploymentConfig cfg = FastConfig();
  cfg.ap_count = 1;
  EXPECT_FALSE(OptimizeStaticDeployment(room, candidates, cfg).ok());
  cfg.ap_count = 3;  // More than candidates.
  EXPECT_FALSE(OptimizeStaticDeployment(room, candidates, cfg).ok());
  cfg = FastConfig();
  cfg.ap_count = 2;
  cfg.sample_points = 0;
  EXPECT_FALSE(OptimizeStaticDeployment(room, candidates, cfg).ok());
}

TEST(OptimizeStaticDeployment, NonConvexArea) {
  auto l = Polygon::Create(
      {{0.0, 0.0}, {8.0, 0.0}, {8.0, 3.0}, {3.0, 3.0}, {3.0, 8.0}, {0.0, 8.0}});
  ASSERT_TRUE(l.ok());
  const auto candidates = geometry::GridPointsIn(*l, 2.0);
  DeploymentConfig cfg = FastConfig();
  cfg.ap_count = 3;
  auto result = OptimizeStaticDeployment(*l, candidates, cfg);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const Vec2 p : result->positions) EXPECT_TRUE(l->Contains(p));
}

}  // namespace
}  // namespace nomloc::localization
