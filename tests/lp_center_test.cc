#include "lp/center.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "geometry/polygon.h"

namespace nomloc::lp {
namespace {

using geometry::HalfPlane;
using geometry::Polygon;
using geometry::Vec2;

std::vector<HalfPlane> SquarePlanes(double x0, double y0, double x1,
                                    double y1) {
  return geometry::ToHalfPlanes(Polygon::Rectangle(x0, y0, x1, y1));
}

TEST(ChebyshevCenter, CenteredSquare) {
  const auto hps = SquarePlanes(0.0, 0.0, 4.0, 4.0);
  auto result = ChebyshevCenter(hps);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NEAR(result->center.x, 2.0, 1e-8);
  EXPECT_NEAR(result->center.y, 2.0, 1e-8);
  EXPECT_NEAR(result->radius, 2.0, 1e-8);
}

TEST(ChebyshevCenter, RectangleRadiusIsHalfShortSide) {
  const auto hps = SquarePlanes(0.0, 0.0, 10.0, 2.0);
  auto result = ChebyshevCenter(hps);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->radius, 1.0, 1e-8);
  EXPECT_NEAR(result->center.y, 1.0, 1e-8);
  // x can be anywhere in [1, 9]; just check feasibility.
  EXPECT_GE(result->center.x, 1.0 - 1e-7);
  EXPECT_LE(result->center.x, 9.0 + 1e-7);
}

TEST(ChebyshevCenter, Triangle345InradiusIsOne) {
  auto tri = Polygon::Create({{0.0, 0.0}, {4.0, 0.0}, {0.0, 3.0}});
  ASSERT_TRUE(tri.ok());
  auto result = ChebyshevCenter(geometry::ToHalfPlanes(*tri));
  ASSERT_TRUE(result.ok());
  // Inradius of a 3-4-5 right triangle = (3+4-5)/2 = 1, center (1,1).
  EXPECT_NEAR(result->radius, 1.0, 1e-8);
  EXPECT_NEAR(result->center.x, 1.0, 1e-8);
  EXPECT_NEAR(result->center.y, 1.0, 1e-8);
}

TEST(ChebyshevCenter, InfeasibleRegionFails) {
  std::vector<HalfPlane> hps{{{1.0, 0.0}, 0.0}, {{-1.0, 0.0}, -1.0}};
  const auto result = ChebyshevCenter(hps);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kInfeasible);
}

TEST(ChebyshevCenter, UnboundedInradiusFails) {
  // Single half-plane: inradius unbounded.
  std::vector<HalfPlane> hps{{{1.0, 0.0}, 0.0}};
  const auto result = ChebyshevCenter(hps);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kUnbounded);
}

TEST(ChebyshevCenter, ZeroNormalRejected) {
  std::vector<HalfPlane> hps{{{0.0, 0.0}, 1.0}};
  EXPECT_EQ(ChebyshevCenter(hps).status().code(),
            common::StatusCode::kInvalidArgument);
}

TEST(ChebyshevCenter, DegenerateRegionHasZeroRadius) {
  // x <= 1 and x >= 1: a line segment within the square.
  auto hps = SquarePlanes(0.0, 0.0, 2.0, 2.0);
  hps.push_back({{1.0, 0.0}, 1.0});
  hps.push_back({{-1.0, 0.0}, -1.0});
  auto result = ChebyshevCenter(hps);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->radius, 0.0, 1e-8);
  EXPECT_NEAR(result->center.x, 1.0, 1e-8);
}

TEST(AnalyticCenter, SquareCenterIsMiddle) {
  const auto hps = SquarePlanes(0.0, 0.0, 4.0, 4.0);
  auto result = AnalyticCenter(hps, {1.0, 1.0});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NEAR(result->x, 2.0, 1e-6);
  EXPECT_NEAR(result->y, 2.0, 1e-6);
}

TEST(AnalyticCenter, IndependentOfStartPoint) {
  const auto hps = SquarePlanes(0.0, 0.0, 6.0, 2.0);
  auto a = AnalyticCenter(hps, {0.5, 0.5});
  auto b = AnalyticCenter(hps, {5.5, 1.5});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR(a->x, b->x, 1e-5);
  EXPECT_NEAR(a->y, b->y, 1e-5);
}

TEST(AnalyticCenter, NonInteriorStartFails) {
  const auto hps = SquarePlanes(0.0, 0.0, 1.0, 1.0);
  EXPECT_EQ(AnalyticCenter(hps, {2.0, 0.5}).status().code(),
            common::StatusCode::kFailedPrecondition);
  // Exactly on the boundary is not strictly interior either.
  EXPECT_EQ(AnalyticCenter(hps, {0.0, 0.5}).status().code(),
            common::StatusCode::kFailedPrecondition);
}

TEST(AnalyticCenter, DuplicatedConstraintPullsCenter) {
  // Repeating the x <= 4 wall makes the barrier steeper there; the
  // analytic center shifts away from the duplicated facet.
  auto hps = SquarePlanes(0.0, 0.0, 4.0, 4.0);
  const std::size_t base = hps.size();
  auto shifted = hps;
  for (std::size_t i = 0; i < base; ++i) {
    if (shifted[i].a.x > 0.5) {  // The x <= 4 facet.
      shifted.push_back(shifted[i]);
      shifted.push_back(shifted[i]);
    }
  }
  auto plain = AnalyticCenter(hps, {2.0, 2.0});
  auto pulled = AnalyticCenter(shifted, {2.0, 2.0});
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(pulled.ok());
  EXPECT_LT(pulled->x, plain->x - 0.1);
}

// Property: the analytic center satisfies the stationarity condition
// sum a_i / s_i = 0 and stays strictly inside random convex regions.
TEST(AnalyticCenterProperty, StationaryAndInterior) {
  common::Rng rng(71);
  for (int trial = 0; trial < 30; ++trial) {
    // Random half-planes all containing the origin with margin.
    std::vector<HalfPlane> hps;
    const std::size_t m = 4 + rng.UniformInt(6);
    for (std::size_t i = 0; i < m; ++i) {
      const double ang = rng.UniformAngle();
      const Vec2 n{std::cos(ang), std::sin(ang)};
      hps.push_back({n, rng.Uniform(0.5, 3.0)});
    }
    // Ensure boundedness with a surrounding box.
    for (const HalfPlane& hp : SquarePlanes(-10, -10, 10, 10))
      hps.push_back(hp);

    auto center = AnalyticCenter(hps, {0.0, 0.0});
    ASSERT_TRUE(center.ok()) << center.status().ToString();
    double gx = 0.0, gy = 0.0;
    for (const HalfPlane& hp : hps) {
      const double s = hp.Slack(*center);
      ASSERT_GT(s, 0.0);
      gx += hp.a.x / s;
      gy += hp.a.y / s;
    }
    EXPECT_NEAR(gx, 0.0, 1e-4);
    EXPECT_NEAR(gy, 0.0, 1e-4);
  }
}

TEST(Centers, AgreeOnSymmetricRegion) {
  const auto hps = SquarePlanes(-1.0, -1.0, 1.0, 1.0);
  auto cheb = ChebyshevCenter(hps);
  auto ac = AnalyticCenter(hps, {0.1, -0.2});
  ASSERT_TRUE(cheb.ok());
  ASSERT_TRUE(ac.ok());
  EXPECT_NEAR(cheb->center.x, ac->x, 1e-5);
  EXPECT_NEAR(cheb->center.y, ac->y, 1e-5);
}

}  // namespace
}  // namespace nomloc::lp
