// Wire codec contract: bit-exact round-trips in both formats, typed
// kDataCorruption on truncation/bit-flips (with byte offsets, reusing the
// PR 5 corruption failure domain), and parse-failure accounting.
#include "serving/wire.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"

namespace nomloc::serving {
namespace {

std::uint64_t NextRandom(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t x = state;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double RandomDouble(std::uint64_t& state) {
  return double(NextRandom(state) >> 11) * 0x1.0p-53 * 1e3 - 500.0;
}

IngestPacket RandomPacket(std::uint64_t& state) {
  IngestPacket packet;
  if (NextRandom(state) % 4 == 0) {
    packet.kind = PacketKind::kQuery;
  } else {
    packet.kind = PacketKind::kObservation;
    packet.ap_id = int(NextRandom(state) % 64) - 32;
    packet.site_index = NextRandom(state) % 8;
    packet.is_nomadic = NextRandom(state) % 2 == 0;
    packet.reported_position = {RandomDouble(state), RandomDouble(state)};
    packet.pdp = std::abs(RandomDouble(state)) + 1e-9;
    packet.weight = double(NextRandom(state) % 20 + 1);
  }
  packet.object_id = NextRandom(state) % (1ull << 48);
  packet.timestamp_s = std::abs(RandomDouble(state));
  packet.deadline_s = NextRandom(state) % 3 == 0
                          ? std::numeric_limits<double>::infinity()
                          : packet.timestamp_s + 1.0;
  return packet;
}

bool BitEqual(const IngestPacket& a, const IngestPacket& b) {
  auto same = [](double x, double y) {
    return std::memcmp(&x, &y, sizeof(double)) == 0;
  };
  if (a.kind != b.kind || a.object_id != b.object_id) return false;
  if (!same(a.timestamp_s, b.timestamp_s) ||
      !same(a.deadline_s, b.deadline_s))
    return false;
  if (a.kind == PacketKind::kQuery) return true;
  return a.ap_id == b.ap_id && a.site_index == b.site_index &&
         a.is_nomadic == b.is_nomadic &&
         same(a.reported_position.x, b.reported_position.x) &&
         same(a.reported_position.y, b.reported_position.y) &&
         same(a.pdp, b.pdp) && same(a.weight, b.weight);
}

std::vector<IngestPacket> RandomStream(std::size_t n, std::uint64_t seed) {
  std::uint64_t state = seed;
  std::vector<IngestPacket> packets;
  packets.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    packets.push_back(RandomPacket(state));
  return packets;
}

TEST(WireBinary, RandomizedRoundTripBitEqual) {
  const auto packets = RandomStream(500, 11);
  const std::string bytes = EncodeWireBinary(packets);
  auto decoded = DecodeWireBinary(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i)
    EXPECT_TRUE(BitEqual(packets[i], (*decoded)[i])) << "packet " << i;
}

TEST(WireJson, RandomizedRoundTripBitEqual) {
  const auto packets = RandomStream(200, 23);
  const std::string text = EncodeWireJson(packets);
  auto decoded = DecodeWireJson(text);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i)
    EXPECT_TRUE(BitEqual(packets[i], (*decoded)[i])) << "packet " << i;
}

TEST(WireBinary, FrameSizesMatchSpec) {
  IngestPacket obs;
  obs.kind = PacketKind::kObservation;
  IngestPacket query;
  query.kind = PacketKind::kQuery;
  EXPECT_EQ(EncodeWireBinary({&obs, 1}).size(),
            kWireHeaderBytes + kWireObservationBytes);
  EXPECT_EQ(EncodeWireBinary({&query, 1}).size(),
            kWireHeaderBytes + kWireQueryBytes);
}

TEST(WireBinary, InfiniteDeadlineSurvives) {
  IngestPacket packet;
  packet.kind = PacketKind::kQuery;
  packet.deadline_s = std::numeric_limits<double>::infinity();
  auto decoded = DecodeWireBinary(EncodeWireBinary({&packet, 1}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(std::isinf((*decoded)[0].deadline_s));
}

TEST(WireJson, InfiniteDeadlineOmittedAndRestored) {
  IngestPacket packet;
  packet.kind = PacketKind::kQuery;
  packet.deadline_s = std::numeric_limits<double>::infinity();
  const std::string text = EncodeWireJson({&packet, 1});
  EXPECT_EQ(text.find("deadline"), std::string::npos);
  auto decoded = DecodeWireJson(text);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(std::isinf((*decoded)[0].deadline_s));
}

TEST(WireBinary, TruncationIsDataCorruptionWithOffset) {
  const auto packets = RandomStream(8, 31);
  const std::string bytes = EncodeWireBinary(packets);
  // Every strict prefix that cuts into a frame must fail as corruption
  // (never crash, never return a short stream silently).
  for (std::size_t cut : {bytes.size() - 1, bytes.size() - 5,
                          kWireHeaderBytes + 1, std::size_t{2}}) {
    auto decoded = DecodeWireBinary(std::string_view(bytes).substr(0, cut));
    ASSERT_FALSE(decoded.ok()) << "cut at " << cut;
    EXPECT_EQ(decoded.status().code(), common::StatusCode::kDataCorruption);
    EXPECT_NE(decoded.status().message().find("at offset"),
              std::string::npos);
  }
}

TEST(WireBinary, BitFlipFuzzAlwaysTyped) {
  const auto packets = RandomStream(16, 47);
  const std::string bytes = EncodeWireBinary(packets);
  std::uint64_t rng = 5;
  std::size_t rejected = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::string corrupted = bytes;
    const std::size_t where = NextRandom(rng) % corrupted.size();
    corrupted[where] ^= char(1 << (NextRandom(rng) % 8));
    auto decoded = DecodeWireBinary(corrupted);
    if (!decoded.ok()) {
      // Any failure must be the typed corruption domain (or version).
      EXPECT_TRUE(decoded.status().code() ==
                      common::StatusCode::kDataCorruption ||
                  decoded.status().code() ==
                      common::StatusCode::kInvalidArgument)
          << decoded.status().ToString();
      ++rejected;
    }
  }
  // The checksum must catch essentially every flip (a flip in a frame
  // body always breaks FNV-1a; only a flip inside a checksum field that
  // happens to match would slip, which cannot happen for single flips).
  EXPECT_GT(rejected, 190u);
}

TEST(WireBinary, BadMagicAndVersionTyped) {
  const auto packets = RandomStream(2, 3);
  std::string bytes = EncodeWireBinary(packets);
  {
    std::string bad = bytes;
    bad[0] = 'X';
    auto decoded = DecodeWireBinary(bad);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), common::StatusCode::kDataCorruption);
  }
  {
    std::string bad = bytes;
    bad[3] = char(kWireVersion + 1);
    auto decoded = DecodeWireBinary(bad);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(),
              common::StatusCode::kInvalidArgument);
  }
}

TEST(WireJson, GarbageLineIsDataCorruptionWithLineNumber) {
  const auto packets = RandomStream(3, 13);
  std::string text = EncodeWireJson(packets);
  text += "{not json\n";
  auto decoded = DecodeWireJson(text);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), common::StatusCode::kDataCorruption);
  EXPECT_NE(decoded.status().message().find("line 4"), std::string::npos);
}

TEST(Wire, ParseFailuresCounterIncrements) {
  auto& counter = common::MetricRegistry::Global().Counter(
      "serving.wire.parse_failures");
  const auto before = counter.Value();
  (void)DecodeWireBinary("garbage");
  (void)DecodeWireJson("also garbage\n");
  EXPECT_EQ(counter.Value(), before + 2);
}

TEST(Wire, FormatNamesRoundTrip) {
  EXPECT_EQ(WireFormatName(WireFormat::kBinary), "binary");
  EXPECT_EQ(WireFormatName(WireFormat::kJson), "json");
  ASSERT_TRUE(ParseWireFormatName("binary").ok());
  ASSERT_TRUE(ParseWireFormatName("json").ok());
  EXPECT_FALSE(ParseWireFormatName("msgpack").ok());
}

}  // namespace
}  // namespace nomloc::serving
