// Transport contract: ordered byte streams, whole-frame writes, typed
// loopback backpressure, deterministic stall windows, EOF on close with
// buffered bytes drained first, and socket round-trips.
#include "cluster/transport.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace nomloc::cluster {
namespace {

TEST(Transport, NamesRoundTrip) {
  for (TransportKind kind : {TransportKind::kLoopback,
                             TransportKind::kUnixSocket,
                             TransportKind::kTcpSocket}) {
    auto parsed = ParseTransportKindName(TransportKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(ParseTransportKindName("carrier-pigeon").ok());
}

TEST(Transport, ConfigValidates) {
  TransportConfig config;
  EXPECT_TRUE(config.Validate().ok());
  config.loopback_capacity_bytes = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(LoopbackTransport, BytesFlowBothWays) {
  TransportConfig config;
  auto pair = ConnectLinkPair(config);
  ASSERT_TRUE(pair.ok());
  ASSERT_EQ(pair->router_end->Write("ping"), LinkWrite::kOk);
  std::string got;
  EXPECT_EQ(pair->host_end->Read(got), 4u);
  EXPECT_EQ(got, "ping");
  ASSERT_EQ(pair->host_end->Write("pong!"), LinkWrite::kOk);
  got.clear();
  EXPECT_EQ(pair->router_end->Read(got), 5u);
  EXPECT_EQ(got, "pong!");
}

TEST(LoopbackTransport, BackpressureIsTypedAndAllOrNothing) {
  TransportConfig config;
  config.loopback_capacity_bytes = 8;
  auto pair = ConnectLinkPair(config);
  ASSERT_TRUE(pair.ok());
  ASSERT_EQ(pair->router_end->Write("12345678"), LinkWrite::kOk);
  // At capacity: the next write is rejected whole, not truncated.
  EXPECT_EQ(pair->router_end->Write("x"), LinkWrite::kBackpressure);
  std::string got;
  EXPECT_EQ(pair->host_end->Read(got), 8u);
  EXPECT_EQ(got, "12345678");
  // Drained: writes flow again.
  EXPECT_EQ(pair->router_end->Write("x"), LinkWrite::kOk);
}

TEST(LoopbackTransport, StallStarvesThePeerDeterministically) {
  TransportConfig config;
  auto pair = ConnectLinkPair(config);
  ASSERT_TRUE(pair.ok());
  ASSERT_TRUE(pair->router_end->SetStalled(true));
  ASSERT_EQ(pair->router_end->Write("held"), LinkWrite::kOk);
  // The peer's reader blocks while stalled; unstall releases the bytes.
  std::string got;
  std::thread reader([&] { EXPECT_EQ(pair->host_end->Read(got), 4u); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(pair->router_end->SetStalled(false));
  reader.join();
  EXPECT_EQ(got, "held");
}

TEST(LoopbackTransport, CloseDrainsBufferedBytesThenEof) {
  TransportConfig config;
  auto pair = ConnectLinkPair(config);
  ASSERT_TRUE(pair.ok());
  ASSERT_EQ(pair->router_end->Write("tail"), LinkWrite::kOk);
  pair->router_end->Close();
  // SHUT_WR semantics: bytes written before the close still arrive...
  std::string got;
  EXPECT_EQ(pair->host_end->Read(got), 4u);
  EXPECT_EQ(got, "tail");
  // ...then the stream ends, and writes in either direction fail typed.
  got.clear();
  EXPECT_EQ(pair->host_end->Read(got), 0u);
  EXPECT_EQ(pair->host_end->Write("x"), LinkWrite::kClosed);
  EXPECT_EQ(pair->router_end->Write("x"), LinkWrite::kClosed);
}

TEST(LoopbackTransport, CloseWakesABlockedReader) {
  TransportConfig config;
  auto pair = ConnectLinkPair(config);
  ASSERT_TRUE(pair.ok());
  std::thread reader([&] {
    std::string got;
    EXPECT_EQ(pair->host_end->Read(got), 0u);  // EOF, not a hang.
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  pair->router_end->Close();
  reader.join();
}

class SocketTransportTest : public ::testing::TestWithParam<TransportKind> {};

TEST_P(SocketTransportTest, RoundTripAndEof) {
  TransportConfig config;
  config.kind = GetParam();
  auto pair = ConnectLinkPair(config);
  ASSERT_TRUE(pair.ok()) << pair.status().ToString();
  // Sockets cannot stall (the chaos hook is loopback-only).
  EXPECT_FALSE(pair->router_end->SetStalled(true));

  const std::string payload(100000, 'z');  // Multiple kernel buffers.
  std::string got;
  std::thread reader([&] {
    std::string chunk;
    while (got.size() < payload.size()) {
      chunk.clear();
      const std::size_t n = pair->host_end->Read(chunk);
      if (n == 0) break;
      got += chunk;
    }
  });
  ASSERT_EQ(pair->router_end->Write(payload), LinkWrite::kOk);
  reader.join();
  EXPECT_EQ(got, payload);

  pair->router_end->Close();
  std::string after;
  EXPECT_EQ(pair->host_end->Read(after), 0u);
  // Writes into a dead peer end up kClosed.  TCP may accept one send
  // into the kernel buffer before the reset comes back, so poll.
  LinkWrite write = LinkWrite::kOk;
  for (int i = 0; i < 200 && write != LinkWrite::kClosed; ++i) {
    write = pair->host_end->Write("x");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(write, LinkWrite::kClosed);
}

INSTANTIATE_TEST_SUITE_P(Sockets, SocketTransportTest,
                         ::testing::Values(TransportKind::kUnixSocket,
                                           TransportKind::kTcpSocket),
                         [](const auto& info) {
                           return std::string(TransportKindName(info.param));
                         });

}  // namespace
}  // namespace nomloc::cluster
