#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace nomloc::common {
namespace {

TEST(SplitMix, IsDeterministic) {
  std::uint64_t s1 = 42, s2 = 42;
  EXPECT_EQ(SplitMix64(s1), SplitMix64(s2));
  EXPECT_EQ(s1, s2);
}

TEST(SplitMix, AdvancesState) {
  std::uint64_t s = 42;
  const auto a = SplitMix64(s);
  const auto b = SplitMix64(s);
  EXPECT_NE(a, b);
}

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, ZeroSeedWorks) {
  Rng r(0);
  std::set<std::uint64_t> values;
  for (int i = 0; i < 50; ++i) values.insert(r());
  EXPECT_GT(values.size(), 45u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng r(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.Uniform(-3.0, 2.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 2.0);
  }
}

TEST(Rng, UniformDegenerateRange) {
  Rng r(5);
  EXPECT_DOUBLE_EQ(r.Uniform(4.0, 4.0), 4.0);
}

TEST(Rng, UniformInvalidRangeThrows) {
  Rng r(5);
  EXPECT_THROW(r.Uniform(2.0, 1.0), std::logic_error);
}

TEST(Rng, UniformIntWithinRange) {
  Rng r(13);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.UniformInt(17), 17u);
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng r(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.UniformInt(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformIntOneIsAlwaysZero) {
  Rng r(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.UniformInt(1), 0u);
}

TEST(Rng, UniformIntZeroThrows) {
  Rng r(3);
  EXPECT_THROW(r.UniformInt(0), std::logic_error);
}

TEST(Rng, GaussianMomentsMatch) {
  Rng r(17);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = r.Gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, GaussianWithParams) {
  Rng r(19);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += r.Gaussian(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, GaussianNegativeSigmaThrows) {
  Rng r(19);
  EXPECT_THROW(r.Gaussian(0.0, -1.0), std::logic_error);
}

TEST(Rng, ComplexGaussianPowerMatchesVariance) {
  Rng r(23);
  const int n = 100000;
  double power = 0.0;
  for (int i = 0; i < n; ++i) power += std::norm(r.ComplexGaussian(3.0));
  EXPECT_NEAR(power / n, 3.0, 0.1);
}

TEST(Rng, ComplexGaussianZeroVarianceIsZero) {
  Rng r(23);
  EXPECT_EQ(r.ComplexGaussian(0.0), std::complex<double>(0.0, 0.0));
}

TEST(Rng, UniformDiscStaysInside) {
  Rng r(29);
  for (int i = 0; i < 10000; ++i) {
    const auto [x, y] = r.UniformDisc(2.5);
    EXPECT_LE(std::hypot(x, y), 2.5 + 1e-12);
  }
}

TEST(Rng, UniformDiscZeroRadius) {
  Rng r(29);
  const auto [x, y] = r.UniformDisc(0.0);
  EXPECT_EQ(x, 0.0);
  EXPECT_EQ(y, 0.0);
}

TEST(Rng, UniformDiscIsAreaUniform) {
  // Half the samples should land within r/sqrt(2) of the center.
  Rng r(31);
  const int n = 50000;
  int inner = 0;
  for (int i = 0; i < n; ++i) {
    const auto [x, y] = r.UniformDisc(1.0);
    if (std::hypot(x, y) < 1.0 / std::sqrt(2.0)) ++inner;
  }
  EXPECT_NEAR(double(inner) / n, 0.5, 0.01);
}

TEST(Rng, BernoulliExtremes) {
  Rng r(37);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.Bernoulli(0.0));
    EXPECT_TRUE(r.Bernoulli(1.0));
    EXPECT_FALSE(r.Bernoulli(-0.5));
    EXPECT_TRUE(r.Bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng r(41);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i)
    if (r.Bernoulli(0.3)) ++hits;
  EXPECT_NEAR(double(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng r(43);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += r.Exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, ExponentialNonPositiveMeanThrows) {
  Rng r(43);
  EXPECT_THROW(r.Exponential(0.0), std::logic_error);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng r(47);
  const double w[] = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[r.Categorical(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(double(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(double(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, CategoricalSingleElement) {
  Rng r(53);
  const double w[] = {2.0};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.Categorical(w), 0u);
}

TEST(Rng, CategoricalAllZeroThrows) {
  Rng r(53);
  const double w[] = {0.0, 0.0};
  EXPECT_THROW(r.Categorical(w), std::logic_error);
}

TEST(Rng, CategoricalNegativeWeightThrows) {
  Rng r(53);
  const double w[] = {0.5, -0.1};
  EXPECT_THROW(r.Categorical(w), std::logic_error);
}

TEST(Rng, ForkedStreamsAreIndependentAndDeterministic) {
  Rng parent1(99), parent2(99);
  Rng a = parent1.Fork(1);
  Rng b = parent2.Fork(1);
  Rng c = parent1.Fork(2);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a(), b());
  int same = 0;
  Rng a2 = parent2.Fork(1);
  for (int i = 0; i < 50; ++i)
    if (a2() == c()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, ShufflePreservesElements) {
  Rng r(61);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  r.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng r(67);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[std::size_t(i)] = i;
  const auto original = v;
  r.Shuffle(v);
  EXPECT_NE(v, original);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
}  // namespace nomloc::common
