#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "common/status.h"

namespace nomloc::common {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) pool.Submit([&] { ++counter; });
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ZeroThreadsThrows) {
  EXPECT_THROW(ThreadPool(0), std::logic_error);
}

TEST(ThreadPool, NullTaskThrows) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.Submit(nullptr), std::logic_error);
}

TEST(ThreadPool, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();
  SUCCEED();
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.ParallelFor(64, [&](std::size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroCountIsNoOp) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](std::size_t) { FAIL(); });
  SUCCEED();
}

TEST(ThreadPool, TaskExceptionRethrownFromWait) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The pool remains usable afterwards.
  std::atomic<int> counter{0};
  pool.Submit([&] { ++counter; });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(32,
                                [](std::size_t i) {
                                  if (i == 7)
                                    throw std::runtime_error("seven");
                                }),
               std::runtime_error);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.Submit([&] { ++counter; });
    // No Wait(): destructor must finish the queue before joining.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, SingleThreadPoolIsSequentialButComplete) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) pool.Submit([&order, i] { order.push_back(i); });
  pool.Wait();
  // One worker: FIFO execution.
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, ParallelForChunkedCoversAwkwardCounts) {
  // ParallelFor batches indices into ~4x ThreadCount grains; counts below,
  // at, and just past the grain boundary must all cover every index
  // exactly once.
  ThreadPool pool(3);  // 12 grains
  for (std::size_t count : {std::size_t(1), std::size_t(5), std::size_t(11),
                            std::size_t(12), std::size_t(13),
                            std::size_t(97)}) {
    std::vector<std::atomic<int>> hits(count);
    pool.ParallelFor(count, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < count; ++i)
      EXPECT_EQ(hits[i].load(), 1) << "count=" << count << " i=" << i;
  }
}

TEST(ThreadPool, ParallelForExceptionDoesNotAbortOtherIndices) {
  // A throwing index surfaces from ParallelFor, but the remaining indices
  // still run (the grain finishes its range before rethrowing, and other
  // grains are unaffected) — callers can rely on partial results being
  // complete outside the failed index.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  EXPECT_THROW(pool.ParallelFor(64,
                                [&](std::size_t i) {
                                  if (i == 31)
                                    throw std::runtime_error("thirty-one");
                                  ++hits[i];
                                }),
               std::runtime_error);
  for (std::size_t i = 0; i < 64; ++i) {
    if (i == 31) continue;
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPool, TrySubmitRunsLikeSubmit) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 20; ++i)
    ASSERT_TRUE(pool.TrySubmit([&] { ++counter; }).ok());
  pool.Wait();
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, TrySubmitAfterShutdownReturnsTypedError) {
  ThreadPool pool(2);
  pool.Shutdown();
  std::atomic<int> counter{0};
  const Status status = pool.TrySubmit([&] { ++counter; });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(counter.load(), 0);  // Rejected tasks never run.
}

TEST(ThreadPool, ShutdownDrainsPendingTasksAndIsIdempotent) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) pool.Submit([&] { ++counter; });
  pool.Shutdown();
  EXPECT_EQ(counter.load(), 50);
  pool.Shutdown();  // Second call must be a no-op (no double join).
  EXPECT_FALSE(pool.TrySubmit([] {}).ok());
}

TEST(ThreadPool, TrySubmitRacingShutdownIsRejectedOrRuns) {
  // The shutdown-ordering regression: a producer submitting while the
  // pool shuts down must see every task either accepted (and executed
  // before the workers join) or rejected with the typed error —
  // accepted-but-never-run and crashes are both bugs.  The race targets
  // Shutdown(), not the destructor: a producer that has not yet been
  // rejected will call TrySubmit again, so racing destruction itself
  // would touch a dead object no matter how the pool orders its
  // teardown (the destructor is Shutdown() plus member teardown, so the
  // ordering logic under test is the same).  Run under TSan via the
  // sanitized build.
  std::atomic<int> executed{0};
  std::atomic<int> accepted{0};
  std::atomic<bool> producer_started{false};
  ThreadPool pool(2);
  std::thread producer([&] {
    producer_started = true;
    for (;;) {
      const Status status = pool.TrySubmit([&] { ++executed; });
      if (!status.ok()) {
        EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
        return;
      }
      ++accepted;
    }
  });
  while (!producer_started) std::this_thread::yield();
  pool.Shutdown();  // races the producer's TrySubmit loop
  producer.join();
  EXPECT_EQ(executed.load(), accepted.load());
}

TEST(ThreadPool, ParallelSumMatchesSequential) {
  ThreadPool pool(8);
  std::vector<long> partial(1000, 0);
  pool.ParallelFor(1000, [&](std::size_t i) {
    partial[i] = long(i) * long(i);
  });
  long total = std::accumulate(partial.begin(), partial.end(), 0L);
  long expected = 0;
  for (long i = 0; i < 1000; ++i) expected += i * i;
  EXPECT_EQ(total, expected);
}

}  // namespace
}  // namespace nomloc::common
