#include "lp/matrix.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace nomloc::lp {
namespace {

TEST(Matrix, ZeroInitialised) {
  const Matrix m(2, 3);
  EXPECT_EQ(m.Rows(), 2u);
  EXPECT_EQ(m.Cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_EQ(m(r, c), 0.0);
}

TEST(Matrix, FromRowMajorData) {
  const Matrix m(2, 2, {1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(m(0, 0), 1.0);
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
  EXPECT_EQ(m(1, 1), 4.0);
}

TEST(Matrix, SizeMismatchThrows) {
  EXPECT_THROW(Matrix(2, 2, {1.0}), std::logic_error);
}

TEST(Matrix, OutOfBoundsThrows) {
  Matrix m(2, 2);
  EXPECT_THROW(m(2, 0), std::logic_error);
  EXPECT_THROW(m(0, 2), std::logic_error);
}

TEST(Matrix, Identity) {
  const Matrix id = Matrix::Identity(3);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_EQ(id(r, c), r == c ? 1.0 : 0.0);
}

TEST(Matrix, RowSpanReadsAndWrites) {
  Matrix m(2, 3);
  auto row = m.Row(1);
  row[2] = 5.0;
  EXPECT_EQ(m(1, 2), 5.0);
  const Matrix& cm = m;
  EXPECT_EQ(cm.Row(1)[2], 5.0);
}

TEST(Matrix, Transposed) {
  const Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix t = m.Transposed();
  EXPECT_EQ(t.Rows(), 3u);
  EXPECT_EQ(t.Cols(), 2u);
  EXPECT_EQ(t(0, 1), 4.0);
  EXPECT_EQ(t(2, 0), 3.0);
}

TEST(Matrix, MatVec) {
  const Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  const Vector x{1.0, 0.0, -1.0};
  const Vector y = m.MatVec(x);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
}

TEST(Matrix, MatVecSizeMismatchThrows) {
  const Matrix m(2, 3);
  EXPECT_THROW(m.MatVec(Vector{1.0, 2.0}), std::logic_error);
}

TEST(Matrix, TransposedMatVec) {
  const Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  const Vector y{1.0, 1.0};
  const Vector x = m.TransposedMatVec(y);
  ASSERT_EQ(x.size(), 3u);
  EXPECT_DOUBLE_EQ(x[0], 5.0);
  EXPECT_DOUBLE_EQ(x[1], 7.0);
  EXPECT_DOUBLE_EQ(x[2], 9.0);
}

TEST(Matrix, MatMul) {
  const Matrix a(2, 2, {1, 2, 3, 4});
  const Matrix b(2, 2, {0, 1, 1, 0});
  const Matrix c = a.MatMul(b);
  EXPECT_EQ(c(0, 0), 2.0);
  EXPECT_EQ(c(0, 1), 1.0);
  EXPECT_EQ(c(1, 0), 4.0);
  EXPECT_EQ(c(1, 1), 3.0);
}

TEST(Matrix, MatMulIdentityIsNoOp) {
  const Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix c = Matrix::Identity(2).MatMul(a);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t col = 0; col < 3; ++col)
      EXPECT_EQ(c(r, col), a(r, col));
}

TEST(Matrix, AppendRow) {
  Matrix m;
  const double r1[] = {1.0, 2.0};
  const double r2[] = {3.0, 4.0};
  m.AppendRow(r1);
  m.AppendRow(r2);
  EXPECT_EQ(m.Rows(), 2u);
  EXPECT_EQ(m.Cols(), 2u);
  EXPECT_EQ(m(1, 0), 3.0);
}

TEST(Matrix, AppendRowWrongWidthThrows) {
  Matrix m(1, 3);
  const double r[] = {1.0, 2.0};
  EXPECT_THROW(m.AppendRow(r), std::logic_error);
}

TEST(SolveLinear, SolvesKnownSystem) {
  // 2x + y = 5; x - y = 1  =>  x = 2, y = 1.
  const Matrix a(2, 2, {2, 1, 1, -1});
  auto x = SolveLinear(a, {5.0, 1.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 2.0, 1e-12);
  EXPECT_NEAR((*x)[1], 1.0, 1e-12);
}

TEST(SolveLinear, NeedsPivoting) {
  // Zero on the diagonal forces a row swap.
  const Matrix a(2, 2, {0, 1, 1, 0});
  auto x = SolveLinear(a, {3.0, 7.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 7.0, 1e-12);
  EXPECT_NEAR((*x)[1], 3.0, 1e-12);
}

TEST(SolveLinear, SingularFails) {
  const Matrix a(2, 2, {1, 2, 2, 4});
  const auto x = SolveLinear(a, {1.0, 2.0});
  EXPECT_FALSE(x.ok());
  EXPECT_EQ(x.status().code(), common::StatusCode::kNumericalError);
}

TEST(SolveLinear, NonSquareFails) {
  const Matrix a(2, 3);
  EXPECT_FALSE(SolveLinear(a, {1.0, 2.0}).ok());
}

TEST(SolveLinear, RhsSizeMismatchFails) {
  const Matrix a(2, 2, {1, 0, 0, 1});
  EXPECT_FALSE(SolveLinear(a, {1.0}).ok());
}

TEST(SolveLinearProperty, RandomSystemsRoundTrip) {
  common::Rng rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 2 + rng.UniformInt(6);
    Matrix a(n, n);
    Vector x_true(n);
    for (std::size_t r = 0; r < n; ++r) {
      x_true[r] = rng.Uniform(-5, 5);
      for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.Uniform(-5, 5);
      a(r, r) += 10.0;  // Diagonally dominant: well conditioned.
    }
    const Vector b = a.MatVec(x_true);
    auto x = SolveLinear(a, b);
    ASSERT_TRUE(x.ok());
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR((*x)[i], x_true[i], 1e-8);
  }
}

TEST(VectorOps, Norm2AndDot) {
  const Vector a{3.0, 4.0};
  const Vector b{1.0, -1.0};
  EXPECT_DOUBLE_EQ(Norm2(a), 5.0);
  EXPECT_DOUBLE_EQ(Dot(a, b), -1.0);
  EXPECT_THROW(Dot(a, Vector{1.0}), std::logic_error);
}

}  // namespace
}  // namespace nomloc::lp
