#include "lp/incremental.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "lp/simplex.h"

namespace nomloc::lp {
namespace {

using Term = RelaxationSolver::Term;

// Reference: the same relaxation program in inequality form, solved from
// scratch by the two-phase simplex.  Variables [zx, zy, t_0 .. t_{m-1}],
// rows a_r·z - t_r <= b_r over the active terms only.
struct Reference {
  double zx = 0.0;
  double zy = 0.0;
  double objective = 0.0;
};

Reference SolveFromScratch(const std::vector<Term>& terms,
                           const std::vector<bool>& active) {
  std::size_t m = 0;
  for (std::size_t r = 0; r < terms.size(); ++r)
    if (active.empty() || active[r]) ++m;
  InequalityLp lp;
  lp.a = Matrix(m, 2 + m);
  lp.b.assign(m, 0.0);
  lp.c.assign(2 + m, 0.0);
  lp.nonneg.assign(2 + m, true);
  lp.nonneg[0] = lp.nonneg[1] = false;
  std::size_t i = 0;
  for (std::size_t r = 0; r < terms.size(); ++r) {
    if (!active.empty() && !active[r]) continue;
    lp.a(i, 0) = terms[r].ax;
    lp.a(i, 1) = terms[r].ay;
    lp.a(i, 2 + i) = -1.0;
    lp.b[i] = terms[r].b;
    lp.c[2 + i] = terms[r].w;
    ++i;
  }
  auto sol = SolveSimplex(lp);
  EXPECT_TRUE(sol.ok()) << sol.status().ToString();
  Reference out;
  if (sol.ok()) {
    out.zx = sol->x[0];
    out.zy = sol->x[1];
    out.objective = sol->objective;
  }
  return out;
}

Term RandomTerm(common::Rng& rng) {
  // Random normalized half-plane through a point near the origin, as the
  // SP constraint builder produces.
  const double angle = rng.UniformAngle();
  Term t;
  t.ax = std::cos(angle);
  t.ay = std::sin(angle);
  t.b = rng.Uniform(-3.0, 6.0);
  t.w = rng.Bernoulli(0.2) ? 100.0 : rng.Uniform(0.5, 2.0);
  return t;
}

// A frame the solver can never escape: |zx|,|zy| <= 10 with the boundary
// weight the SP program uses, so every reference program is bounded.
std::vector<Term> BoxTerms() {
  return {{1.0, 0.0, 10.0, 100.0},
          {-1.0, 0.0, 10.0, 100.0},
          {0.0, 1.0, 10.0, 100.0},
          {0.0, -1.0, 10.0, 100.0}};
}

TEST(RelaxationSolver, FeasibleProgramHasZeroObjective) {
  // Unit box around the origin: z = 0 satisfies everything, t = 0.
  RelaxationSolver solver;
  std::vector<Term> terms = BoxTerms();
  auto st = solver.Reset(terms);
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  EXPECT_NEAR(solver.Objective(), 0.0, 1e-9);
  EXPECT_EQ(solver.ActiveRows(), 4u);
}

TEST(RelaxationSolver, InfeasibleRowIsRelaxedByWeight) {
  // zx <= -1 and -zx <= -1 conflict; the cheaper row should take all the
  // relaxation: t = 2 on the weight-1 row, objective 2.
  std::vector<Term> terms = {{1.0, 0.0, -1.0, 1.0}, {-1.0, 0.0, -1.0, 5.0}};
  RelaxationSolver solver;
  ASSERT_TRUE(solver.Reset(terms).ok());
  const Reference ref = SolveFromScratch(terms, {});
  EXPECT_NEAR(solver.Objective(), ref.objective, 1e-8);
  EXPECT_NEAR(solver.Objective(), 2.0, 1e-8);
  EXPECT_NEAR(solver.RelaxationOf(0), 2.0, 1e-8);
  EXPECT_NEAR(solver.RelaxationOf(1), 0.0, 1e-8);
}

TEST(RelaxationSolver, AddTermsMatchesScratchSolve) {
  common::Rng rng(42);
  RelaxationSolver solver;
  std::vector<Term> terms = BoxTerms();
  ASSERT_TRUE(solver.Reset(terms).ok());
  for (int step = 0; step < 40; ++step) {
    std::vector<Term> batch;
    const std::size_t count = 1 + rng.UniformInt(3);
    for (std::size_t i = 0; i < count; ++i) batch.push_back(RandomTerm(rng));
    auto st = solver.AddTerms(batch);
    ASSERT_TRUE(st.ok()) << "step " << step << ": " << st.status().ToString();
    terms.insert(terms.end(), batch.begin(), batch.end());
    const Reference ref = SolveFromScratch(terms, {});
    EXPECT_NEAR(solver.Objective(), ref.objective, 1e-6)
        << "step " << step << " rows " << terms.size();
  }
}

TEST(RelaxationSolver, DeactivateMatchesScratchSolve) {
  common::Rng rng(7);
  RelaxationSolver solver;
  std::vector<Term> terms = BoxTerms();
  for (int i = 0; i < 24; ++i) terms.push_back(RandomTerm(rng));
  ASSERT_TRUE(solver.Reset(terms).ok());
  std::vector<bool> active(terms.size(), true);
  // Retire the non-box rows a few at a time, oldest first (the decay
  // pattern the session layer produces).
  for (std::size_t next = 4; next + 2 <= terms.size(); next += 2) {
    const std::size_t rows[] = {next, next + 1};
    auto st = solver.Deactivate(rows);
    ASSERT_TRUE(st.ok()) << st.status().ToString();
    active[next] = active[next + 1] = false;
    const Reference ref = SolveFromScratch(terms, active);
    EXPECT_NEAR(solver.Objective(), ref.objective, 1e-6)
        << "after deactivating " << next + 1;
    EXPECT_EQ(solver.DeactivatedRows(), next - 2);
  }
}

TEST(RelaxationSolver, InterleavedAddAndDecaySchedule) {
  for (std::uint64_t seed : {1ull, 9ull, 1234ull}) {
    common::Rng rng(seed);
    RelaxationSolver solver;
    std::vector<Term> terms = BoxTerms();
    ASSERT_TRUE(solver.Reset(terms).ok());
    std::vector<bool> active(terms.size(), true);
    std::size_t oldest = 4;  // Never retire the box.
    for (int step = 0; step < 60; ++step) {
      if (rng.Bernoulli(0.6) || oldest >= terms.size()) {
        std::vector<Term> batch;
        const std::size_t count = 1 + rng.UniformInt(2);
        for (std::size_t i = 0; i < count; ++i)
          batch.push_back(RandomTerm(rng));
        ASSERT_TRUE(solver.AddTerms(batch).ok());
        terms.insert(terms.end(), batch.begin(), batch.end());
        active.resize(terms.size(), true);
      } else {
        const std::size_t rows[] = {oldest};
        ASSERT_TRUE(solver.Deactivate(rows).ok());
        active[oldest++] = false;
      }
      const Reference ref = SolveFromScratch(terms, active);
      ASSERT_NEAR(solver.Objective(), ref.objective, 1e-6)
          << "seed " << seed << " step " << step;
    }
  }
}

TEST(RelaxationSolver, DeactivateAlreadyInactiveIsNoop) {
  RelaxationSolver solver;
  std::vector<Term> terms = BoxTerms();
  terms.push_back({1.0, 0.0, -20.0, 1.0});  // zx <= -20 vs box zx >= -10.
  ASSERT_TRUE(solver.Reset(terms).ok());
  EXPECT_NEAR(solver.Objective(), 10.0, 1e-8);  // t_4 = 10 at zx = -10.
  const std::size_t rows[] = {4};
  ASSERT_TRUE(solver.Deactivate(rows).ok());
  const double obj = solver.Objective();
  const std::size_t pivots = solver.TotalIterations();
  ASSERT_TRUE(solver.Deactivate(rows).ok());
  EXPECT_EQ(solver.Objective(), obj);
  EXPECT_EQ(solver.TotalIterations(), pivots);
  EXPECT_NEAR(obj, 0.0, 1e-9);  // Conflict retired: nothing to relax.
}

TEST(RelaxationSolver, AddOnEmptySolverActsAsReset) {
  RelaxationSolver solver;
  std::vector<Term> terms = BoxTerms();
  ASSERT_TRUE(solver.AddTerms(terms).ok());
  EXPECT_TRUE(solver.Solved());
  EXPECT_NEAR(solver.Objective(), 0.0, 1e-9);
}

TEST(RelaxationSolver, RejectsNonFiniteAndNegativeWeight) {
  RelaxationSolver solver;
  std::vector<Term> bad = {{std::nan(""), 0.0, 0.0, 1.0}};
  EXPECT_EQ(solver.Reset(bad).status().code(),
            common::StatusCode::kInvalidArgument);
  std::vector<Term> neg = {{1.0, 0.0, 0.0, -1.0}};
  EXPECT_EQ(solver.Reset(neg).status().code(),
            common::StatusCode::kInvalidArgument);
}

TEST(RelaxationSolver, DeactivateBeforeResetFails) {
  RelaxationSolver solver;
  const std::size_t rows[] = {0};
  EXPECT_EQ(solver.Deactivate(rows).status().code(),
            common::StatusCode::kFailedPrecondition);
}

TEST(RelaxationSolver, DeterministicAcrossInstances) {
  auto run = [] {
    common::Rng rng(5);
    RelaxationSolver solver;
    std::vector<Term> terms = BoxTerms();
    auto ignored = solver.Reset(terms);
    (void)ignored;
    for (int i = 0; i < 20; ++i) {
      std::vector<Term> batch = {RandomTerm(rng)};
      auto st = solver.AddTerms(batch);
      (void)st;
    }
    return std::pair<double, double>(solver.Zx(), solver.Zy());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);    // Bit-identical, not just close.
  EXPECT_EQ(a.second, b.second);
}

TEST(RelaxationSolver, SolutionPointMatchesReferenceWhenUnique) {
  // A tight infeasible pinch has a unique optimal z; check coordinates,
  // not just the objective.
  std::vector<Term> terms = {{1.0, 0.0, 2.0, 100.0},
                             {-1.0, 0.0, -2.0, 1.0},   // zx >= 2.
                             {0.0, 1.0, 1.0, 100.0},
                             {0.0, -1.0, -1.0, 100.0}};  // zy == 1.
  RelaxationSolver solver;
  ASSERT_TRUE(solver.Reset(terms).ok());
  EXPECT_NEAR(solver.Zx(), 2.0, 1e-8);
  EXPECT_NEAR(solver.Zy(), 1.0, 1e-8);
  EXPECT_NEAR(solver.Objective(), 0.0, 1e-8);
}

}  // namespace
}  // namespace nomloc::lp
