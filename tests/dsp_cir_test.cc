#include "dsp/cir.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <string>

#include "common/metrics.h"
#include "common/units.h"

namespace nomloc::dsp {
namespace {

// Synthesizes the frequency response of a multipath channel
//   H(f_k) = sum_p a_p e^{-j 2 pi f_k tau_p}
// on the HT20 grid — the exact signal model the CIR path must invert.
CsiFrame SyntheticChannel(std::span<const double> amps,
                          std::span<const double> delays_s,
                          double bandwidth_hz = common::kBandwidth20MHz) {
  const auto idx = CsiFrame::Ht20Indices();
  const double df = bandwidth_hz / common::kOfdmFftSize;
  std::vector<Cplx> vals(idx.size(), Cplx(0.0, 0.0));
  for (std::size_t p = 0; p < amps.size(); ++p) {
    for (std::size_t i = 0; i < idx.size(); ++i) {
      const double ang =
          -2.0 * std::numbers::pi * double(idx[i]) * df * delays_s[p];
      vals[i] += amps[p] * Cplx(std::cos(ang), std::sin(ang));
    }
  }
  auto frame = CsiFrame::Create(idx, vals);
  return std::move(frame).value();
}

TEST(CsiToCir, TapSpacingIsInverseBandwidth) {
  const double amps[] = {1.0};
  const double delays[] = {0.0};
  const auto cir = CsiToCir(SyntheticChannel(amps, delays),
                            common::kBandwidth20MHz);
  EXPECT_EQ(cir.taps.size(), 64u);
  EXPECT_DOUBLE_EQ(cir.tap_spacing_s, 50e-9);
  EXPECT_DOUBLE_EQ(cir.DelayOf(3), 150e-9);
}

TEST(CsiToCir, ZeroDelayPathPeaksAtTapZero) {
  const double amps[] = {1.0};
  const double delays[] = {0.0};
  const auto cir = CsiToCir(SyntheticChannel(amps, delays),
                            common::kBandwidth20MHz);
  const auto profile = cir.PowerProfile();
  const auto peak =
      std::max_element(profile.begin(), profile.end()) - profile.begin();
  EXPECT_EQ(peak, 0);
}

TEST(CsiToCir, DelayedPathPeaksAtMatchingTap) {
  // A path delayed by exactly 4 taps (200 ns at 20 MHz).
  const double amps[] = {1.0};
  const double delays[] = {200e-9};
  const auto cir = CsiToCir(SyntheticChannel(amps, delays),
                            common::kBandwidth20MHz);
  const auto profile = cir.PowerProfile();
  const auto peak =
      std::max_element(profile.begin(), profile.end()) - profile.begin();
  EXPECT_EQ(peak, 4);
}

TEST(CsiToCir, TwoPathsProduceTwoPeaks) {
  const double amps[] = {1.0, 0.6};
  const double delays[] = {0.0, 500e-9};  // Taps 0 and 10.
  const auto cir = CsiToCir(SyntheticChannel(amps, delays),
                            common::kBandwidth20MHz);
  const auto profile = cir.PowerProfile();
  // Tap 0 and tap 10 dominate their neighbourhoods.
  EXPECT_GT(profile[0], profile[2]);
  EXPECT_GT(profile[10], profile[8]);
  EXPECT_GT(profile[10], profile[12]);
  EXPECT_GT(profile[0], profile[10]);  // Stronger path stronger tap.
}

TEST(CsiToCir, InvalidBandwidthThrows) {
  const double amps[] = {1.0};
  const double delays[] = {0.0};
  const auto frame = SyntheticChannel(amps, delays);
  EXPECT_THROW(CsiToCir(frame, 0.0), std::logic_error);
}

TEST(PdpMaxTap, PicksStrongestPath) {
  const double amps[] = {0.4, 1.0};  // Second (delayed) path dominates.
  const double delays[] = {0.0, 300e-9};
  const auto cir = CsiToCir(SyntheticChannel(amps, delays),
                            common::kBandwidth20MHz);
  const double pdp = PdpOfCir(cir, {.method = PdpMethod::kMaxTap});
  const auto profile = cir.PowerProfile();
  EXPECT_DOUBLE_EQ(pdp, *std::max_element(profile.begin(), profile.end()));
}

TEST(PdpMaxTap, MonotoneInPathAmplitude) {
  const double delays[] = {0.0};
  double prev = 0.0;
  for (double a : {0.2, 0.5, 1.0, 2.0}) {
    const double amps[] = {a};
    const auto cir = CsiToCir(SyntheticChannel(amps, delays),
                              common::kBandwidth20MHz);
    const double pdp = PdpOfCir(cir, {});
    EXPECT_GT(pdp, prev);
    prev = pdp;
  }
}

TEST(PdpFirstPath, FindsAttenuatedFirstArrival) {
  // First path is 6 dB below the strongest — still within a 10 dB window.
  const double amps[] = {0.5, 1.0};
  const double delays[] = {0.0, 400e-9};
  const auto cir = CsiToCir(SyntheticChannel(amps, delays),
                            common::kBandwidth20MHz);
  const double first = PdpOfCir(
      cir, {.method = PdpMethod::kFirstPath, .first_path_threshold_db = 10.0});
  const double max_tap = PdpOfCir(cir, {.method = PdpMethod::kMaxTap});
  EXPECT_LT(first, max_tap);
  EXPECT_NEAR(first, cir.PowerProfile()[0], first * 0.2);
}

TEST(PdpFirstPath, NarrowThresholdSkipsWeakFirstTap) {
  // First path 20 dB down: a 10 dB window must skip it.
  const double amps[] = {0.1, 1.0};
  const double delays[] = {0.0, 400e-9};
  const auto cir = CsiToCir(SyntheticChannel(amps, delays),
                            common::kBandwidth20MHz);
  const double first = PdpOfCir(
      cir, {.method = PdpMethod::kFirstPath, .first_path_threshold_db = 10.0});
  const double max_tap = PdpOfCir(cir, {.method = PdpMethod::kMaxTap});
  EXPECT_NEAR(first, max_tap, max_tap * 0.3);
}

TEST(PdpTotalPower, SumsAllTaps) {
  const double amps[] = {1.0, 1.0};
  const double delays[] = {0.0, 500e-9};
  const auto cir = CsiToCir(SyntheticChannel(amps, delays),
                            common::kBandwidth20MHz);
  const double total = PdpOfCir(cir, {.method = PdpMethod::kTotalPower});
  const double max_tap = PdpOfCir(cir, {.method = PdpMethod::kMaxTap});
  EXPECT_GT(total, max_tap);
}

TEST(PdpOfCir, EmptyCirThrows) {
  ChannelImpulseResponse cir;
  EXPECT_THROW(PdpOfCir(cir, {}), std::logic_error);
}

TEST(PdpOfBatch, AveragesFrames) {
  const double delays[] = {0.0};
  const double a1[] = {1.0};
  const double a2[] = {3.0};
  const std::vector<CsiFrame> frames{SyntheticChannel(a1, delays),
                                     SyntheticChannel(a2, delays)};
  const double avg = PdpOfBatch(frames, common::kBandwidth20MHz);
  const double p1 = PdpOfCir(CsiToCir(frames[0], common::kBandwidth20MHz), {});
  const double p2 = PdpOfCir(CsiToCir(frames[1], common::kBandwidth20MHz), {});
  EXPECT_NEAR(avg, (p1 + p2) / 2.0, 1e-9);
}

TEST(PdpOfBatch, EmptyBatchThrows) {
  EXPECT_THROW(PdpOfBatch({}, common::kBandwidth20MHz), std::logic_error);
}

// The paper's Fig. 3 dichotomy in miniature: attenuating the first path
// (NLOS) lowers the max-tap PDP even though later multipath is unchanged.
TEST(PdpDichotomy, NlosAttenuationLowersPdp) {
  const double delays[] = {50e-9, 350e-9, 600e-9};
  const double los_amps[] = {1.0, 0.3, 0.2};
  const double nlos_amps[] = {0.15, 0.3, 0.2};  // LOS component blocked.
  const double pdp_los = PdpOfCir(
      CsiToCir(SyntheticChannel(los_amps, delays), common::kBandwidth20MHz),
      {});
  const double pdp_nlos = PdpOfCir(
      CsiToCir(SyntheticChannel(nlos_amps, delays), common::kBandwidth20MHz),
      {});
  EXPECT_GT(pdp_los, 2.0 * pdp_nlos);
}

// --- PdpOfBatchChecked: the typed ingest guard -------------------------

CsiFrame FrameWithValues(std::vector<Cplx> values) {
  auto frame = CsiFrame::Create(CsiFrame::Ht20Indices(), std::move(values));
  return std::move(frame).value();
}

TEST(PdpOfBatchChecked, HealthyBatchBitIdenticalToUnchecked) {
  const double a1[] = {1.0};
  const double a2[] = {0.5};
  const double delays[] = {100e-9};
  const std::vector<CsiFrame> frames{SyntheticChannel(a1, delays),
                                     SyntheticChannel(a2, delays)};
  auto checked = PdpOfBatchChecked(frames, common::kBandwidth20MHz);
  ASSERT_TRUE(checked.ok());
  const double unchecked = PdpOfBatch(frames, common::kBandwidth20MHz);
  EXPECT_EQ(*checked, unchecked);  // bit-identical, not just close
}

TEST(PdpOfBatchChecked, TypedErrorsOnEmptyAndBadBandwidth) {
  const double amps[] = {1.0};
  const double delays[] = {0.0};
  const std::vector<CsiFrame> frames{SyntheticChannel(amps, delays)};
  auto empty = PdpOfBatchChecked({}, common::kBandwidth20MHz);
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), common::StatusCode::kInvalidArgument);
  auto bad_bw = PdpOfBatchChecked(frames, 0.0);
  ASSERT_FALSE(bad_bw.ok());
  EXPECT_EQ(bad_bw.status().code(), common::StatusCode::kInvalidArgument);
}

TEST(PdpOfBatchChecked, RejectsNonFiniteTapsAndCountsThem) {
  auto& rejected =
      common::MetricRegistry::Global().Counter("pdp.rejected_links");
  const std::size_t n = CsiFrame::Ht20Indices().size();

  std::vector<Cplx> nan_values(n, Cplx(1.0, 0.0));
  nan_values[7] = Cplx(std::numeric_limits<double>::quiet_NaN(), 0.0);
  std::vector<Cplx> inf_values(n, Cplx(1.0, 0.0));
  inf_values[3] = Cplx(0.0, std::numeric_limits<double>::infinity());

  const std::uint64_t before = rejected.Value();
  for (auto& values : {nan_values, inf_values}) {
    const std::vector<CsiFrame> frames{FrameWithValues(values)};
    auto pdp = PdpOfBatchChecked(frames, common::kBandwidth20MHz);
    ASSERT_FALSE(pdp.ok());
    EXPECT_EQ(pdp.status().code(), common::StatusCode::kDataCorruption);
  }
  EXPECT_EQ(rejected.Value(), before + 2);
}

TEST(PdpOfBatchChecked, RejectsAllZeroFrame) {
  const std::size_t n = CsiFrame::Ht20Indices().size();
  const double amps[] = {1.0};
  const double delays[] = {0.0};
  // A healthy frame first: the guard must name the offending frame, not
  // just the batch.
  const std::vector<CsiFrame> frames{
      SyntheticChannel(amps, delays),
      FrameWithValues(std::vector<Cplx>(n, Cplx(0.0, 0.0)))};
  auto pdp = PdpOfBatchChecked(frames, common::kBandwidth20MHz);
  ASSERT_FALSE(pdp.ok());
  EXPECT_EQ(pdp.status().code(), common::StatusCode::kDataCorruption);
  EXPECT_NE(pdp.status().message().find("frame 1"), std::string::npos)
      << pdp.status().ToString();
}

}  // namespace
}  // namespace nomloc::dsp
