// Shard-level chaos suite: seeded topology-failure schedules (kills with
// checkpoint-restores, live migrations, transport stalls) replayed
// through a Cluster, asserting the resilience invariants — no crash,
// exactly one response per accepted query, monotone degradation (packets
// reroute or reject typed, never vanish), and post-recovery accuracy
// parity with the event-free run.
#include "cluster/chaos.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "eval/scenario.h"
#include "serving/replay.h"

namespace nomloc::cluster {
namespace {

struct Harness {
  eval::Scenario scenario;
  serving::ReplayConfig replay;
  serving::ReplayPlan plan;
  core::NomLocEngine engine;
};

common::Result<Harness> MakeHarness(std::size_t epochs) {
  NOMLOC_ASSIGN_OR_RETURN(eval::Scenario scenario,
                          eval::ScenarioByName("lab"));
  serving::ReplayConfig replay;
  replay.objects = 3;
  replay.epochs = epochs;
  replay.run.packets_per_batch = 3;
  replay.run.dwell_count = 3;
  NOMLOC_ASSIGN_OR_RETURN(serving::ReplayPlan plan,
                          BuildReplayPlan(scenario, replay));
  core::NomLocConfig engine_cfg;
  engine_cfg.bandwidth_hz = replay.run.channel.bandwidth_hz;
  NOMLOC_ASSIGN_OR_RETURN(
      core::NomLocEngine engine,
      core::NomLocEngine::Create(scenario.env.Boundary(), engine_cfg));
  return Harness{std::move(scenario), replay, std::move(plan),
                 std::move(engine)};
}

ClusterConfig ChaosClusterConfig() {
  ClusterConfig config;
  config.shards = 3;
  config.serving.workers = 2;
  // Breakers that trip fast and re-probe fast, so a killed shard's
  // objects reroute quickly and the restored shard is reclaimed within
  // the run.
  config.shard_breaker.failure_threshold = 2;
  config.shard_breaker.base_backoff_s = 0.2;
  config.shard_breaker.max_backoff_s = 1.0;
  return config;
}

void AssertInvariants(const ClusterChaosReport& report) {
  // Exactly one response per accepted query — rerouted, restored, or
  // plain, nothing is lost and nothing is duplicated.
  EXPECT_EQ(report.outcomes.size(), report.accepted_queries);
  std::set<std::pair<std::uint64_t, std::size_t>> seen;
  for (const ClusterChaosOutcome& outcome : report.outcomes) {
    EXPECT_TRUE(seen.insert({outcome.object_id, outcome.epoch}).second)
        << "duplicate response for object " << outcome.object_id
        << " epoch " << outcome.epoch;
    EXPECT_LE(outcome.degradation, 3) << "invalid degradation level";
    EXPECT_GE(outcome.confidence, 0.0);
    EXPECT_LE(outcome.confidence, 1.0);
    EXPECT_TRUE(std::isfinite(outcome.error_m));
  }
  // Every scheduled kill that executed was eventually restored (the
  // schedule closes every window inside the run).
  EXPECT_EQ(report.restores, report.kills);
}

TEST(ClusterChaos, ScheduleIsDeterministicAndBounded) {
  auto harness = MakeHarness(8);
  ASSERT_TRUE(harness.ok()) << harness.status().ToString();
  ClusterChaosConfig chaos;
  chaos.seed = 5;
  chaos.events = 6;
  const auto a = BuildClusterChaosSchedule(
      chaos, harness->plan, harness->replay.epoch_interval_s, 3);
  const auto b = BuildClusterChaosSchedule(
      chaos, harness->plan, harness->replay.epoch_interval_s, 3);
  ASSERT_EQ(a.events.size(), 6u);
  ASSERT_EQ(b.events.size(), 6u);
  const double duration_s =
      double(harness->plan.epoch_count) * harness->replay.epoch_interval_s;
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].shard, b.events[i].shard);
    EXPECT_EQ(a.events[i].start_s, b.events[i].start_s);
    EXPECT_EQ(a.events[i].end_s, b.events[i].end_s);
    EXPECT_LT(a.events[i].shard, 3u);
    EXPECT_GT(a.events[i].start_s, 0.0);
    EXPECT_LE(a.events[i].end_s, duration_s);
    // Windows snap to the epoch grid (events fire on flushed boundaries).
    const double start_epochs =
        a.events[i].start_s / harness->replay.epoch_interval_s;
    EXPECT_EQ(start_epochs, std::floor(start_epochs));
  }
}

TEST(ClusterChaos, SeededRunsSurviveWithEveryQueryAnswered) {
  auto harness = MakeHarness(6);
  ASSERT_TRUE(harness.ok()) << harness.status().ToString();
  for (std::uint64_t seed : {1ull, 7ull, 23ull}) {
    ClusterChaosConfig chaos;
    chaos.seed = seed;
    chaos.events = 4;
    auto report =
        RunClusterChaos(harness->engine, harness->plan,
                        harness->replay.epoch_interval_s, chaos,
                        ChaosClusterConfig());
    ASSERT_TRUE(report.ok()) << "seed " << seed << ": "
                             << report.status().ToString();
    EXPECT_FALSE(report->schedule.events.empty()) << "seed " << seed;
    AssertInvariants(*report);
  }
}

TEST(ClusterChaos, PostRecoveryAccuracyMatchesEventFreeRun) {
  auto harness = MakeHarness(6);
  ASSERT_TRUE(harness.ok()) << harness.status().ToString();
  ClusterChaosConfig quiet;
  quiet.events = 0;
  auto baseline =
      RunClusterChaos(harness->engine, harness->plan,
                      harness->replay.epoch_interval_s, quiet,
                      ChaosClusterConfig());
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  ClusterChaosConfig chaos;
  chaos.seed = 11;
  chaos.events = 4;
  auto report =
      RunClusterChaos(harness->engine, harness->plan,
                      harness->replay.epoch_interval_s, chaos,
                      ChaosClusterConfig());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  AssertInvariants(*report);

  // Baseline mean over the *same* tail window as the chaos run (epochs
  // after the last event cleared) — whole-run means mix in different
  // epochs and would compare apples to oranges.
  double last_end_s = 0.0;
  for (const ClusterChaosEvent& event : report->schedule.events)
    last_end_s = std::max(last_end_s, event.end_s);
  double baseline_sum = 0.0;
  std::size_t baseline_count = 0;
  for (const ClusterChaosOutcome& outcome : baseline->outcomes) {
    if (outcome.timestamp_s <= last_end_s) continue;
    baseline_sum += outcome.error_m;
    ++baseline_count;
  }
  ASSERT_GT(baseline_count, 0u) << "no baseline tail responses";
  const double baseline_mean = baseline_sum / double(baseline_count);

  // Tail epochs must localize as well as the event-free run: topology
  // faults leave no permanent scar.  Epoch self-containment under the
  // anchor TTL actually makes the tail *identical*, but the invariant
  // asserted is parity within 5%.
  ASSERT_GE(report->tail_mean_error_m, 0.0) << "no tail responses";
  EXPECT_LE(report->tail_mean_error_m, 1.05 * baseline_mean + 1e-9);
}

TEST(ClusterChaos, StallWindowsSurfaceAsTypedBackpressure) {
  auto harness = MakeHarness(6);
  ASSERT_TRUE(harness.ok()) << harness.status().ToString();
  ClusterConfig config = ChaosClusterConfig();
  // A pipe smaller than two observation frames: a stalled shard that
  // receives any real traffic must overflow into typed kRejectedQueueFull.
  config.transport.loopback_capacity_bytes = 96;
  // Seeds draw the stalled shard at random and a stall on a shard that
  // owns no objects is (correctly) harmless, so scan a few seeds and
  // require that a stall landing on live traffic surfaces as typed
  // backpressure.  Runs are deterministic per seed.
  bool saw_backpressure = false;
  for (std::uint64_t seed = 1; seed <= 10 && !saw_backpressure; ++seed) {
    ClusterChaosConfig chaos;
    chaos.events = 3;
    chaos.kill_weight = 0.0;
    chaos.migrate_weight = 0.0;
    chaos.stall_weight = 1.0;  // Stalls only.
    chaos.seed = seed;
    auto report = RunClusterChaos(harness->engine, harness->plan,
                                  harness->replay.epoch_interval_s, chaos,
                                  config);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_GT(report->stall_windows, 0u) << "seed " << seed;
    // Backpressure rejects observations, never crashes; queries that
    // were accepted still all answer.
    EXPECT_EQ(report->outcomes.size(), report->accepted_queries)
        << "seed " << seed;
    saw_backpressure = report->admit_rejected_backpressure > 0;
  }
  EXPECT_TRUE(saw_backpressure)
      << "no stall window overflowed in 10 seeded runs";
}

}  // namespace
}  // namespace nomloc::cluster
