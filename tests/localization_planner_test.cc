#include "localization/planner.h"

#include <gtest/gtest.h>

#include "geometry/convex_decomp.h"

namespace nomloc::localization {
namespace {

using geometry::Polygon;
using geometry::Vec2;

PlannerConfig FastConfig() {
  PlannerConfig cfg;
  cfg.sites_to_select = 2;
  cfg.sample_points = 24;
  cfg.seed = 7;
  return cfg;
}

TEST(ExpectedCellError, FewerAnchorsMeansLargerError) {
  const Polygon room = Polygon::Rectangle(0.0, 0.0, 12.0, 8.0);
  const std::vector<Polygon> parts{room};
  const std::vector<Vec2> few{{1, 1}, {11, 7}};
  const std::vector<Vec2> many{{1, 1}, {11, 1}, {11, 7}, {1, 7}, {6, 4}};
  common::Rng rng(3);
  std::vector<Vec2> samples;
  for (int i = 0; i < 30; ++i)
    samples.push_back({rng.Uniform(0.5, 11.5), rng.Uniform(0.5, 7.5)});
  auto err_few = ExpectedCellError(parts, few, samples);
  auto err_many = ExpectedCellError(parts, many, samples);
  ASSERT_TRUE(err_few.ok()) << err_few.status().ToString();
  ASSERT_TRUE(err_many.ok());
  EXPECT_LT(*err_many, *err_few);
}

TEST(ExpectedCellError, Validation) {
  const std::vector<Polygon> parts{Polygon::Rectangle(0, 0, 1, 1)};
  const std::vector<Vec2> anchors{{0.1, 0.1}, {0.9, 0.9}};
  EXPECT_FALSE(ExpectedCellError(parts, anchors, {}).ok());
  const std::vector<Vec2> one{{0.1, 0.1}};
  const std::vector<Vec2> samples{{0.5, 0.5}};
  EXPECT_FALSE(ExpectedCellError(parts, one, samples).ok());
}

TEST(PlanNomadicSites, SelectsRequestedCount) {
  const Polygon room = Polygon::Rectangle(0.0, 0.0, 12.0, 8.0);
  const std::vector<Vec2> statics{{1, 1}, {11, 1}, {11, 7}, {1, 7}};
  const std::vector<Vec2> candidates{{3, 4}, {6, 4}, {9, 4}, {6, 2}, {6, 6}};
  auto plan = PlanNomadicSites(room, statics, candidates, FastConfig());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->selected.size(), 2u);
  EXPECT_EQ(plan->error_after_m.size(), 2u);
  // Selected indices are distinct and valid.
  EXPECT_NE(plan->selected[0], plan->selected[1]);
  for (std::size_t idx : plan->selected) EXPECT_LT(idx, candidates.size());
}

TEST(PlanNomadicSites, ErrorsDecreaseMonotonically) {
  const Polygon room = Polygon::Rectangle(0.0, 0.0, 12.0, 8.0);
  const std::vector<Vec2> statics{{1, 1}, {11, 1}, {11, 7}, {1, 7}};
  const std::vector<Vec2> candidates{{3, 4}, {6, 4}, {9, 4}, {6, 2}, {6, 6}};
  PlannerConfig cfg = FastConfig();
  cfg.sites_to_select = 3;
  auto plan = PlanNomadicSites(room, statics, candidates, cfg);
  ASSERT_TRUE(plan.ok());
  double prev = plan->baseline_error_m;
  for (double e : plan->error_after_m) {
    EXPECT_LE(e, prev + 1e-9);
    prev = e;
  }
}

TEST(PlanNomadicSites, PrefersInformativeSiteOverRedundantOne) {
  // Candidates: one on top of an existing AP (adds nothing) vs one in the
  // uncovered middle.  The planner must pick the middle site first.
  const Polygon room = Polygon::Rectangle(0.0, 0.0, 12.0, 8.0);
  const std::vector<Vec2> statics{{1, 1}, {11, 1}, {11, 7}, {1, 7}};
  const std::vector<Vec2> candidates{{1.05, 1.05}, {6.0, 4.0}};
  PlannerConfig cfg = FastConfig();
  cfg.sites_to_select = 1;
  cfg.sample_points = 40;
  auto plan = PlanNomadicSites(room, statics, candidates, cfg);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->selected[0], 1u);
}

TEST(PlanNomadicSites, WorksOnNonConvexArea) {
  auto l = Polygon::Create({{0.0, 0.0},
                            {20.0, 0.0},
                            {20.0, 6.0},
                            {8.0, 6.0},
                            {8.0, 14.0},
                            {0.0, 14.0}});
  ASSERT_TRUE(l.ok());
  const std::vector<Vec2> statics{{2, 2}, {18, 2}, {2, 12}};
  const std::vector<Vec2> candidates{{10, 3}, {15, 4}, {4, 8}, {5, 12}};
  PlannerConfig cfg = FastConfig();
  cfg.sites_to_select = 2;
  auto plan = PlanNomadicSites(*l, statics, candidates, cfg);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->selected.size(), 2u);
  EXPECT_LT(plan->error_after_m.back(), plan->baseline_error_m);
}

TEST(PlanNomadicSites, Validation) {
  const Polygon room = Polygon::Rectangle(0.0, 0.0, 2.0, 2.0);
  const std::vector<Vec2> statics{{0.5, 0.5}, {1.5, 1.5}};
  const std::vector<Vec2> candidates{{1.0, 1.0}};
  PlannerConfig cfg = FastConfig();

  EXPECT_FALSE(PlanNomadicSites(room, statics, {}, cfg).ok());

  const std::vector<Vec2> one_static{{0.5, 0.5}};
  EXPECT_FALSE(PlanNomadicSites(room, one_static, candidates, cfg).ok());

  cfg.sites_to_select = 5;
  EXPECT_FALSE(PlanNomadicSites(room, statics, candidates, cfg).ok());

  cfg = FastConfig();
  cfg.sites_to_select = 1;
  cfg.sample_points = 0;
  EXPECT_FALSE(PlanNomadicSites(room, statics, candidates, cfg).ok());
}

}  // namespace
}  // namespace nomloc::localization
