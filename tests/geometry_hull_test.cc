#include "geometry/hull.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"

namespace nomloc::geometry {
namespace {

TEST(ConvexHull, SquareWithInteriorPoints) {
  const std::vector<Vec2> pts{{0, 0}, {4, 0}, {4, 4}, {0, 4},
                              {2, 2}, {1, 3}, {3, 1}};
  const auto hull = ConvexHull(pts);
  ASSERT_EQ(hull.size(), 4u);
  EXPECT_GT(SignedArea(hull), 0.0);  // CCW.
  EXPECT_NEAR(std::abs(SignedArea(hull)), 16.0, 1e-12);
}

TEST(ConvexHull, CollinearPointsDegenerate) {
  const std::vector<Vec2> pts{{0, 0}, {1, 1}, {2, 2}, {3, 3}};
  const auto hull = ConvexHull(pts);
  EXPECT_LT(hull.size(), 3u);
}

TEST(ConvexHull, DuplicatesIgnored) {
  const std::vector<Vec2> pts{{0, 0}, {0, 0}, {1, 0}, {1, 0}, {0, 1}};
  const auto hull = ConvexHull(pts);
  EXPECT_EQ(hull.size(), 3u);
}

TEST(ConvexHull, CollinearBoundaryPointsDropped) {
  const std::vector<Vec2> pts{{0, 0}, {2, 0}, {4, 0}, {4, 4}, {0, 4}};
  const auto hull = ConvexHull(pts);
  EXPECT_EQ(hull.size(), 4u);  // (2,0) lies on an edge.
}

TEST(ConvexHullProperty, ContainsAllInputPoints) {
  common::Rng rng(9);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<Vec2> pts;
    for (int i = 0; i < 40; ++i)
      pts.push_back({rng.Uniform(-5, 5), rng.Uniform(-5, 5)});
    const auto hull = ConvexHull(pts);
    ASSERT_GE(hull.size(), 3u);
    auto poly = Polygon::Create(std::vector<Vec2>(hull.begin(), hull.end()));
    ASSERT_TRUE(poly.ok());
    EXPECT_TRUE(poly->IsConvex());
    for (const Vec2 p : pts) EXPECT_TRUE(poly->Contains(p, 1e-9));
  }
}

TEST(ConvexHullProperty, HullOfHullIsIdempotent) {
  common::Rng rng(11);
  std::vector<Vec2> pts;
  for (int i = 0; i < 50; ++i)
    pts.push_back({rng.Uniform(0, 10), rng.Uniform(0, 10)});
  const auto hull1 = ConvexHull(pts);
  const auto hull2 = ConvexHull(hull1);
  EXPECT_EQ(hull1.size(), hull2.size());
}

TEST(RandomPointIn, AlwaysInsidePolygon) {
  auto l = Polygon::Create(
      {{0.0, 0.0}, {4.0, 0.0}, {4.0, 2.0}, {2.0, 2.0}, {2.0, 4.0}, {0.0, 4.0}});
  ASSERT_TRUE(l.ok());
  common::Rng rng(13);
  for (int i = 0; i < 1000; ++i)
    EXPECT_TRUE(l->Contains(RandomPointIn(*l, rng)));
}

TEST(RandomPointIn, CoversThePolygonRoughlyUniformly) {
  const Polygon sq = Polygon::Rectangle(0.0, 0.0, 2.0, 2.0);
  common::Rng rng(17);
  int left = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (RandomPointIn(sq, rng).x < 1.0) ++left;
  EXPECT_NEAR(double(left) / n, 0.5, 0.02);
}

TEST(GridPointsIn, CountMatchesAreaOverStepSquared) {
  const Polygon sq = Polygon::Rectangle(0.0, 0.0, 4.0, 2.0);
  const auto pts = GridPointsIn(sq, 0.5);
  EXPECT_EQ(pts.size(), 32u);  // 8 x 4 cells.
  for (const Vec2 p : pts) EXPECT_TRUE(sq.Contains(p));
}

TEST(GridPointsIn, RespectsNonConvexShape) {
  auto l = Polygon::Create(
      {{0.0, 0.0}, {4.0, 0.0}, {4.0, 2.0}, {2.0, 2.0}, {2.0, 4.0}, {0.0, 4.0}});
  ASSERT_TRUE(l.ok());
  const auto pts = GridPointsIn(*l, 1.0);
  for (const Vec2 p : pts) {
    EXPECT_TRUE(l->Contains(p));
    EXPECT_FALSE(p.x > 2.0 && p.y > 2.0);  // Nothing in the notch.
  }
  EXPECT_EQ(pts.size(), 12u);  // 12 m^2 at 1 point / m^2.
}

TEST(GridPointsIn, InvalidStepThrows) {
  const Polygon sq = Polygon::Rectangle(0.0, 0.0, 1.0, 1.0);
  EXPECT_THROW(GridPointsIn(sq, 0.0), std::logic_error);
}

TEST(GridPointsIn, ClippedScanMatchesFullScanOnJaggedPolygon) {
  // A comb-like non-convex polygon whose per-row slice is much narrower
  // than its bounding box, so the clipped scan actually skips candidates.
  auto comb = Polygon::Create({{0.0, 0.0},
                               {9.0, 0.0},
                               {9.0, 6.0},
                               {7.5, 6.0},
                               {7.5, 1.5},
                               {6.0, 1.5},
                               {6.0, 6.0},
                               {4.5, 6.0},
                               {4.5, 1.5},
                               {3.0, 1.5},
                               {3.0, 6.0},
                               {1.5, 6.0},
                               {1.5, 1.5},
                               {0.0, 1.5}});
  ASSERT_TRUE(comb.ok());
  const double step = 0.4;
  const auto pts = GridPointsIn(*comb, step);

  // Unclipped reference: the row-major bounding-box scan the clipped
  // implementation must reproduce bit for bit.
  const Aabb box = comb->BoundingBox();
  std::vector<Vec2> want;
  for (double y = box.lo.y + step / 2.0; y < box.hi.y; y += step)
    for (double x = box.lo.x + step / 2.0; x < box.hi.x; x += step)
      if (comb->Contains({x, y})) want.push_back({x, y});

  ASSERT_EQ(pts.size(), want.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(pts[i].x, want[i].x);
    EXPECT_EQ(pts[i].y, want[i].y);
  }
  EXPECT_EQ(pts.size(), 209u);  // Pinned: teeth only, nothing in the gaps.
}

}  // namespace
}  // namespace nomloc::geometry
