#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace nomloc::common {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.Variance(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.Add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.Mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.Min(), 3.5);
  EXPECT_DOUBLE_EQ(s.Max(), 3.5);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.StdDev(), 2.0);
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
}

TEST(RunningStats, SampleVarianceUsesBessel) {
  RunningStats s;
  s.Add(1.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 1.0);
  EXPECT_DOUBLE_EQ(s.SampleVariance(), 2.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(3);
  RunningStats all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Gaussian(2.0, 3.0);
    all.Add(x);
    (i < 400 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.Mean(), all.Mean(), 1e-12);
  EXPECT_NEAR(left.Variance(), all.Variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.Min(), all.Min());
  EXPECT_DOUBLE_EQ(left.Max(), all.Max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.Add(1.0);
  a.Add(2.0);
  const double mean = a.Mean();
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Mean(), mean);
  b.Merge(a);
  EXPECT_DOUBLE_EQ(b.Mean(), mean);
}

TEST(RunningStats, MinMaxOnEmptyThrows) {
  RunningStats s;
  EXPECT_THROW(s.Min(), std::logic_error);
  EXPECT_THROW(s.Max(), std::logic_error);
}

TEST(FreeFunctions, MeanAndVariance) {
  const double xs[] = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(Variance(xs), 1.25);
}

TEST(FreeFunctions, EmptySpans) {
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_EQ(Variance({}), 0.0);
}

TEST(FreeFunctions, SlvIsVarianceOfSiteErrors) {
  const double errors[] = {1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(SpatialLocalizabilityVariance(errors), 0.0);
  const double uneven[] = {0.0, 2.0};
  EXPECT_DOUBLE_EQ(SpatialLocalizabilityVariance(uneven), 1.0);
}

TEST(Percentile, Endpoints) {
  const double xs[] = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.5), 3.0);
}

TEST(Percentile, Interpolates) {
  const double xs[] = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.25), 2.5);
}

TEST(Percentile, SingleElement) {
  const double xs[] = {7.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.9), 7.0);
}

TEST(Percentile, EmptyThrows) {
  EXPECT_THROW(Percentile({}, 0.5), std::logic_error);
}

TEST(Percentile, OutOfRangeQThrows) {
  const double xs[] = {1.0};
  EXPECT_THROW(Percentile(xs, -0.1), std::logic_error);
  EXPECT_THROW(Percentile(xs, 1.1), std::logic_error);
}

TEST(EmpiricalCdf, StepsThroughSamples) {
  EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.At(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.At(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.At(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.At(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.At(100.0), 1.0);
}

TEST(EmpiricalCdf, QuantileInvertsCdf) {
  EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.25), 1.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(1.0), 4.0);
}

TEST(EmpiricalCdf, MinMaxCount) {
  EmpiricalCdf cdf({3.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(cdf.Min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.Max(), 3.0);
  EXPECT_EQ(cdf.Count(), 3u);
}

TEST(EmpiricalCdf, EmptyThrows) {
  EXPECT_THROW(EmpiricalCdf({}), std::logic_error);
}

TEST(EmpiricalCdf, SeriesIsMonotone) {
  EmpiricalCdf cdf({0.3, 1.2, 2.9, 0.1, 4.0, 2.2});
  const auto series = cdf.Series(20);
  ASSERT_EQ(series.size(), 20u);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].first, series[i - 1].first);
    EXPECT_GE(series[i].second, series[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(series.back().second, 1.0);
}

TEST(Histogram, BinsAndClamps) {
  Histogram h(0.0, 10.0, 5);
  h.Add(1.0);    // bin 0
  h.Add(9.9);    // bin 4
  h.Add(-5.0);   // clamps to bin 0
  h.Add(42.0);   // clamps to bin 4
  EXPECT_EQ(h.Count(0), 2u);
  EXPECT_EQ(h.Count(4), 2u);
  EXPECT_EQ(h.TotalCount(), 4u);
}

TEST(Histogram, BinCenters) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.BinCenter(0), 1.0);
  EXPECT_DOUBLE_EQ(h.BinCenter(4), 9.0);
}

TEST(Histogram, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(1.0, 1.0, 5), std::logic_error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::logic_error);
}

TEST(Histogram, OutOfRangeBinThrows) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW(h.Count(2), std::logic_error);
  EXPECT_THROW(h.BinCenter(2), std::logic_error);
}

}  // namespace
}  // namespace nomloc::common
