#include "localization/constraints.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace nomloc::localization {
namespace {

using geometry::Polygon;
using geometry::Vec2;

TEST(ProximityConstraints, OneConstraintPerJudgement) {
  const std::vector<Anchor> anchors{{{0.0, 0.0}, 4.0, false},
                                    {{10.0, 0.0}, 1.0, false}};
  const auto judgements = JudgeProximity(anchors);
  const auto constraints = ProximityConstraints(anchors, judgements);
  ASSERT_EQ(constraints.size(), 1u);
  EXPECT_FALSE(constraints[0].is_boundary);
  EXPECT_DOUBLE_EQ(constraints[0].weight, judgements[0].confidence);
}

TEST(ProximityConstraints, HalfPlaneFavoursWinner) {
  const std::vector<Anchor> anchors{{{0.0, 0.0}, 4.0, false},
                                    {{10.0, 0.0}, 1.0, false}};
  const auto constraints =
      ProximityConstraints(anchors, JudgeProximity(anchors));
  // Points near the strong anchor satisfy; near the weak one violate.
  EXPECT_TRUE(constraints[0].half_plane.Contains({1.0, 0.0}));
  EXPECT_FALSE(constraints[0].half_plane.Contains({9.0, 0.0}));
}

TEST(ProximityConstraints, SkipsCoincidentAnchors) {
  const std::vector<Anchor> anchors{{{1.0, 1.0}, 4.0, false},
                                    {{1.0, 1.0}, 1.0, false}};
  const auto constraints =
      ProximityConstraints(anchors, JudgeProximity(anchors));
  EXPECT_TRUE(constraints.empty());
}

TEST(ProximityConstraints, OutOfRangeJudgementThrows) {
  const std::vector<Anchor> anchors{{{0.0, 0.0}, 4.0, false},
                                    {{1.0, 0.0}, 1.0, false}};
  std::vector<ProximityJudgement> bad{{5, 0, 0.7}};
  EXPECT_THROW(ProximityConstraints(anchors, bad), std::logic_error);
}

TEST(VirtualApPositions, SquareMirrorsAreOutside) {
  const Polygon sq = Polygon::Rectangle(0.0, 0.0, 4.0, 4.0);
  const Vec2 ref{1.0, 1.0};
  const auto vaps = VirtualApPositions(sq, ref);
  ASSERT_EQ(vaps.size(), 4u);
  for (const Vec2 vap : vaps) EXPECT_FALSE(sq.Contains(vap));
}

TEST(VirtualApPositions, MirrorAcrossKnownEdges) {
  const Polygon sq = Polygon::Rectangle(0.0, 0.0, 4.0, 4.0);
  const Vec2 ref{1.0, 1.0};
  const auto vaps = VirtualApPositions(sq, ref);
  // Mirrors across y=0, x=4, y=4, x=0 in CCW edge order.
  EXPECT_TRUE(geometry::AlmostEqual(vaps[0], {1.0, -1.0}));
  EXPECT_TRUE(geometry::AlmostEqual(vaps[1], {7.0, 1.0}));
  EXPECT_TRUE(geometry::AlmostEqual(vaps[2], {1.0, 7.0}));
  EXPECT_TRUE(geometry::AlmostEqual(vaps[3], {-1.0, 1.0}));
}

TEST(VirtualApPositions, ReferenceOutsideThrows) {
  const Polygon sq = Polygon::Rectangle(0.0, 0.0, 4.0, 4.0);
  EXPECT_THROW(VirtualApPositions(sq, {9.0, 9.0}), std::logic_error);
}

TEST(BoundaryConstraints, ReproduceThePolygon) {
  // The VAP construction is exactly the polygon's interior: clipping a big
  // box by the boundary constraints recovers the square (paper Fig. 4).
  const Polygon sq = Polygon::Rectangle(1.0, 1.0, 5.0, 3.0);
  const auto constraints = BoundaryConstraints(sq, {2.0, 2.0}, 100.0);
  ASSERT_EQ(constraints.size(), 4u);
  std::vector<geometry::HalfPlane> hps;
  for (const auto& c : constraints) {
    hps.push_back(c.half_plane);
    EXPECT_TRUE(c.is_boundary);
    EXPECT_DOUBLE_EQ(c.weight, 100.0);
  }
  const Polygon big = Polygon::Rectangle(-20.0, -20.0, 20.0, 20.0);
  const auto region = geometry::IntersectConvex(big, hps);
  ASSERT_TRUE(region.has_value());
  EXPECT_NEAR(region->Area(), sq.Area(), 1e-6);
}

TEST(BoundaryConstraints, AnyInteriorReferenceGivesSameRegion) {
  // Paper: "the site of AP 1 could be any other site within the area".
  const Polygon sq = Polygon::Rectangle(0.0, 0.0, 6.0, 4.0);
  const Polygon big = Polygon::Rectangle(-20.0, -20.0, 20.0, 20.0);
  common::Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const Vec2 ref{rng.Uniform(0.1, 5.9), rng.Uniform(0.1, 3.9)};
    std::vector<geometry::HalfPlane> hps;
    for (const auto& c : BoundaryConstraints(sq, ref, 10.0))
      hps.push_back(c.half_plane);
    const auto region = geometry::IntersectConvex(big, hps);
    ASSERT_TRUE(region.has_value());
    EXPECT_NEAR(region->Area(), 24.0, 1e-6);
  }
}

TEST(BoundaryConstraints, TriangleWorks) {
  auto tri = Polygon::Create({{0.0, 0.0}, {6.0, 0.0}, {3.0, 5.0}});
  ASSERT_TRUE(tri.ok());
  const auto constraints = BoundaryConstraints(*tri, tri->Centroid(), 50.0);
  EXPECT_EQ(constraints.size(), 3u);
  for (const auto& c : constraints)
    EXPECT_TRUE(c.half_plane.Contains(tri->Centroid()));
}

TEST(BoundaryConstraints, NonPositiveWeightThrows) {
  const Polygon sq = Polygon::Rectangle(0.0, 0.0, 1.0, 1.0);
  EXPECT_THROW(BoundaryConstraints(sq, {0.5, 0.5}, 0.0), std::logic_error);
}

TEST(BoundaryConstraints, MatchPaperEq9Coefficients) {
  // Eq. 9–11: rows are 2(x_vap - x_ref), 2(y_vap - y_ref) <= |vap|^2-|ref|^2.
  const Polygon sq = Polygon::Rectangle(0.0, 0.0, 4.0, 4.0);
  const Vec2 ref{1.0, 1.0};
  const auto constraints = BoundaryConstraints(sq, ref, 10.0);
  const auto vaps = VirtualApPositions(sq, ref);
  ASSERT_EQ(constraints.size(), vaps.size());
  for (std::size_t i = 0; i < vaps.size(); ++i) {
    EXPECT_NEAR(constraints[i].half_plane.a.x, 2.0 * (vaps[i].x - ref.x),
                1e-12);
    EXPECT_NEAR(constraints[i].half_plane.a.y, 2.0 * (vaps[i].y - ref.y),
                1e-12);
    EXPECT_NEAR(constraints[i].half_plane.c,
                vaps[i].NormSq() - ref.NormSq(), 1e-12);
  }
}

}  // namespace
}  // namespace nomloc::localization
