#include "serving/circuit_breaker.h"

#include <gtest/gtest.h>

namespace nomloc::serving {
namespace {

CircuitBreakerConfig FastBreaker() {
  CircuitBreakerConfig config;
  config.failure_threshold = 3;
  config.base_backoff_s = 2.0;
  config.max_backoff_s = 8.0;
  return config;
}

TEST(CircuitBreakerConfig, ValidatesKnobs) {
  EXPECT_TRUE(FastBreaker().Validate().ok());
  CircuitBreakerConfig bad = FastBreaker();
  bad.failure_threshold = 0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = FastBreaker();
  bad.base_backoff_s = 0.0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = FastBreaker();
  bad.max_backoff_s = 1.0;  // below base
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(CircuitBreaker, TripsOnlyOnConsecutiveFailures) {
  CircuitBreaker breaker(FastBreaker());
  breaker.RecordFailure(0.0);
  breaker.RecordFailure(0.1);
  EXPECT_EQ(breaker.State(), BreakerState::kClosed);
  breaker.RecordSuccess(0.2);  // resets the run
  EXPECT_EQ(breaker.ConsecutiveFailures(), 0u);
  breaker.RecordFailure(0.3);
  breaker.RecordFailure(0.4);
  EXPECT_EQ(breaker.State(), BreakerState::kClosed);
  breaker.RecordFailure(0.5);  // third consecutive
  EXPECT_EQ(breaker.State(), BreakerState::kOpen);
  EXPECT_FALSE(breaker.Allow(0.6));
}

TEST(CircuitBreaker, HalfOpenAdmitsExactlyOneProbe) {
  CircuitBreaker breaker(FastBreaker());
  for (int i = 0; i < 3; ++i) breaker.RecordFailure(0.0);
  ASSERT_EQ(breaker.State(), BreakerState::kOpen);
  EXPECT_EQ(breaker.RetryAtSeconds(), 2.0);

  EXPECT_FALSE(breaker.Allow(1.9));  // backoff not elapsed
  EXPECT_TRUE(breaker.Allow(2.0));   // the probe
  EXPECT_EQ(breaker.State(), BreakerState::kHalfOpen);
  EXPECT_FALSE(breaker.Allow(2.0));  // probe outstanding
  EXPECT_FALSE(breaker.Allow(3.0));

  breaker.RecordSuccess(3.0);
  EXPECT_EQ(breaker.State(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.Allow(3.0));
  // The reclose reset the backoff for the next trip.
  EXPECT_EQ(breaker.CurrentBackoffSeconds(), 2.0);
}

TEST(CircuitBreaker, FailedProbeDoublesBackoffUpToCap) {
  CircuitBreaker breaker(FastBreaker());
  for (int i = 0; i < 3; ++i) breaker.RecordFailure(0.0);

  double now = 0.0;
  const double expected_backoffs[] = {2.0, 4.0, 8.0, 8.0};  // capped at 8
  for (double expected : expected_backoffs) {
    EXPECT_EQ(breaker.CurrentBackoffSeconds(), expected);
    now = breaker.RetryAtSeconds();
    ASSERT_TRUE(breaker.Allow(now));
    breaker.RecordFailure(now);  // probe fails, backoff doubles
    EXPECT_EQ(breaker.State(), BreakerState::kOpen);
  }
}

TEST(CircuitBreaker, StateNamesAreStable) {
  EXPECT_EQ(BreakerStateName(BreakerState::kClosed), "CLOSED");
  EXPECT_EQ(BreakerStateName(BreakerState::kOpen), "OPEN");
  EXPECT_EQ(BreakerStateName(BreakerState::kHalfOpen), "HALF_OPEN");
}

TEST(BreakerBank, IsolatesApsAndCountsUnhealthy) {
  BreakerBank bank(FastBreaker());
  EXPECT_TRUE(bank.Allow(1, 0.0));
  EXPECT_TRUE(bank.Allow(2, 0.0));
  for (int i = 0; i < 3; ++i) bank.RecordFailure(1, 0.0);

  EXPECT_EQ(bank.StateOf(1), BreakerState::kOpen);
  EXPECT_EQ(bank.StateOf(2), BreakerState::kClosed);
  EXPECT_FALSE(bank.Allow(1, 0.5));
  EXPECT_TRUE(bank.Allow(2, 0.5));  // AP 2 unaffected
  EXPECT_EQ(bank.UnhealthyCount(), 1u);

  // AP 1 recovers through its half-open probe.
  EXPECT_TRUE(bank.Allow(1, 2.0));
  bank.RecordSuccess(1, 2.0);
  EXPECT_EQ(bank.StateOf(1), BreakerState::kClosed);
  EXPECT_EQ(bank.UnhealthyCount(), 0u);
}

TEST(BreakerBank, UnknownApIsClosedByDefault) {
  BreakerBank bank(FastBreaker());
  EXPECT_EQ(bank.StateOf(42), BreakerState::kClosed);
  EXPECT_EQ(bank.UnhealthyCount(), 0u);
}

}  // namespace
}  // namespace nomloc::serving
