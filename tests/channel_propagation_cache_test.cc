#include "channel/propagation_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <vector>

#include "channel/environment.h"
#include "channel/propagation.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "geometry/polygon.h"

namespace nomloc::channel {
namespace {

using geometry::Polygon;
using geometry::Vec2;

IndoorEnvironment OfficeRoom() {
  std::vector<Wall> walls;
  walls.push_back({{{4.0, 0.0}, {4.0, 5.0}}, materials::Drywall()});
  std::vector<Obstacle> obstacles;
  obstacles.push_back(
      {Polygon::Rectangle(6.0, 2.0, 7.0, 3.0), materials::Metal()});
  auto env = IndoorEnvironment::Create(Polygon::Rectangle(0, 0, 10, 8),
                                       std::move(walls), std::move(obstacles));
  return std::move(env).value();
}

// Field-by-field exact comparison: the cache contract is bit-identity,
// not closeness.
void ExpectPathsIdentical(std::span<const PropagationPath> a,
                          std::span<const PropagationPath> b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].length_m, b[i].length_m) << "path " << i;
    EXPECT_EQ(a[i].loss_db, b[i].loss_db) << "path " << i;
    EXPECT_EQ(a[i].bounces, b[i].bounces) << "path " << i;
    EXPECT_EQ(a[i].is_direct, b[i].is_direct) << "path " << i;
    EXPECT_EQ(a[i].is_scatter, b[i].is_scatter) << "path " << i;
    EXPECT_EQ(a[i].aoa_rad, b[i].aoa_rad) << "path " << i;
  }
}

TEST(PropagationCache, CachedTraceBitIdenticalToUncached) {
  const IndoorEnvironment env = OfficeRoom();
  PropagationConfig cfg;
  cfg.max_reflection_order = 2;
  PropagationCache cache;
  const Vec2 tx{1.0, 1.0};
  for (const Vec2 rx : {Vec2{8.5, 6.5}, Vec2{5.0, 4.0}, Vec2{2.0, 7.0}}) {
    const auto cached = cache.Trace(env, tx, rx, cfg);
    const auto uncached = TracePaths(env, tx, rx, cfg);
    ExpectPathsIdentical(*cached, uncached);
  }
}

TEST(PropagationCache, RepeatHitReturnsTheSameSharedVector) {
  const IndoorEnvironment env = OfficeRoom();
  const PropagationConfig cfg;
  PropagationCache cache;
  const auto first = cache.Trace(env, {1, 1}, {9, 7}, cfg);
  const auto second = cache.Trace(env, {1, 1}, {9, 7}, cfg);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.Entries(), 1u);
}

TEST(PropagationCache, DistinctEndpointsAndConfigsGetDistinctEntries) {
  const IndoorEnvironment env = OfficeRoom();
  PropagationConfig cfg;
  PropagationCache cache;
  const auto a = cache.Trace(env, {1, 1}, {9, 7}, cfg);
  const auto b = cache.Trace(env, {1, 1}, {9, 6}, cfg);
  EXPECT_NE(a.get(), b.get());
  PropagationConfig cfg2 = cfg;
  cfg2.max_reflection_order = 2;
  const auto c = cache.Trace(env, {1, 1}, {9, 7}, cfg2);
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(cache.Entries(), 3u);
}

TEST(PropagationCache, EnvironmentMutationInvalidates) {
  IndoorEnvironment env = OfficeRoom();
  PropagationConfig cfg;
  cfg.include_scatterers = true;
  PropagationCache cache;
  const auto before = cache.Trace(env, {1, 1}, {9, 7}, cfg);

  common::Rng rng(7);
  env.PlaceScatterers(12, rng);  // Draws a fresh epoch.
  const auto after = cache.Trace(env, {1, 1}, {9, 7}, cfg);
  EXPECT_NE(before.get(), after.get());
  // The re-trace must see the new geometry (scatter paths appeared) and
  // match an uncached trace of the mutated environment exactly.
  EXPECT_GT(after->size(), before->size());
  ExpectPathsIdentical(*after, TracePaths(env, {1, 1}, {9, 7}, cfg));
  // The pre-mutation shared_ptr stays valid and unchanged.
  ExpectPathsIdentical(*before, *before);
}

TEST(PropagationCache, CopiedEnvironmentSharesEntries) {
  const IndoorEnvironment env = OfficeRoom();
  const IndoorEnvironment copy = env;  // Inherits the epoch stamp.
  const PropagationConfig cfg;
  PropagationCache cache;
  const auto a = cache.Trace(env, {1, 1}, {9, 7}, cfg);
  const auto b = cache.Trace(copy, {1, 1}, {9, 7}, cfg);
  EXPECT_EQ(a.get(), b.get());
}

TEST(PropagationCache, ClearDropsEntriesButKeepsResultsCorrect) {
  const IndoorEnvironment env = OfficeRoom();
  const PropagationConfig cfg;
  PropagationCache cache;
  const auto before = cache.Trace(env, {1, 1}, {9, 7}, cfg);
  cache.Clear();
  EXPECT_EQ(cache.Entries(), 0u);
  const auto after = cache.Trace(env, {1, 1}, {9, 7}, cfg);
  EXPECT_NE(before.get(), after.get());  // Rebuilt, not resurrected.
  ExpectPathsIdentical(*before, *after);
}

TEST(PropagationCache, MemoizedImagesMatchDirectBuild) {
  const IndoorEnvironment env = OfficeRoom();
  PropagationCache cache;
  const auto memo = cache.Images(env, {1.5, 2.5}, 2);
  const TxImageTree direct = BuildTxImageTree(env, {1.5, 2.5}, 2);
  ASSERT_EQ(memo->candidates.size(), direct.candidates.size());
  for (std::size_t i = 0; i < direct.candidates.size(); ++i) {
    EXPECT_EQ(memo->candidates[i].walls, direct.candidates[i].walls);
    ASSERT_EQ(memo->candidates[i].images.size(),
              direct.candidates[i].images.size());
    for (std::size_t j = 0; j < direct.candidates[i].images.size(); ++j) {
      EXPECT_EQ(memo->candidates[i].images[j].x,
                direct.candidates[i].images[j].x);
      EXPECT_EQ(memo->candidates[i].images[j].y,
                direct.candidates[i].images[j].y);
    }
  }
  EXPECT_EQ(cache.Images(env, {1.5, 2.5}, 2).get(), memo.get());
  EXPECT_NE(cache.Images(env, {1.5, 2.5}, 1).get(), memo.get());
}

TEST(PropagationCache, ClearTracesKeepsImageTrees) {
  const IndoorEnvironment env = OfficeRoom();
  const PropagationConfig cfg;
  PropagationCache cache;
  (void)cache.Trace(env, {1, 1}, {9, 7}, cfg);
  const auto tree = cache.Images(env, {1, 1}, cfg.max_reflection_order);
  ASSERT_EQ(cache.Entries(), 1u);

  cache.ClearTraces();
  EXPECT_EQ(cache.Entries(), 0u);  // Traces gone...
  // ...but the per-tx image tree survives: the same pointer comes back.
  EXPECT_EQ(cache.Images(env, {1, 1}, cfg.max_reflection_order).get(),
            tree.get());

  cache.Clear();  // Full clear drops the trees too.
  EXPECT_NE(cache.Images(env, {1, 1}, cfg.max_reflection_order).get(),
            tree.get());
}

TEST(PropagationCache, ImageBytesTracksMemoizedTrees) {
  const IndoorEnvironment env = OfficeRoom();
  PropagationCache cache;
  EXPECT_EQ(cache.ImageBytes(), 0u);
  const auto tree = cache.Images(env, {1, 1}, 2);
  EXPECT_EQ(cache.ImageBytes(), tree->ApproxBytes());
  (void)cache.Images(env, {2, 2}, 2);
  EXPECT_GT(cache.ImageBytes(), tree->ApproxBytes());
  cache.Clear();
  EXPECT_EQ(cache.ImageBytes(), 0u);
}

TEST(PropagationCache, ImageByteBudgetBoundsMemory) {
  // A deliberately tiny budget: the cache must keep working (outstanding
  // shared_ptrs stay valid) while never holding more than one shard's
  // budget worth of trees per shard.
  const IndoorEnvironment env = OfficeRoom();
  const std::size_t tree_bytes = BuildTxImageTree(env, {0.5, 1.0}, 2)
                                     .ApproxBytes();  // All trees equal here.
  const std::size_t budget = 2 * tree_bytes + 64;  // Two trees per shard.
  PropagationCache cache(budget);
  std::vector<std::shared_ptr<const TxImageTree>> held;
  for (int i = 0; i < 64; ++i) {
    held.push_back(cache.Images(env, {0.5 + 0.1 * double(i), 1.0}, 2));
    ASSERT_LE(cache.ImageBytes(), 16u * budget);  // kShardCount shards.
  }
  // Eviction actually fired: far fewer than 64 trees remain memoized.
  EXPECT_LT(cache.ImageBytes(), 64u * tree_bytes);
  // Every handed-out tree is still alive and matches a fresh build.
  const TxImageTree direct = BuildTxImageTree(env, {0.5, 1.0}, 2);
  ASSERT_EQ(held.front()->candidates.size(), direct.candidates.size());
}

TEST(PropagationCache, ConcurrentHammerStaysConsistent) {
  // Many threads trace a small working set while one periodically clears;
  // every result must equal the uncached reference.  Run under TSan to
  // check the sharded locking.
  const IndoorEnvironment env = OfficeRoom();
  PropagationConfig cfg;
  cfg.max_reflection_order = 2;
  PropagationCache cache;

  const std::vector<Vec2> sites{{1, 1}, {9, 7}, {5, 4}, {2, 7},
                                {8, 1}, {3, 3}, {6, 6}, {9, 2}};
  std::vector<std::vector<PropagationPath>> reference;
  for (const Vec2 rx : sites)
    reference.push_back(TracePaths(env, sites[0], rx, cfg));

  common::ThreadPool pool(8);
  std::atomic<std::size_t> mismatches{0};
  pool.ParallelFor(256, [&](std::size_t task) {
    if (task % 64 == 63) {
      cache.Clear();
      return;
    }
    const std::size_t s = task % sites.size();
    const auto got = cache.Trace(env, sites[0], sites[s], cfg);
    const auto& want = reference[s];
    if (got->size() != want.size()) {
      ++mismatches;
      return;
    }
    for (std::size_t i = 0; i < want.size(); ++i)
      if ((*got)[i].length_m != want[i].length_m ||
          (*got)[i].loss_db != want[i].loss_db)
        ++mismatches;
  });
  EXPECT_EQ(mismatches.load(), 0u);
}

}  // namespace
}  // namespace nomloc::channel
