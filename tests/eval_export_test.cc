#include "eval/export.h"

#include <gtest/gtest.h>

namespace nomloc::eval {
namespace {

RunResult SmallResult() {
  RunResult result;
  SiteResult a;
  a.site = {2.0, 1.5};
  a.trial_errors_m = {1.0, 2.0};
  a.mean_error_m = 1.5;
  SiteResult b;
  b.site = {6.0, 4.0};
  b.trial_errors_m = {0.5};
  b.mean_error_m = 0.5;
  result.sites = {a, b};
  result.slv = common::SpatialLocalizabilityVariance(
      result.SiteMeanErrors());
  return result;
}

TEST(ScenarioExport, ContainsAllGeometry) {
  const common::Json json = ScenarioToJson(LabScenario());
  EXPECT_EQ(*json.GetString("name"), "lab");
  EXPECT_EQ(json.Get("boundary")->AsArray().size(), 4u);
  EXPECT_EQ(json.Get("static_aps")->AsArray().size(), 4u);
  EXPECT_EQ(json.Get("nomadic_sites")->AsArray().size(), 4u);
  EXPECT_EQ(json.Get("test_sites")->AsArray().size(), 10u);
  EXPECT_EQ(json.Get("obstacles")->AsArray().size(), 6u);
  EXPECT_EQ(json.Get("scatterers")->AsArray().size(), 24u);
}

TEST(ScenarioExport, ObstaclesCarryMaterialNames) {
  const common::Json json = ScenarioToJson(LabScenario());
  auto obstacles_result = json.Get("obstacles");
  ASSERT_TRUE(obstacles_result.ok());
  const auto& obstacles = obstacles_result->AsArray();
  bool has_metal = false, has_desk = false;
  for (const auto& o : obstacles) {
    const std::string name = *o.GetString("material");
    has_metal |= name == "metal";
    has_desk |= name == "desk+pc";
    EXPECT_GE(o.Get("vertices")->AsArray().size(), 3u);
  }
  EXPECT_TRUE(has_metal);
  EXPECT_TRUE(has_desk);
}

TEST(ScenarioExport, SerializesAndParses) {
  const common::Json json = ScenarioToJson(LobbyScenario());
  auto parsed = common::Json::Parse(json.Dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, json);
}

TEST(RunResultExport, RoundTripsThroughJsonText) {
  const RunResult original = SmallResult();
  const common::Json json = RunResultToJson(original);
  auto parsed_json = common::Json::Parse(json.Dump());
  ASSERT_TRUE(parsed_json.ok());
  auto restored = RunResultFromJson(*parsed_json);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  ASSERT_EQ(restored->sites.size(), original.sites.size());
  for (std::size_t i = 0; i < original.sites.size(); ++i) {
    EXPECT_EQ(restored->sites[i].site, original.sites[i].site);
    EXPECT_EQ(restored->sites[i].trial_errors_m,
              original.sites[i].trial_errors_m);
    EXPECT_DOUBLE_EQ(restored->sites[i].mean_error_m,
                     original.sites[i].mean_error_m);
  }
  EXPECT_DOUBLE_EQ(restored->slv, original.slv);
}

TEST(RunResultExport, IncludesSummaryStats) {
  const common::Json json = RunResultToJson(SmallResult());
  EXPECT_TRUE(json.GetDouble("mean_error_m").ok());
  EXPECT_TRUE(json.GetDouble("p50_m").ok());
  EXPECT_TRUE(json.GetDouble("p90_m").ok());
  EXPECT_TRUE(json.GetDouble("slv_m2").ok());
}

TEST(RunResultImport, RejectsSchemaViolations) {
  EXPECT_FALSE(RunResultFromJson(common::Json(1.0)).ok());
  auto no_sites = common::Json::Parse(R"({"slv_m2": 0.0})");
  ASSERT_TRUE(no_sites.ok());
  EXPECT_FALSE(RunResultFromJson(*no_sites).ok());
  auto bad_site = common::Json::Parse(
      R"({"sites": [{"position": "oops"}], "slv_m2": 0.0})");
  ASSERT_TRUE(bad_site.ok());
  EXPECT_FALSE(RunResultFromJson(*bad_site).ok());
}

TEST(RunResultExport, RealRunExportsCleanly) {
  RunConfig cfg;
  cfg.packets_per_batch = 10;
  cfg.trials = 2;
  cfg.dwell_count = 4;
  cfg.seed = 5;
  auto result = RunLocalization(LabScenario(), cfg);
  ASSERT_TRUE(result.ok());
  const common::Json json = RunResultToJson(*result);
  auto restored = RunResultFromJson(json);
  ASSERT_TRUE(restored.ok());
  EXPECT_DOUBLE_EQ(restored->slv, result->slv);
  EXPECT_EQ(restored->sites.size(), result->sites.size());
}

}  // namespace
}  // namespace nomloc::eval
