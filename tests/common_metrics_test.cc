#include "common/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace nomloc::common {
namespace {

TEST(MetricCounter, ConcurrentIncrementsAreLossless) {
  MetricRegistry registry;
  MetricCounter& counter = registry.Counter("test.hits");
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 10'000;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t)
    workers.emplace_back([&counter] {
      for (std::size_t i = 0; i < kPerThread; ++i) counter.Increment();
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(MetricCounter, LabelledSeriesAreIndependent) {
  MetricRegistry registry;
  registry.Counter("lp.solves", "backend=simplex").Increment(3);
  registry.Counter("lp.solves", "backend=ipm").Increment(5);
  EXPECT_EQ(registry.Counter("lp.solves", "backend=simplex").Value(), 3u);
  EXPECT_EQ(registry.Counter("lp.solves", "backend=ipm").Value(), 5u);
  // The unlabelled series is yet another series.
  EXPECT_EQ(registry.Counter("lp.solves").Value(), 0u);
}

TEST(MetricRegistry, ReturnsSameSeriesForSameKey) {
  MetricRegistry registry;
  MetricCounter& a = registry.Counter("x");
  registry.Counter("y").Increment();  // Force a second node.
  MetricCounter& b = registry.Counter("x");
  EXPECT_EQ(&a, &b);
}

TEST(MetricHistogram, MomentsAndExtremes) {
  MetricHistogram hist(1e-3, 1e3, 60);
  for (double x : {1.0, 2.0, 3.0, 4.0}) hist.Record(x);
  EXPECT_EQ(hist.Count(), 4u);
  EXPECT_DOUBLE_EQ(hist.Sum(), 10.0);
  EXPECT_DOUBLE_EQ(hist.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(hist.Min(), 1.0);
  EXPECT_DOUBLE_EQ(hist.Max(), 4.0);
}

TEST(MetricHistogram, QuantilesAccurateToOneBucket) {
  // 1000 samples uniform over [1, 100]; with 40 buckets per two decades
  // the geometric bucket width near x is ~12% of x.
  MetricHistogram hist(0.1, 1000.0, 80);
  for (int i = 1; i <= 1000; ++i) hist.Record(1.0 + 99.0 * (i - 1) / 999.0);
  EXPECT_NEAR(hist.Quantile(0.5), 50.5, 50.5 * 0.15);
  EXPECT_NEAR(hist.Quantile(0.9), 90.1, 90.1 * 0.15);
  // Extreme quantiles clamp to the exact observed range.
  EXPECT_GE(hist.Quantile(0.0), 1.0);
  EXPECT_LE(hist.Quantile(1.0), 100.0);
}

TEST(MetricHistogram, ClampsOutOfRangeSamples) {
  MetricHistogram hist(1.0, 10.0, 4);
  hist.Record(0.001);   // Below lo -> first bucket.
  hist.Record(1e9);     // Above hi -> last bucket.
  EXPECT_EQ(hist.Count(), 2u);
  EXPECT_DOUBLE_EQ(hist.Min(), 0.001);
  EXPECT_DOUBLE_EQ(hist.Max(), 1e9);
}

TEST(MetricHistogram, ConcurrentRecordsAreLossless) {
  MetricHistogram hist(1e-3, 1e3, 60);
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 5'000;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t)
    workers.emplace_back([&hist, t] {
      for (std::size_t i = 0; i < kPerThread; ++i)
        hist.Record(double(t + 1));
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(hist.Count(), kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(hist.Min(), 1.0);
  EXPECT_DOUBLE_EQ(hist.Max(), 8.0);
  EXPECT_DOUBLE_EQ(hist.Mean(), 4.5);
}

TEST(MetricTimer, AccumulatesDurations) {
  MetricRegistry registry;
  MetricTimer& timer = registry.Timer("stage");
  timer.RecordSeconds(0.5);
  timer.RecordSeconds(1.5);
  EXPECT_EQ(timer.Count(), 2u);
  EXPECT_DOUBLE_EQ(timer.TotalSeconds(), 2.0);
  EXPECT_DOUBLE_EQ(timer.MeanSeconds(), 1.0);
}

TEST(StageTrace, RecordsScopeDurationOnce) {
  MetricRegistry registry;
  MetricTimer& timer = registry.Timer("scope");
  {
    StageTrace trace(timer);
    const double elapsed = trace.Stop();
    EXPECT_GE(elapsed, 0.0);
    EXPECT_DOUBLE_EQ(trace.Stop(), elapsed);  // Idempotent.
  }  // Destructor must not double-record after Stop().
  EXPECT_EQ(timer.Count(), 1u);
  {
    StageTrace trace(timer);  // Records via destructor.
  }
  EXPECT_EQ(timer.Count(), 2u);
}

TEST(MetricRegistry, DumpTextFormat) {
  MetricRegistry registry;
  registry.Counter("alpha.count").Increment(7);
  registry.Counter("lp.solves", "backend=simplex").Increment(2);
  registry.Histogram("beta.dist", {}, 0.1, 10.0, 8).Record(1.0);
  registry.Timer("gamma.stage").RecordSeconds(0.25);
  const std::string dump = registry.DumpText();
  EXPECT_NE(dump.find("counter alpha.count 7"), std::string::npos) << dump;
  EXPECT_NE(dump.find("counter lp.solves{backend=simplex} 2"),
            std::string::npos)
      << dump;
  EXPECT_NE(dump.find("histogram beta.dist count=1"), std::string::npos)
      << dump;
  EXPECT_NE(dump.find("timer gamma.stage count=1"), std::string::npos)
      << dump;
  EXPECT_NE(dump.find("p50="), std::string::npos) << dump;
}

TEST(MetricRegistry, DumpJsonIsValidAndComplete) {
  MetricRegistry registry;
  registry.Counter("alpha").Increment(3);
  registry.Timer("beta").RecordSeconds(1.0);
  const std::string dump = registry.DumpJson();
  EXPECT_NE(dump.find("\"counters\""), std::string::npos) << dump;
  EXPECT_NE(dump.find("\"alpha\": 3"), std::string::npos) << dump;
  EXPECT_NE(dump.find("\"timers\""), std::string::npos) << dump;
  EXPECT_NE(dump.find("\"total_s\": 1"), std::string::npos) << dump;
}

TEST(MetricRegistry, ResetAllZeroesButKeepsSeries) {
  MetricRegistry registry;
  MetricCounter& counter = registry.Counter("keep.me");
  counter.Increment(9);
  MetricHistogram& hist = registry.Histogram("keep.dist");
  hist.Record(1.0);
  registry.ResetAll();
  EXPECT_EQ(counter.Value(), 0u);
  EXPECT_EQ(hist.Count(), 0u);
  EXPECT_EQ(hist.Quantile(0.5), 0.0);
  // The references stay usable.
  counter.Increment();
  EXPECT_EQ(counter.Value(), 1u);
}

TEST(MetricRegistry, GlobalIsASingleton) {
  EXPECT_EQ(&MetricRegistry::Global(), &MetricRegistry::Global());
}

}  // namespace
}  // namespace nomloc::common
