// Open-loop load generator: deterministic schedules, monotone arrival
// offsets, Zipf popularity skew, and arrival-process shaping.
#include "serving/loadgen.h"

#include <algorithm>
#include <cmath>
#include <map>

#include <gtest/gtest.h>

namespace nomloc::serving {
namespace {

LoadGenConfig SmallConfig() {
  LoadGenConfig config;
  config.objects = 100;
  config.anchors_per_object = 3;
  config.packets = 5000;
  config.rate_per_s = 10'000.0;
  config.seed = 42;
  return config;
}

TEST(LoadGen, SameSeedSameSchedule) {
  const LoadSchedule a = BuildLoadSchedule(SmallConfig());
  const LoadSchedule b = BuildLoadSchedule(SmallConfig());
  ASSERT_EQ(a.populate.size(), b.populate.size());
  ASSERT_EQ(a.steady.size(), b.steady.size());
  EXPECT_EQ(a.horizon_s, b.horizon_s);
  for (std::size_t i = 0; i < a.steady.size(); ++i) {
    EXPECT_EQ(a.steady[i].send_offset_s, b.steady[i].send_offset_s);
    EXPECT_EQ(a.steady[i].packet.object_id, b.steady[i].packet.object_id);
    EXPECT_EQ(a.steady[i].packet.kind, b.steady[i].packet.kind);
  }
}

TEST(LoadGen, DifferentSeedDifferentSchedule) {
  LoadGenConfig other = SmallConfig();
  other.seed = 43;
  const LoadSchedule a = BuildLoadSchedule(SmallConfig());
  const LoadSchedule b = BuildLoadSchedule(other);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.steady.size() && !any_difference; ++i)
    any_difference = a.steady[i].send_offset_s != b.steady[i].send_offset_s;
  EXPECT_TRUE(any_difference);
}

TEST(LoadGen, PopulateCoversEveryObjectAnchorPair) {
  const LoadGenConfig config = SmallConfig();
  const LoadSchedule schedule = BuildLoadSchedule(config);
  ASSERT_EQ(schedule.populate.size(),
            config.objects * config.anchors_per_object);
  std::map<std::pair<std::uint64_t, int>, int> seen;
  for (const IngestPacket& packet : schedule.populate) {
    EXPECT_EQ(packet.kind, PacketKind::kObservation);
    EXPECT_EQ(packet.timestamp_s, 0.0);
    EXPECT_GT(packet.pdp, 0.0);
    ++seen[{packet.object_id, packet.ap_id}];
  }
  EXPECT_EQ(seen.size(), config.objects * config.anchors_per_object);
  for (const auto& [key, count] : seen) EXPECT_EQ(count, 1);
}

TEST(LoadGen, SteadyOffsetsAreSortedAndPositive) {
  const LoadSchedule schedule = BuildLoadSchedule(SmallConfig());
  double previous = 0.0;
  for (const ScheduledPacket& scheduled : schedule.steady) {
    EXPECT_GE(scheduled.send_offset_s, previous);
    EXPECT_EQ(scheduled.packet.timestamp_s, scheduled.send_offset_s);
    previous = scheduled.send_offset_s;
  }
  EXPECT_EQ(schedule.horizon_s, previous);
}

TEST(LoadGen, PoissonRateMatchesMean) {
  LoadGenConfig config = SmallConfig();
  config.packets = 20'000;
  const LoadSchedule schedule = BuildLoadSchedule(config);
  const double empirical =
      double(schedule.steady.size()) / schedule.horizon_s;
  EXPECT_NEAR(empirical, config.rate_per_s, 0.05 * config.rate_per_s);
}

TEST(LoadGen, ZipfSkewsTowardLowRanks) {
  LoadGenConfig config = SmallConfig();
  config.zipf_s = 1.0;
  config.packets = 20'000;
  const LoadSchedule schedule = BuildLoadSchedule(config);
  std::vector<std::size_t> hits(config.objects, 0);
  for (const ScheduledPacket& scheduled : schedule.steady)
    ++hits[std::size_t(scheduled.packet.object_id)];
  // Rank 0 must dominate the median object by a wide margin.
  std::vector<std::size_t> sorted = hits;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_GT(hits[0], 10 * sorted[config.objects / 2]);
  // s = 0 degrades to uniform: the hottest object stays near 1/n.
  LoadGenConfig uniform = config;
  uniform.zipf_s = 0.0;
  const LoadSchedule flat = BuildLoadSchedule(uniform);
  std::vector<std::size_t> flat_hits(config.objects, 0);
  for (const ScheduledPacket& scheduled : flat.steady)
    ++flat_hits[std::size_t(scheduled.packet.object_id)];
  const double expected = double(config.packets) / double(config.objects);
  EXPECT_LT(double(*std::max_element(flat_hits.begin(), flat_hits.end())),
            3.0 * expected);
}

TEST(LoadGen, FlashCrowdDensifiesTheWindow) {
  LoadGenConfig config = SmallConfig();
  config.arrival = ArrivalProcess::kFlashCrowd;
  config.packets = 20'000;
  config.rate_per_s = 10'000.0;
  config.flash_start_s = 0.5;
  config.flash_duration_s = 0.5;
  config.flash_multiplier = 8.0;
  const LoadSchedule schedule = BuildLoadSchedule(config);
  // Compare equal-width 0.1 s slices just before and just inside the
  // window; the flash slice should be ~8x denser.
  std::size_t inside = 0, before = 0;
  for (const ScheduledPacket& scheduled : schedule.steady) {
    const double t = scheduled.send_offset_s;
    if (t >= config.flash_start_s - 0.1 && t < config.flash_start_s)
      ++before;
    else if (t >= config.flash_start_s && t < config.flash_start_s + 0.1)
      ++inside;
  }
  ASSERT_GT(before, 0u);
  ASSERT_GT(inside, 0u);
  EXPECT_GT(double(inside), 4.0 * double(before));
}

TEST(LoadGen, DiurnalKeepsMeanRate) {
  LoadGenConfig config = SmallConfig();
  config.arrival = ArrivalProcess::kDiurnal;
  config.packets = 20'000;
  config.diurnal_period_s = 0.25;  // several full cycles in the horizon
  config.diurnal_amplitude = 0.8;
  const LoadSchedule schedule = BuildLoadSchedule(config);
  const double empirical =
      double(schedule.steady.size()) / schedule.horizon_s;
  // Over whole cycles the sin term integrates away.
  EXPECT_NEAR(empirical, config.rate_per_s, 0.10 * config.rate_per_s);
}

TEST(LoadGen, QueryFractionRespected) {
  LoadGenConfig config = SmallConfig();
  config.query_fraction = 0.25;
  config.packets = 20'000;
  const LoadSchedule schedule = BuildLoadSchedule(config);
  std::size_t queries = 0;
  for (const ScheduledPacket& scheduled : schedule.steady)
    if (scheduled.packet.kind == PacketKind::kQuery) ++queries;
  EXPECT_NEAR(double(queries) / double(config.packets), 0.25, 0.03);
}

TEST(LoadGen, ValidateRejectsBadKnobs) {
  LoadGenConfig config = SmallConfig();
  config.objects = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = SmallConfig();
  config.rate_per_s = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config = SmallConfig();
  config.query_fraction = 1.5;
  EXPECT_FALSE(config.Validate().ok());
  config = SmallConfig();
  config.diurnal_amplitude = 1.0;
  EXPECT_FALSE(config.Validate().ok());
  config = SmallConfig();
  config.flash_multiplier = 0.5;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(LoadGen, ArrivalProcessNames) {
  EXPECT_EQ(ArrivalProcessName(ArrivalProcess::kPoisson), "poisson");
  EXPECT_EQ(ArrivalProcessName(ArrivalProcess::kDiurnal), "diurnal");
  EXPECT_EQ(ArrivalProcessName(ArrivalProcess::kFlashCrowd), "flash");
  ASSERT_TRUE(ParseArrivalProcessName("poisson").ok());
  ASSERT_TRUE(ParseArrivalProcessName("diurnal").ok());
  ASSERT_TRUE(ParseArrivalProcessName("flash").ok());
  EXPECT_FALSE(ParseArrivalProcessName("bursty").ok());
}

}  // namespace
}  // namespace nomloc::serving
