#include "channel/statistical.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "channel/csi_model.h"
#include "common/stats.h"
#include "dsp/cir.h"

namespace nomloc::channel {
namespace {

TEST(SalehValenzuela, ProducesDirectPlusClusterRays) {
  common::Rng rng(1);
  SalehValenzuelaConfig cfg;
  auto paths = SampleSalehValenzuela(8.0, cfg, rng);
  ASSERT_TRUE(paths.ok());
  EXPECT_EQ(paths->size(), 1 + cfg.clusters * cfg.rays_per_cluster);
  EXPECT_TRUE(paths->front().is_direct);
  EXPECT_NEAR(paths->front().length_m, 8.0, 1e-12);
}

TEST(SalehValenzuela, PathsSortedAndDelayed) {
  common::Rng rng(2);
  auto paths = SampleSalehValenzuela(10.0, {}, rng);
  ASSERT_TRUE(paths.ok());
  for (std::size_t i = 1; i < paths->size(); ++i) {
    EXPECT_GE((*paths)[i].length_m, (*paths)[i - 1].length_m);
    EXPECT_GE((*paths)[i].length_m, 10.0);
  }
}

TEST(SalehValenzuela, Validation) {
  common::Rng rng(3);
  EXPECT_FALSE(SampleSalehValenzuela(0.0, {}, rng).ok());
  SalehValenzuelaConfig bad;
  bad.clusters = 0;
  EXPECT_FALSE(SampleSalehValenzuela(5.0, bad, rng).ok());
  bad = SalehValenzuelaConfig{};
  bad.ray_decay_ns = 0.0;
  EXPECT_FALSE(SampleSalehValenzuela(5.0, bad, rng).ok());
}

TEST(SalehValenzuela, NlosAttenuatesDirectPath) {
  common::Rng r1(4), r2(4);
  SalehValenzuelaConfig los;
  SalehValenzuelaConfig nlos = los;
  nlos.line_of_sight = false;
  auto p_los = SampleSalehValenzuela(8.0, los, r1);
  auto p_nlos = SampleSalehValenzuela(8.0, nlos, r2);
  ASSERT_TRUE(p_los.ok());
  ASSERT_TRUE(p_nlos.ok());
  EXPECT_NEAR(p_nlos->front().loss_db - p_los->front().loss_db,
              nlos.nlos_extra_loss_db, 1e-12);
  // Multipath tail identical (same RNG stream).
  EXPECT_NEAR((*p_nlos)[1].loss_db, (*p_los)[1].loss_db, 1e-12);
}

TEST(SalehValenzuela, LongerDecayIncreasesDelaySpread) {
  SalehValenzuelaConfig fast;
  fast.cluster_decay_ns = 10.0;
  fast.ray_decay_ns = 3.0;
  SalehValenzuelaConfig slow;
  slow.cluster_decay_ns = 80.0;
  slow.ray_decay_ns = 25.0;
  common::RunningStats spread_fast, spread_slow;
  common::Rng rng(5);
  for (int i = 0; i < 60; ++i) {
    auto pf = SampleSalehValenzuela(8.0, fast, rng);
    auto ps = SampleSalehValenzuela(8.0, slow, rng);
    ASSERT_TRUE(pf.ok());
    ASSERT_TRUE(ps.ok());
    spread_fast.Add(RmsDelaySpread(*pf));
    spread_slow.Add(RmsDelaySpread(*ps));
  }
  EXPECT_GT(spread_slow.Mean(), 1.5 * spread_fast.Mean());
}

TEST(RmsDelaySpread, SinglePathIsZero) {
  std::vector<PropagationPath> one(1);
  one[0].length_m = 5.0;
  one[0].loss_db = 60.0;
  EXPECT_NEAR(RmsDelaySpread(one), 0.0, 1e-15);
}

TEST(RmsDelaySpread, TwoEqualPathsHalfSeparation) {
  std::vector<PropagationPath> two(2);
  two[0].length_m = 0.0;
  two[0].loss_db = 60.0;
  two[1].length_m = common::kSpeedOfLight * 1e-6;  // Exactly 1 us later.
  two[1].loss_db = 60.0;
  EXPECT_NEAR(RmsDelaySpread(two), 0.5e-6, 1e-12);
}

// The statistical model feeds the same LinkModel/CSI pipeline as the ray
// tracer — the PDP stage must behave identically: monotone in distance,
// lower under NLOS.
TEST(SalehValenzuelaIntegration, PdpMonotoneInDistance) {
  ChannelConfig ccfg;
  common::Rng rng(7);
  double prev = 1e18;
  for (double d : {3.0, 6.0, 12.0, 24.0}) {
    common::RunningStats pdp;
    for (int i = 0; i < 20; ++i) {
      auto paths = SampleSalehValenzuela(d, {}, rng);
      ASSERT_TRUE(paths.ok());
      const LinkModel link(std::move(paths).value(), ccfg);
      const auto frames = link.SampleBatch(20, rng);
      pdp.Add(dsp::PdpOfBatch(frames, ccfg.bandwidth_hz));
    }
    EXPECT_LT(pdp.Mean(), prev);
    prev = pdp.Mean();
  }
}

TEST(SalehValenzuelaIntegration, NlosLowersPdp) {
  ChannelConfig ccfg;
  common::Rng rng(9);
  auto mean_pdp = [&](bool los) {
    SalehValenzuelaConfig cfg;
    cfg.line_of_sight = los;
    common::RunningStats stats;
    for (int i = 0; i < 30; ++i) {
      auto paths = SampleSalehValenzuela(8.0, cfg, rng);
      const LinkModel link(std::move(paths).value(), ccfg);
      stats.Add(dsp::PdpOfBatch(link.SampleBatch(15, rng),
                                ccfg.bandwidth_hz));
    }
    return stats.Mean();
  };
  EXPECT_GT(mean_pdp(true), 2.0 * mean_pdp(false));
}

}  // namespace
}  // namespace nomloc::channel
