#include "common/json.h"

#include <gtest/gtest.h>

#include <cmath>

namespace nomloc::common {
namespace {

TEST(Json, DefaultIsNull) {
  Json j;
  EXPECT_TRUE(j.is_null());
  EXPECT_EQ(j.Dump(), "null");
}

TEST(Json, Scalars) {
  EXPECT_EQ(Json(true).Dump(), "true");
  EXPECT_EQ(Json(false).Dump(), "false");
  EXPECT_EQ(Json(42).Dump(), "42");
  EXPECT_EQ(Json(2.5).Dump(), "2.5");
  EXPECT_EQ(Json(-7).Dump(), "-7");
  EXPECT_EQ(Json("hi").Dump(), "\"hi\"");
}

TEST(Json, TypedAccessorsEnforceTypes) {
  Json j(3.0);
  EXPECT_DOUBLE_EQ(j.AsDouble(), 3.0);
  EXPECT_THROW(j.AsBool(), std::logic_error);
  EXPECT_THROW(j.AsString(), std::logic_error);
  EXPECT_THROW(j.AsArray(), std::logic_error);
  EXPECT_THROW(j.AsObject(), std::logic_error);
}

TEST(Json, ArraysAndObjects) {
  Json j(JsonObject{{"a", Json(1)}, {"b", Json(JsonArray{Json(2), Json(3)})}});
  EXPECT_EQ(j.Dump(), "{\"a\":1,\"b\":[2,3]}");
}

TEST(Json, ObjectKeysSortedDeterministically) {
  Json j(JsonObject{{"z", Json(1)}, {"a", Json(2)}, {"m", Json(3)}});
  EXPECT_EQ(j.Dump(), "{\"a\":2,\"m\":3,\"z\":1}");
}

TEST(Json, StringEscaping) {
  Json j(std::string("a\"b\\c\nd\te\x01"));
  EXPECT_EQ(j.Dump(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
}

TEST(Json, NonFiniteNumberRejectedAtDump) {
  Json j(std::nan(""));
  EXPECT_THROW(j.Dump(), std::logic_error);
}

TEST(Json, GetHelpers) {
  Json j(JsonObject{{"num", Json(2.5)},
                    {"str", Json("x")},
                    {"flag", Json(true)}});
  EXPECT_DOUBLE_EQ(*j.GetDouble("num"), 2.5);
  EXPECT_EQ(*j.GetString("str"), "x");
  EXPECT_TRUE(*j.GetBool("flag"));
  EXPECT_EQ(j.GetDouble("str").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(j.GetDouble("missing").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(Json(1).Get("x").status().code(), StatusCode::kNotFound);
}

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(Json::Parse("null")->is_null());
  EXPECT_TRUE(Json::Parse("true")->AsBool());
  EXPECT_FALSE(Json::Parse("false")->AsBool());
  EXPECT_DOUBLE_EQ(Json::Parse("3.25")->AsDouble(), 3.25);
  EXPECT_DOUBLE_EQ(Json::Parse("-1e3")->AsDouble(), -1000.0);
  EXPECT_EQ(Json::Parse("\"abc\"")->AsString(), "abc");
}

TEST(JsonParse, NestedStructures) {
  auto j = Json::Parse(R"( { "a" : [1, 2, {"b": null}], "c": "d" } )");
  ASSERT_TRUE(j.ok()) << j.status().ToString();
  // Keep the Result alive while referencing into it.
  auto a = j->Get("a");
  ASSERT_TRUE(a.ok());
  const auto& arr = a->AsArray();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_TRUE(arr[2].Get("b")->is_null());
  EXPECT_EQ(*j->GetString("c"), "d");
}

TEST(JsonParse, StringEscapes) {
  auto j = Json::Parse(R"("a\"b\\c\ndAé")");
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j->AsString(), "a\"b\\c\ndA\xc3\xa9");
}

TEST(JsonParse, RejectsMalformedInputs) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\"}", "{\"a\":}", "tru", "01x", "\"unterminated",
        "[1] garbage", "{'single':1}", "\"bad\\q\"", "nan", "[1 2]"}) {
    EXPECT_FALSE(Json::Parse(bad).ok()) << bad;
  }
}

TEST(JsonParse, RejectsExcessiveNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  for (int i = 0; i < 200; ++i) deep += ']';
  EXPECT_FALSE(Json::Parse(deep).ok());
}

TEST(JsonParse, RejectsSurrogateEscapes) {
  EXPECT_FALSE(Json::Parse("\"\\ud800\"").ok());
}

TEST(JsonRoundTrip, DumpParseIsIdentity) {
  Json original(JsonObject{
      {"name", Json("lab")},
      {"values", Json(JsonArray{Json(1.5), Json(-2.25), Json(1e-9)})},
      {"nested", Json(JsonObject{{"ok", Json(true)}, {"n", Json(nullptr)}})},
      {"empty_arr", Json(JsonArray{})},
      {"empty_obj", Json(JsonObject{})},
  });
  auto parsed = Json::Parse(original.Dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, original);
  // Pretty output parses back too.
  auto parsed_pretty = Json::Parse(original.DumpPretty());
  ASSERT_TRUE(parsed_pretty.ok());
  EXPECT_EQ(*parsed_pretty, original);
}

TEST(JsonRoundTrip, DoublePrecisionPreserved) {
  for (double v : {1.0 / 3.0, 1e-17, 123456.789012345, -2.718281828459045}) {
    auto parsed = Json::Parse(Json(v).Dump());
    ASSERT_TRUE(parsed.ok());
    EXPECT_DOUBLE_EQ(parsed->AsDouble(), v);
  }
}

TEST(JsonPretty, IndentsNestedValues) {
  Json j(JsonObject{{"a", Json(JsonArray{Json(1), Json(2)})}});
  const std::string pretty = j.DumpPretty();
  EXPECT_NE(pretty.find("{\n  \"a\": [\n    1,\n    2\n  ]\n}"),
            std::string::npos);
}

}  // namespace
}  // namespace nomloc::common
