#include "localization/proximity.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/units.h"

namespace nomloc::localization {
namespace {

using geometry::Vec2;

TEST(ConfidenceF, PaperEq4Properties) {
  // f(1) = 1/2.
  EXPECT_DOUBLE_EQ(ConfidenceF(1.0), 0.5);
  // f(x) + f(1/x) = 1 over a sweep.
  for (double x : {0.1, 0.25, 0.5, 0.9, 1.5, 3.0, 10.0})
    EXPECT_NEAR(ConfidenceF(x) + ConfidenceF(1.0 / x), 1.0, 1e-12);
  // Non-negative everywhere.
  for (double x : {1e-6, 0.3, 1.0, 7.0, 1e6}) EXPECT_GE(ConfidenceF(x), 0.0);
}

TEST(ConfidenceF, ExactBranchValues) {
  EXPECT_DOUBLE_EQ(ConfidenceF(0.5), std::exp2(-0.5));
  EXPECT_DOUBLE_EQ(ConfidenceF(2.0), 1.0 - std::exp2(-0.5));
}

TEST(ConfidenceF, MonotoneDecreasing) {
  double prev = 2.0;
  for (double x = 0.05; x < 5.0; x += 0.05) {
    const double f = ConfidenceF(x);
    EXPECT_LT(f, prev);
    prev = f;
  }
}

TEST(ConfidenceF, LimitsApproachOneAndZero) {
  EXPECT_GT(ConfidenceF(1e-9), 0.999);
  EXPECT_LT(ConfidenceF(1e9), 1e-6);
}

TEST(ConfidenceF, NonPositiveRatioThrows) {
  EXPECT_THROW(ConfidenceF(0.0), std::logic_error);
  EXPECT_THROW(ConfidenceF(-1.0), std::logic_error);
}

TEST(ConfidenceF, ContinuousAtOne) {
  EXPECT_NEAR(ConfidenceF(1.0 - 1e-9), ConfidenceF(1.0 + 1e-9), 1e-6);
}

std::vector<Anchor> ThreeAnchors() {
  return {{{0.0, 0.0}, 4.0, false},
          {{10.0, 0.0}, 2.0, false},
          {{5.0, 8.0}, 1.0, false}};
}

TEST(JudgeProximity, AllPairsCountAndDirections) {
  const auto anchors = ThreeAnchors();
  const auto judgements = JudgeProximity(anchors, PairPolicy::kAllPairs);
  ASSERT_EQ(judgements.size(), 3u);
  for (const auto& j : judgements)
    EXPECT_GE(anchors[j.winner].pdp, anchors[j.loser].pdp);
}

TEST(JudgeProximity, ConfidenceUsesPowerRatio) {
  const auto anchors = ThreeAnchors();
  const auto judgements = JudgeProximity(anchors, PairPolicy::kAllPairs);
  for (const auto& j : judgements) {
    const double expected =
        ConfidenceF(anchors[j.loser].pdp / anchors[j.winner].pdp);
    EXPECT_DOUBLE_EQ(j.confidence, expected);
    EXPECT_GE(j.confidence, 0.5);
    EXPECT_LT(j.confidence, 1.0);
  }
}

TEST(JudgeProximity, EqualPowersGiveHalfConfidence) {
  const std::vector<Anchor> anchors{{{0.0, 0.0}, 2.0, false},
                                    {{1.0, 0.0}, 2.0, false}};
  const auto judgements = JudgeProximity(anchors);
  ASSERT_EQ(judgements.size(), 1u);
  EXPECT_DOUBLE_EQ(judgements[0].confidence, 0.5);
}

TEST(JudgeProximity, PaperPolicySkipsNomadicPairs) {
  std::vector<Anchor> anchors{{{0.0, 0.0}, 4.0, false},
                              {{10.0, 0.0}, 2.0, false},
                              {{3.0, 3.0}, 3.0, true},
                              {{6.0, 3.0}, 1.0, true}};
  const auto paper = JudgeProximity(anchors, PairPolicy::kPaper);
  const auto all = JudgeProximity(anchors, PairPolicy::kAllPairs);
  // kPaper: static-static (1) + nomadic-static (2*2) = 5; kAllPairs: 6.
  EXPECT_EQ(paper.size(), 5u);
  EXPECT_EQ(all.size(), 6u);
  for (const auto& j : paper)
    EXPECT_FALSE(anchors[j.winner].is_nomadic_site &&
                 anchors[j.loser].is_nomadic_site);
}

TEST(JudgeProximity, RequiresTwoAnchorsAndPositivePdp) {
  std::vector<Anchor> one{{{0.0, 0.0}, 1.0, false}};
  EXPECT_THROW(JudgeProximity(one), std::logic_error);
  std::vector<Anchor> bad{{{0.0, 0.0}, 1.0, false}, {{1.0, 0.0}, 0.0, false}};
  EXPECT_THROW(JudgeProximity(bad), std::logic_error);
}

TEST(JudgeProximity, StrongerAnchorAlwaysWins) {
  std::vector<Anchor> anchors;
  for (int i = 0; i < 5; ++i)
    anchors.push_back({{double(i), 0.0}, std::pow(2.0, i), false});
  const auto judgements = JudgeProximity(anchors, PairPolicy::kAllPairs);
  EXPECT_EQ(judgements.size(), 10u);
  for (const auto& j : judgements) EXPECT_GT(j.winner, j.loser);
}

// MakeAnchor end-to-end: synthetic one-path CSI with known amplitude.
dsp::CsiFrame OnePathFrame(double amp) {
  const auto idx = dsp::CsiFrame::Ht20Indices();
  std::vector<dsp::Cplx> vals(idx.size(), dsp::Cplx(amp, 0.0));
  auto frame = dsp::CsiFrame::Create(idx, vals);
  return std::move(frame).value();
}

TEST(MakeAnchor, ExtractsPdpFromBatch) {
  const std::vector<dsp::CsiFrame> frames{OnePathFrame(2.0),
                                          OnePathFrame(2.0)};
  const Anchor anchor = MakeAnchor({1.0, 2.0}, frames,
                                   common::kBandwidth20MHz, {}, true);
  EXPECT_EQ(anchor.position, Vec2(1.0, 2.0));
  EXPECT_TRUE(anchor.is_nomadic_site);
  EXPECT_GT(anchor.pdp, 0.0);
}

TEST(MakeAnchor, PdpScalesWithAmplitudeSquared) {
  const std::vector<dsp::CsiFrame> weak{OnePathFrame(1.0)};
  const std::vector<dsp::CsiFrame> strong{OnePathFrame(3.0)};
  const double p1 =
      MakeAnchor({0, 0}, weak, common::kBandwidth20MHz).pdp;
  const double p9 =
      MakeAnchor({0, 0}, strong, common::kBandwidth20MHz).pdp;
  EXPECT_NEAR(p9 / p1, 9.0, 1e-9);
}

}  // namespace
}  // namespace nomloc::localization
