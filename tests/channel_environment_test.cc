#include "channel/environment.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geometry/polygon.h"

namespace nomloc::channel {
namespace {

using geometry::Polygon;
using geometry::Vec2;

IndoorEnvironment EmptyRoom() {
  auto env = IndoorEnvironment::Create(Polygon::Rectangle(0, 0, 10, 8));
  return std::move(env).value();
}

IndoorEnvironment RoomWithCabinet() {
  std::vector<Obstacle> obstacles;
  obstacles.push_back(
      {Polygon::Rectangle(4.0, 3.0, 6.0, 5.0), materials::Metal()});
  auto env = IndoorEnvironment::Create(Polygon::Rectangle(0, 0, 10, 8), {},
                                       std::move(obstacles));
  return std::move(env).value();
}

TEST(Materials, HaveSensibleOrdering) {
  // Metal blocks hardest, glass/drywall weakest; metal reflects best.
  EXPECT_GT(materials::Metal().transmission_loss_db,
            materials::Concrete().transmission_loss_db);
  EXPECT_GT(materials::Concrete().transmission_loss_db,
            materials::Glass().transmission_loss_db);
  EXPECT_LT(materials::Metal().reflection_loss_db,
            materials::Drywall().reflection_loss_db);
}

TEST(Environment, BoundaryEdgesBecomeWalls) {
  const IndoorEnvironment env = EmptyRoom();
  EXPECT_EQ(env.Walls().size(), 4u);
  EXPECT_TRUE(env.Obstacles().empty());
}

TEST(Environment, ObstacleEdgesAddWalls) {
  const IndoorEnvironment env = RoomWithCabinet();
  EXPECT_EQ(env.Walls().size(), 8u);  // 4 boundary + 4 obstacle edges.
  EXPECT_EQ(env.Obstacles().size(), 1u);
}

TEST(Environment, InteriorWallValidation) {
  Wall bad{{{-5.0, 0.0}, {1.0, 1.0}}, materials::Drywall()};
  EXPECT_FALSE(IndoorEnvironment::Create(Polygon::Rectangle(0, 0, 10, 8),
                                         {bad})
                   .ok());
  Wall zero{{{1.0, 1.0}, {1.0, 1.0}}, materials::Drywall()};
  EXPECT_FALSE(IndoorEnvironment::Create(Polygon::Rectangle(0, 0, 10, 8),
                                         {zero})
                   .ok());
}

TEST(Environment, ObstacleOutsideBoundaryRejected) {
  std::vector<Obstacle> obstacles;
  obstacles.push_back(
      {Polygon::Rectangle(20.0, 20.0, 21.0, 21.0), materials::Wood()});
  EXPECT_FALSE(IndoorEnvironment::Create(Polygon::Rectangle(0, 0, 10, 8), {},
                                         std::move(obstacles))
                   .ok());
}

TEST(Environment, EmptyRoomIsAllLos) {
  const IndoorEnvironment env = EmptyRoom();
  EXPECT_TRUE(env.HasLineOfSight({1, 1}, {9, 7}));
  EXPECT_TRUE(env.HasLineOfSight({1, 7}, {9, 1}));
  EXPECT_DOUBLE_EQ(env.PenetrationLossDb({1, 1}, {9, 7}), 0.0);
}

TEST(Environment, ObstacleBlocksLos) {
  const IndoorEnvironment env = RoomWithCabinet();
  // Straight through the cabinet.
  EXPECT_FALSE(env.HasLineOfSight({1.0, 4.0}, {9.0, 4.0}));
  // Around it.
  EXPECT_TRUE(env.HasLineOfSight({1.0, 1.0}, {9.0, 1.0}));
  EXPECT_TRUE(env.HasLineOfSight({1.0, 7.0}, {9.0, 7.0}));
}

TEST(Environment, PenetrationLossCountsCrossedEdges) {
  const IndoorEnvironment env = RoomWithCabinet();
  const double metal = materials::Metal().transmission_loss_db;
  // Crossing the cabinet enters and exits: two edges.
  EXPECT_DOUBLE_EQ(env.PenetrationLossDb({1.0, 4.0}, {9.0, 4.0}), 2.0 * metal);
  // Ending inside the cabinet: one edge.
  EXPECT_DOUBLE_EQ(env.PenetrationLossDb({1.0, 4.0}, {5.0, 4.0}), metal);
  // No crossing.
  EXPECT_DOUBLE_EQ(env.PenetrationLossDb({1.0, 1.0}, {9.0, 1.0}), 0.0);
}

TEST(Environment, InteriorWallBlocksAndAttenuates) {
  Wall wall{{{5.0, 0.0}, {5.0, 6.0}}, materials::Drywall()};
  auto env = IndoorEnvironment::Create(Polygon::Rectangle(0, 0, 10, 8),
                                       {wall});
  ASSERT_TRUE(env.ok());
  EXPECT_FALSE(env->HasLineOfSight({2.0, 3.0}, {8.0, 3.0}));
  EXPECT_TRUE(env->HasLineOfSight({2.0, 7.0}, {8.0, 7.0}));  // Above wall.
  EXPECT_DOUBLE_EQ(env->PenetrationLossDb({2.0, 3.0}, {8.0, 3.0}),
                   materials::Drywall().transmission_loss_db);
}

TEST(Environment, BoundaryDoesNotBlockInteriorLinks) {
  const IndoorEnvironment env = EmptyRoom();
  // A link hugging the boundary still has LOS.
  EXPECT_TRUE(env.HasLineOfSight({0.0, 0.0}, {10.0, 8.0}));
}

TEST(Environment, IsFreeSpace) {
  const IndoorEnvironment env = RoomWithCabinet();
  EXPECT_TRUE(env.IsFreeSpace({1.0, 1.0}));
  EXPECT_FALSE(env.IsFreeSpace({5.0, 4.0}));   // Inside the cabinet.
  EXPECT_FALSE(env.IsFreeSpace({-1.0, 1.0}));  // Outside the room.
}

TEST(Environment, PlaceScatterersRespectsGeometry) {
  IndoorEnvironment env = RoomWithCabinet();
  common::Rng rng(11);
  env.PlaceScatterers(50, rng);
  EXPECT_EQ(env.Scatterers().size(), 50u);
  for (const Vec2 s : env.Scatterers()) EXPECT_TRUE(env.IsFreeSpace(s));
}

TEST(Environment, PlaceScatterersIsDeterministic) {
  IndoorEnvironment a = EmptyRoom();
  IndoorEnvironment b = EmptyRoom();
  common::Rng r1(7), r2(7);
  a.PlaceScatterers(10, r1);
  b.PlaceScatterers(10, r2);
  for (std::size_t i = 0; i < 10; ++i)
    EXPECT_EQ(a.Scatterers()[i], b.Scatterers()[i]);
}

TEST(Environment, ReplacingScatterersClearsOld) {
  IndoorEnvironment env = EmptyRoom();
  common::Rng rng(7);
  env.PlaceScatterers(10, rng);
  env.PlaceScatterers(3, rng);
  EXPECT_EQ(env.Scatterers().size(), 3u);
}

}  // namespace
}  // namespace nomloc::channel
