// The scalar kernel table must reproduce the pre-SIMD results bit for bit.
//
// The golden arrays in simd_scalar_goldens.inc are raw IEEE-754 bit
// patterns captured from this repository *before* the SIMD kernel layer
// was introduced (generator: a small program running the same seeded
// computations against the unmodified scalar loops).  Under
// ForceTarget(kScalar) — the same table NOMLOC_FORCE_SCALAR=1 selects —
// every pipeline below must match those patterns exactly: not close, not
// within an ULP, but the identical 64 bits.
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <span>
#include <vector>

#include "common/rng.h"
#include "dsp/cir.h"
#include "dsp/fft.h"
#include "gtest/gtest.h"
#include "lp/interior_point.h"
#include "lp/matrix.h"
#include "lp/simplex.h"
#include "simd/dispatch.h"
#include "simd/kernels.h"

namespace nomloc {
namespace {

#include "simd_scalar_goldens.inc"

class SimdScalarBitidentTest : public ::testing::Test {
 protected:
  void SetUp() override { simd::ForceTarget(simd::Target::kScalar); }
  void TearDown() override {
    simd::ForceTarget(simd::ResolveTarget());
  }
};

void ExpectBits(std::span<const double> got,
                std::span<const std::uint64_t> want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got[i]), want[i])
        << what << " element " << i << " (got " << got[i] << ")";
  }
}

std::span<const double> AsDoubles(const std::vector<dsp::Cplx>& x) {
  return {reinterpret_cast<const double*>(x.data()), 2 * x.size()};
}

TEST_F(SimdScalarBitidentTest, FftRoundTripsMatchPrePrBits) {
  common::Rng rng(0x51dbeef);
  for (std::size_t n : {std::size_t(64), std::size_t(30)}) {
    std::vector<dsp::Cplx> x(n);
    for (auto& v : x)
      v = dsp::Cplx(rng.Uniform(-1.0, 1.0), rng.Uniform(-1.0, 1.0));
    auto fwd = dsp::Fft(x);
    auto inv = dsp::Ifft(fwd);
    if (n == 64) {
      ExpectBits(AsDoubles(fwd), kGoldenFft64, "fft64");
      ExpectBits(AsDoubles(inv), kGoldenIfft64, "ifft64");
    } else {
      ExpectBits(AsDoubles(fwd), kGoldenFft30, "fft30");
      ExpectBits(AsDoubles(inv), kGoldenIfft30, "ifft30");
    }
  }

  // Power spectrum and fused PDP extraction over a 56-tap CIR (the Rng
  // stream continues from the FFT draws above, as in the generator).
  std::vector<dsp::Cplx> taps(56);
  for (auto& v : taps)
    v = dsp::Cplx(rng.Uniform(-2.0, 2.0), rng.Uniform(-2.0, 2.0));
  auto ps = dsp::PowerSpectrum(taps);
  ExpectBits(ps, kGoldenPowerSpectrum, "power_spectrum");

  dsp::ChannelImpulseResponse cir;
  cir.taps = taps;
  cir.tap_spacing_s = 1.0;
  dsp::PdpOptions max_opts;
  max_opts.method = dsp::PdpMethod::kMaxTap;
  dsp::PdpOptions total_opts;
  total_opts.method = dsp::PdpMethod::kTotalPower;
  const double pdp[2] = {dsp::PdpOfCir(cir, max_opts),
                         dsp::PdpOfCir(cir, total_opts)};
  ExpectBits(pdp, kGoldenPdp, "pdp");

  // Dense linear algebra on the continued stream.
  const std::size_t rows = 13, cols = 7;
  lp::Matrix a(rows, cols);
  std::vector<double> x(cols), y(rows);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) a(r, c) = rng.Uniform(-3.0, 3.0);
  for (auto& v : x) v = rng.Uniform(-3.0, 3.0);
  for (auto& v : y) v = rng.Uniform(-3.0, 3.0);
  const auto ax = a.MatVec(x);
  const auto aty = a.TransposedMatVec(y);
  const double scalars[2] = {
      lp::Dot(std::span<const double>(x), std::span<const double>(aty)),
      lp::Norm2(ax)};
  ExpectBits(ax, kGoldenMatVec, "mat_vec");
  ExpectBits(aty, kGoldenTMatVec, "t_mat_vec");
  ExpectBits(scalars, kGoldenDotNorm, "dot_norm");

  lp::Matrix sq(cols, cols);
  for (std::size_t r = 0; r < cols; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      sq(r, c) = rng.Uniform(-2.0, 2.0) + (r == c ? 5.0 : 0.0);
  std::vector<double> b(cols);
  for (auto& v : b) v = rng.Uniform(-2.0, 2.0);
  const auto sol = lp::SolveLinear(sq, b);
  ASSERT_TRUE(sol.ok());
  ExpectBits(*sol, kGoldenLuSolve, "lu_solve");
}

TEST_F(SimdScalarBitidentTest, LpSolversMatchPrePrBits) {
  const std::size_t n = 12;
  common::Rng lp_rng(0xbe7c);
  lp::InequalityLp prog;
  prog.a = lp::Matrix(n, 2 + n);
  prog.b.resize(n);
  prog.c.assign(2 + n, 0.0);
  prog.nonneg.assign(2 + n, true);
  prog.nonneg[0] = prog.nonneg[1] = false;
  for (std::size_t i = 0; i < n; ++i) {
    const double angle = lp_rng.Uniform(0.0, 6.28318);
    prog.a(i, 0) = std::cos(angle);
    prog.a(i, 1) = std::sin(angle);
    prog.a(i, 2 + i) = -1.0;
    prog.b[i] = lp_rng.Uniform(1.0, 6.0);
    prog.c[2 + i] = lp_rng.Uniform(0.5, 2.0);
  }
  const auto sx = lp::SolveSimplex(prog);
  const auto ip = lp::SolveInteriorPoint(prog);
  ASSERT_TRUE(sx.ok());
  ASSERT_TRUE(ip.ok());
  ExpectBits(sx->x, kGoldenSimplexX, "simplex_x");
  const double objs[2] = {sx->objective, ip->objective};
  ExpectBits(objs, kGoldenLpObjectives, "lp_objectives");
}

// NOMLOC_FORCE_SCALAR=1 (the `simd-scalar` ctest label runs the whole
// suite under it) must select exactly the table verified above.
TEST_F(SimdScalarBitidentTest, ForceScalarEnvSelectsVerifiedTable) {
  ::setenv("NOMLOC_FORCE_SCALAR", "1", 1);
  EXPECT_EQ(simd::ResolveTarget(), simd::Target::kScalar);
  ::unsetenv("NOMLOC_FORCE_SCALAR");
}

}  // namespace
}  // namespace nomloc
