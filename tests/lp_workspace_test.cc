#include "lp/workspace.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "lp/interior_point.h"
#include "lp/matrix.h"
#include "lp/simplex.h"

namespace nomloc::lp {
namespace {

// A solvable SP-relaxation-shaped program (paper Eq. 19): variables
// [zx, zy, t_1..t_n], one half-plane row per constraint.
InequalityLp RelaxationLp(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  InequalityLp prog;
  prog.a = Matrix(n, 2 + n);
  prog.b.resize(n);
  prog.c.assign(2 + n, 0.0);
  prog.nonneg.assign(2 + n, true);
  prog.nonneg[0] = prog.nonneg[1] = false;
  for (std::size_t i = 0; i < n; ++i) {
    const double angle = rng.Uniform(0.0, 6.28318);
    prog.a(i, 0) = std::cos(angle);
    prog.a(i, 1) = std::sin(angle);
    prog.a(i, 2 + i) = -1.0;
    prog.b[i] = rng.Uniform(1.0, 6.0);
    prog.c[2 + i] = rng.Uniform(0.5, 2.0);
  }
  return prog;
}

Matrix RandomSpdMatrix(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) m(i, j) = rng.Uniform(-1.0, 1.0);
    m(i, i) += double(n);  // Diagonally dominant => nonsingular.
  }
  return m;
}

TEST(SolveWorkspace, SolveLinearBitIdenticalWithAndWithoutWorkspace) {
  SolveWorkspace ws;
  for (const std::size_t n : {1u, 3u, 8u, 20u}) {
    const Matrix a = RandomSpdMatrix(n, 0xa0 + n);
    common::Rng rng(0xb0 + n);
    Vector b(n);
    for (double& v : b) v = rng.Uniform(-3.0, 3.0);

    const auto plain = SolveLinear(a, b);
    const auto reused = SolveLinear(a, b, &ws);
    ASSERT_TRUE(plain.ok());
    ASSERT_TRUE(reused.ok());
    ASSERT_EQ(plain->size(), reused->size());
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ((*plain)[i], (*reused)[i]);
  }
}

TEST(SolveWorkspace, SolveLinearWorkspaceSurvivesShrinkAndRegrow) {
  // Reuse across sizes 20 -> 3 -> 20: stale capacity must never leak into
  // the result.
  SolveWorkspace ws;
  for (const std::size_t n : {20u, 3u, 20u}) {
    const Matrix a = RandomSpdMatrix(n, 0xc0 + n);
    Vector b(n, 1.0);
    const auto plain = SolveLinear(a, b);
    const auto reused = SolveLinear(a, b, &ws);
    ASSERT_TRUE(plain.ok() && reused.ok());
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ((*plain)[i], (*reused)[i]);
  }
}

TEST(SolveWorkspace, SimplexBitIdenticalWithAndWithoutWorkspace) {
  SolveWorkspace ws;
  for (const std::size_t n : {4u, 9u, 16u}) {
    const InequalityLp prog = RelaxationLp(n, 0x51 + n);
    const auto plain = SolveSimplex(prog);
    const auto reused = SolveSimplex(prog, {}, &ws);
    ASSERT_TRUE(plain.ok());
    ASSERT_TRUE(reused.ok());
    EXPECT_EQ(plain->objective, reused->objective);
    EXPECT_EQ(plain->iterations, reused->iterations);
    ASSERT_EQ(plain->x.size(), reused->x.size());
    for (std::size_t i = 0; i < plain->x.size(); ++i)
      EXPECT_EQ(plain->x[i], reused->x[i]) << "n=" << n << " i=" << i;
  }
}

TEST(SolveWorkspace, InteriorPointBitIdenticalWithAndWithoutWorkspace) {
  SolveWorkspace ws;
  for (const std::size_t n : {4u, 9u, 16u}) {
    const InequalityLp prog = RelaxationLp(n, 0x1b + n);
    const auto plain = SolveInteriorPoint(prog);
    const auto reused = SolveInteriorPoint(prog, {}, &ws);
    ASSERT_TRUE(plain.ok());
    ASSERT_TRUE(reused.ok());
    EXPECT_EQ(plain->objective, reused->objective);
    EXPECT_EQ(plain->iterations, reused->iterations);
    EXPECT_EQ(plain->duality_gap, reused->duality_gap);
    ASSERT_EQ(plain->x.size(), reused->x.size());
    for (std::size_t i = 0; i < plain->x.size(); ++i)
      EXPECT_EQ(plain->x[i], reused->x[i]) << "n=" << n << " i=" << i;
  }
}

TEST(SolveWorkspace, OneWorkspaceServesBothBackendsInterleaved) {
  // The SP solver threads one workspace through simplex and IPM solves of
  // varying size; interleaving must not perturb either backend.
  SolveWorkspace ws;
  const InequalityLp small = RelaxationLp(5, 0xe1);
  const InequalityLp large = RelaxationLp(24, 0xe2);

  const auto simplex_small = SolveSimplex(small);
  const auto ipm_large = SolveInteriorPoint(large);
  ASSERT_TRUE(simplex_small.ok() && ipm_large.ok());

  for (int round = 0; round < 3; ++round) {
    const auto s = SolveSimplex(small, {}, &ws);
    const auto p = SolveInteriorPoint(large, {}, &ws);
    ASSERT_TRUE(s.ok() && p.ok());
    EXPECT_EQ(s->objective, simplex_small->objective);
    EXPECT_EQ(p->objective, ipm_large->objective);
    for (std::size_t i = 0; i < s->x.size(); ++i)
      EXPECT_EQ(s->x[i], simplex_small->x[i]);
    for (std::size_t i = 0; i < p->x.size(); ++i)
      EXPECT_EQ(p->x[i], ipm_large->x[i]);
  }
}

}  // namespace
}  // namespace nomloc::lp
