#include "net/system.h"

#include <gtest/gtest.h>

#include "geometry/polygon.h"

namespace nomloc::net {
namespace {

using geometry::Polygon;
using geometry::Vec2;

channel::IndoorEnvironment EmptyRoom() {
  auto env =
      channel::IndoorEnvironment::Create(Polygon::Rectangle(0, 0, 12, 8));
  return std::move(env).value();
}

SystemConfig FastConfig() {
  SystemConfig cfg;
  cfg.probe_interval_s = 0.01;
  cfg.frames_per_report = 8;
  cfg.dwell_duration_s = 0.1;
  cfg.trace.dwell_count = 4;
  return cfg;
}

TEST(NomLocSystem, CreateValidatesInputs) {
  const auto env = EmptyRoom();
  // Too few APs.
  EXPECT_FALSE(NomLocSystem::Create(env, {{1, 1}}, {}, FastConfig(), 1).ok());
  // Empty nomadic site list.
  EXPECT_FALSE(
      NomLocSystem::Create(env, {{1, 1}, {11, 7}}, {{}}, FastConfig(), 1)
          .ok());
  // Bad timing parameters.
  SystemConfig bad = FastConfig();
  bad.probe_interval_s = 0.0;
  EXPECT_FALSE(
      NomLocSystem::Create(env, {{1, 1}, {11, 7}}, {}, bad, 1).ok());
  bad = FastConfig();
  bad.frames_per_report = 0;
  EXPECT_FALSE(
      NomLocSystem::Create(env, {{1, 1}, {11, 7}}, {}, bad, 1).ok());
  bad = FastConfig();
  bad.trace.dwell_count = 0;
  EXPECT_FALSE(
      NomLocSystem::Create(env, {{1, 1}, {11, 7}}, {}, bad, 1).ok());
}

TEST(NomLocSystem, StaticOnlyDeploymentLocalizes) {
  const auto env = EmptyRoom();
  auto sys = NomLocSystem::Create(
      env, {{1, 1}, {11, 1}, {11, 7}, {1, 7}}, {}, FastConfig(), 42);
  ASSERT_TRUE(sys.ok()) << sys.status().ToString();
  auto est = sys->LocalizeOnce({5.0, 4.0});
  ASSERT_TRUE(est.ok()) << est.status().ToString();
  EXPECT_TRUE(env.Boundary().Contains(est->position, 1e-5));
  EXPECT_GT(sys->Stats().probes_sent, 0u);
  EXPECT_GT(sys->Stats().reports_received, 0u);
}

TEST(NomLocSystem, NomadicDeploymentMovesAndLocalizes) {
  const auto env = EmptyRoom();
  auto sys = NomLocSystem::Create(
      env, {{11, 1}, {11, 7}, {1, 7}},
      {{{1.0, 1.0}, {4.0, 4.0}, {8.0, 4.0}}}, FastConfig(), 7);
  ASSERT_TRUE(sys.ok());
  auto est = sys->LocalizeOnce({5.0, 4.0});
  ASSERT_TRUE(est.ok()) << est.status().ToString();
  EXPECT_GT(sys->Stats().nomadic_moves, 0u);
  // At least one observation was tagged nomadic.
  bool has_nomadic = false;
  for (const auto& a : est->anchors) has_nomadic |= a.is_nomadic_site;
  EXPECT_TRUE(has_nomadic);
}

TEST(NomLocSystem, ProbeAndFrameAccounting) {
  const auto env = EmptyRoom();
  SystemConfig cfg = FastConfig();
  auto sys = NomLocSystem::Create(env, {{1, 1}, {11, 1}, {11, 7}, {1, 7}},
                                  {}, cfg, 3);
  ASSERT_TRUE(sys.ok());
  ASSERT_TRUE(sys->LocalizeOnce({4.0, 4.0}).ok());
  // Epoch = 4 dwells * 0.1 s / 0.01 s per probe = 40 probes.
  EXPECT_EQ(sys->Stats().probes_sent, 40u);
  EXPECT_EQ(sys->Stats().frames_captured, 40u * 4u);
}

TEST(NomLocSystem, ReportsCarryPositions) {
  const auto env = EmptyRoom();
  auto sys = NomLocSystem::Create(
      env, {{11, 1}, {11, 7}},
      {{{1.0, 1.0}, {5.0, 5.0}}}, FastConfig(), 9);
  ASSERT_TRUE(sys.ok());
  ASSERT_TRUE(sys->LocalizeOnce({6.0, 4.0}).ok());
  ASSERT_FALSE(sys->LastReports().empty());
  for (const auto& report : sys->LastReports()) {
    EXPECT_TRUE(env.Boundary().Contains(report.reported_position, 1e-6));
    EXPECT_GE(report.timestamp_s, 0.0);
  }
}

TEST(NomLocSystem, PositionErrorPropagatesToReports) {
  const auto env = EmptyRoom();
  SystemConfig cfg = FastConfig();
  cfg.trace.position_error_m = 2.0;
  auto sys = NomLocSystem::Create(
      env, {{11, 1}, {11, 7}},
      {{{3.0, 3.0}, {6.0, 5.0}}}, cfg, 11);
  ASSERT_TRUE(sys.ok());
  ASSERT_TRUE(sys->LocalizeOnce({6.0, 4.0}).ok());
  bool any_offset = false;
  for (const auto& report : sys->LastReports()) {
    if (!report.is_nomadic) continue;
    if (Distance(report.reported_position, {3.0, 3.0}) > 1e-6 &&
        Distance(report.reported_position, {6.0, 5.0}) > 1e-6)
      any_offset = true;
  }
  EXPECT_TRUE(any_offset);
}

TEST(NomLocSystem, RepeatedEpochsAreIndependentTrials) {
  const auto env = EmptyRoom();
  auto sys = NomLocSystem::Create(
      env, {{11, 1}, {11, 7}, {1, 7}},
      {{{1.0, 1.0}, {4.0, 4.0}, {8.0, 4.0}}}, FastConfig(), 21);
  ASSERT_TRUE(sys.ok());
  auto e1 = sys->LocalizeOnce({5.0, 4.0});
  auto e2 = sys->LocalizeOnce({5.0, 4.0});
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(e2.ok());
  // Different RNG draws: estimates differ (with overwhelming probability).
  EXPECT_NE(e1->position, e2->position);
}

TEST(NomLocSystem, FrameLossReducesCapturedFrames) {
  const auto env = EmptyRoom();
  SystemConfig cfg = FastConfig();
  cfg.frame_loss_rate = 0.5;
  auto sys = NomLocSystem::Create(env, {{1, 1}, {11, 1}, {11, 7}, {1, 7}},
                                  {}, cfg, 5);
  ASSERT_TRUE(sys.ok());
  auto est = sys->LocalizeOnce({5.0, 4.0});
  ASSERT_TRUE(est.ok()) << est.status().ToString();
  const auto& stats = sys->Stats();
  EXPECT_GT(stats.frames_lost, 0u);
  // Roughly half the 160 capture opportunities lost.
  EXPECT_NEAR(double(stats.frames_lost),
              double(stats.frames_captured), 40.0);
}

TEST(NomLocSystem, ReportLossDropsBatches) {
  const auto env = EmptyRoom();
  SystemConfig cfg = FastConfig();
  cfg.report_loss_rate = 0.3;
  auto sys = NomLocSystem::Create(env, {{1, 1}, {11, 1}, {11, 7}, {1, 7}},
                                  {}, cfg, 6);
  ASSERT_TRUE(sys.ok());
  // Several epochs to accumulate loss statistics.
  for (int i = 0; i < 5; ++i) (void)sys->LocalizeOnce({5.0, 4.0});
  EXPECT_GT(sys->Stats().reports_lost, 0u);
  EXPECT_GT(sys->Stats().reports_received, 0u);
}

TEST(NomLocSystem, LocalizationSurvivesModerateLoss) {
  const auto env = EmptyRoom();
  SystemConfig cfg = FastConfig();
  cfg.frame_loss_rate = 0.2;
  cfg.report_loss_rate = 0.1;
  auto sys = NomLocSystem::Create(
      env, {{11, 1}, {11, 7}, {1, 7}},
      {{{1.0, 1.0}, {4.0, 4.0}, {8.0, 4.0}}}, cfg, 8);
  ASSERT_TRUE(sys.ok());
  auto est = sys->LocalizeOnce({5.0, 4.0});
  ASSERT_TRUE(est.ok()) << est.status().ToString();
  EXPECT_TRUE(env.Boundary().Contains(est->position, 1e-5));
}

TEST(NomLocSystem, WalkingTransitSuppressesFrames) {
  const auto env = EmptyRoom();
  SystemConfig teleport = FastConfig();
  SystemConfig walking = FastConfig();
  // Slow walker: transit eats a large share of each dwell.
  walking.walking_speed_mps = 5.0;
  const std::vector<geometry::Vec2> statics{{11, 1}, {11, 7}};
  const std::vector<std::vector<geometry::Vec2>> sites{
      {{1.0, 1.0}, {9.0, 6.0}, {2.0, 7.0}}};
  auto s_teleport = NomLocSystem::Create(env, statics, sites, teleport, 13);
  auto s_walking = NomLocSystem::Create(env, statics, sites, walking, 13);
  ASSERT_TRUE(s_teleport.ok());
  ASSERT_TRUE(s_walking.ok());
  ASSERT_TRUE(s_teleport->LocalizeOnce({6.0, 4.0}).ok());
  auto est = s_walking->LocalizeOnce({6.0, 4.0});
  ASSERT_TRUE(est.ok()) << est.status().ToString();
  // The walking AP misses probes while in transit.
  EXPECT_LT(s_walking->Stats().frames_captured,
            s_teleport->Stats().frames_captured);
}

TEST(NomLocSystem, WalkingSpeedValidation) {
  const auto env = EmptyRoom();
  SystemConfig bad = FastConfig();
  bad.walking_speed_mps = -1.0;
  EXPECT_FALSE(
      NomLocSystem::Create(env, {{1, 1}, {11, 7}}, {}, bad, 1).ok());
}

TEST(NomLocSystem, RejectsInvalidLossRates) {
  const auto env = EmptyRoom();
  SystemConfig bad = FastConfig();
  bad.frame_loss_rate = 1.0;
  EXPECT_FALSE(
      NomLocSystem::Create(env, {{1, 1}, {11, 7}}, {}, bad, 1).ok());
  bad = FastConfig();
  bad.report_loss_rate = -0.1;
  EXPECT_FALSE(
      NomLocSystem::Create(env, {{1, 1}, {11, 7}}, {}, bad, 1).ok());
}

TEST(NomLocSystem, ConcurrentObjectsEachLocalized) {
  const auto env = EmptyRoom();
  SystemConfig cfg = FastConfig();
  auto sys = NomLocSystem::Create(
      env, {{11, 1}, {11, 7}, {1, 7}},
      {{{1.0, 1.0}, {4.0, 4.0}, {8.0, 4.0}}}, cfg, 31);
  ASSERT_TRUE(sys.ok());
  const std::vector<geometry::Vec2> objects{{3.0, 2.0}, {8.0, 6.0},
                                            {6.0, 4.0}};
  auto estimates = sys->LocalizeConcurrent(objects);
  ASSERT_TRUE(estimates.ok()) << estimates.status().ToString();
  ASSERT_EQ(estimates->size(), 3u);
  for (std::size_t i = 0; i < objects.size(); ++i) {
    EXPECT_TRUE(env.Boundary().Contains((*estimates)[i].position, 1e-5));
    // Coarse sanity: each object's estimate is closer to its own truth
    // than to the most distant other object.
    double worst_other = 0.0;
    for (std::size_t j = 0; j < objects.size(); ++j)
      if (j != i)
        worst_other =
            std::max(worst_other, Distance(objects[i], objects[j]));
    EXPECT_LT(Distance((*estimates)[i].position, objects[i]),
              worst_other + 2.0);
  }
}

TEST(NomLocSystem, ConcurrentSharesTheEpochProbes) {
  const auto env = EmptyRoom();
  SystemConfig cfg = FastConfig();
  auto sys = NomLocSystem::Create(env, {{1, 1}, {11, 1}, {11, 7}, {1, 7}},
                                  {}, cfg, 33);
  ASSERT_TRUE(sys.ok());
  const std::vector<geometry::Vec2> objects{{3.0, 2.0}, {8.0, 6.0}};
  ASSERT_TRUE(sys->LocalizeConcurrent(objects).ok());
  // Probes are time-shared: same probe budget as a single-object epoch.
  EXPECT_EQ(sys->Stats().probes_sent, 40u);
  // Reports carry both object ids.
  bool saw[2] = {false, false};
  for (const auto& report : sys->LastReports())
    if (report.object_id < 2) saw[report.object_id] = true;
  EXPECT_TRUE(saw[0]);
  EXPECT_TRUE(saw[1]);
}

TEST(NomLocSystem, ConcurrentEmptyRejected) {
  const auto env = EmptyRoom();
  auto sys = NomLocSystem::Create(env, {{1, 1}, {11, 7}}, {}, FastConfig(),
                                  35);
  ASSERT_TRUE(sys.ok());
  EXPECT_FALSE(sys->LocalizeConcurrent({}).ok());
}

TEST(NomLocSystem, SameSeedSameResult) {
  const auto env = EmptyRoom();
  auto mk = [&] {
    return NomLocSystem::Create(
        env, {{11, 1}, {11, 7}, {1, 7}},
        {{{1.0, 1.0}, {4.0, 4.0}}}, FastConfig(), 77);
  };
  auto s1 = mk();
  auto s2 = mk();
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  auto e1 = s1->LocalizeOnce({5.0, 4.0});
  auto e2 = s2->LocalizeOnce({5.0, 4.0});
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ(e1->position, e2->position);
}

}  // namespace
}  // namespace nomloc::net
