#include "core/tracker.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace nomloc::core {
namespace {

using geometry::Polygon;
using geometry::Vec2;

TEST(Tracker, StartsUninitialized) {
  Tracker t;
  EXPECT_FALSE(t.Initialized());
  EXPECT_THROW(t.Position(), std::logic_error);
  EXPECT_THROW(t.Velocity(), std::logic_error);
  EXPECT_THROW(t.PositionVariance(), std::logic_error);
}

TEST(Tracker, FirstUpdateInitialisesAtMeasurement) {
  Tracker t;
  t.Update({3.0, 4.0});
  ASSERT_TRUE(t.Initialized());
  EXPECT_EQ(t.Position(), Vec2(3.0, 4.0));
  EXPECT_EQ(t.Velocity(), Vec2(0.0, 0.0));
  EXPECT_GT(t.PositionVariance(), 0.0);
}

TEST(Tracker, PredictBeforeInitIsNoOp) {
  Tracker t;
  EXPECT_NO_THROW(t.Predict(1.0));
  EXPECT_FALSE(t.Initialized());
}

TEST(Tracker, InvalidDtThrows) {
  Tracker t;
  t.Update({0.0, 0.0});
  EXPECT_THROW(t.Predict(0.0), std::logic_error);
  EXPECT_THROW(t.Predict(-1.0), std::logic_error);
}

TEST(Tracker, InvalidOptionsThrow) {
  TrackerOptions bad;
  bad.acceleration_sigma = 0.0;
  EXPECT_THROW(Tracker{bad}, std::logic_error);
  bad = TrackerOptions{};
  bad.measurement_sigma = -1.0;
  EXPECT_THROW(Tracker{bad}, std::logic_error);
}

TEST(Tracker, RepeatedMeasurementsShrinkVariance) {
  Tracker t;
  t.Update({5.0, 5.0});
  const double v0 = t.PositionVariance();
  for (int i = 0; i < 5; ++i) t.Step(1.0, {5.0, 5.0});
  EXPECT_LT(t.PositionVariance(), v0);
}

TEST(Tracker, PredictGrowsVariance) {
  Tracker t;
  t.Update({5.0, 5.0});
  t.Update({5.0, 5.0});
  const double v0 = t.PositionVariance();
  t.Predict(2.0);
  EXPECT_GT(t.PositionVariance(), v0);
}

TEST(Tracker, LearnsConstantVelocity) {
  Tracker t;
  // Target moves at (1, 0.5) m/s, measured each second without noise.
  for (int k = 0; k <= 20; ++k) {
    const Vec2 truth{double(k) * 1.0, double(k) * 0.5};
    if (k == 0) {
      t.Update(truth);
    } else {
      t.Step(1.0, truth);
    }
  }
  EXPECT_NEAR(t.Velocity().x, 1.0, 0.1);
  EXPECT_NEAR(t.Velocity().y, 0.5, 0.1);
  EXPECT_NEAR(t.Position().x, 20.0, 0.3);
  EXPECT_NEAR(t.Position().y, 10.0, 0.3);
}

TEST(Tracker, SmoothsNoisyFixesBelowRawError) {
  common::Rng rng(17);
  TrackerOptions opts;
  opts.measurement_sigma = 1.5;
  Tracker t(opts);
  double raw_err = 0.0, track_err = 0.0;
  int counted = 0;
  for (int k = 0; k <= 60; ++k) {
    const Vec2 truth{0.5 * k, 8.0};
    const Vec2 noisy{truth.x + rng.Gaussian(0.0, 1.5),
                     truth.y + rng.Gaussian(0.0, 1.5)};
    if (k == 0) {
      t.Update(noisy);
    } else {
      t.Step(1.0, noisy);
    }
    if (k >= 10) {  // After convergence.
      raw_err += Distance(noisy, truth);
      track_err += Distance(t.Position(), truth);
      ++counted;
    }
  }
  EXPECT_LT(track_err / counted, 0.8 * raw_err / counted);
}

TEST(Tracker, ClampToKeepsTrackInsideArea) {
  const Polygon room = Polygon::Rectangle(0.0, 0.0, 10.0, 8.0);
  Tracker t;
  t.Update({12.0, 4.0});  // Fix outside the room.
  t.ClampTo(room);
  EXPECT_TRUE(room.Contains(t.Position(), 1e-9));
  EXPECT_NEAR(t.Position().x, 10.0, 1e-9);
  EXPECT_NEAR(t.Position().y, 4.0, 1e-9);
}

TEST(Tracker, ClampToNoOpWhenInside) {
  const Polygon room = Polygon::Rectangle(0.0, 0.0, 10.0, 8.0);
  Tracker t;
  t.Update({5.0, 4.0});
  t.ClampTo(room);
  EXPECT_EQ(t.Position(), Vec2(5.0, 4.0));
}

TEST(Tracker, RecoversAfterDirectionReversal) {
  // A target that reverses direction mid-track: the filter lags at the
  // turn but must re-converge within a few updates.
  Tracker t;
  double turn_error = 0.0;
  bool first = true;
  for (double time = 0.0; time <= 20.0; time += 1.0) {
    const double x = time <= 10.0 ? time : 20.0 - time;
    const Vec2 truth{x, 0.0};
    if (first) {
      t.Update(truth);
      first = false;
    } else {
      t.Step(1.0, truth);
    }
    if (time == 11.0) turn_error = Distance(t.Position(), truth);
  }
  const double final_error = Distance(t.Position(), {0.0, 0.0});
  EXPECT_GT(turn_error, 0.0);            // There is lag at the turn…
  EXPECT_LT(final_error, turn_error);    // …and it dissipates.
  EXPECT_LT(final_error, 1.0);
  EXPECT_NEAR(t.Velocity().x, -1.0, 0.4);
}

}  // namespace
}  // namespace nomloc::core
