#include "geometry/line.h"

#include <gtest/gtest.h>

namespace nomloc::geometry {
namespace {

TEST(Line, ThroughTwoPoints) {
  const Line l = Line::Through({0.0, 0.0}, {1.0, 1.0});
  EXPECT_EQ(l.origin, Vec2(0.0, 0.0));
  EXPECT_EQ(l.dir, Vec2(1.0, 1.0));
}

TEST(Line, ThroughCoincidentPointsThrows) {
  EXPECT_THROW(Line::Through({1.0, 1.0}, {1.0, 1.0}), std::logic_error);
}

TEST(Line, DistanceToPoint) {
  const Line x_axis = Line::Through({0.0, 0.0}, {1.0, 0.0});
  EXPECT_DOUBLE_EQ(x_axis.DistanceTo({5.0, 3.0}), 3.0);
  EXPECT_DOUBLE_EQ(x_axis.DistanceTo({-2.0, -4.0}), 4.0);
  EXPECT_DOUBLE_EQ(x_axis.DistanceTo({7.0, 0.0}), 0.0);
}

TEST(Line, ProjectOntoLine) {
  const Line diag = Line::Through({0.0, 0.0}, {1.0, 1.0});
  const Vec2 p = diag.Project({2.0, 0.0});
  EXPECT_NEAR(p.x, 1.0, 1e-12);
  EXPECT_NEAR(p.y, 1.0, 1e-12);
}

TEST(Line, MirrorReflectsAcross) {
  const Line x_axis = Line::Through({0.0, 0.0}, {1.0, 0.0});
  const Vec2 m = x_axis.Mirror({3.0, 4.0});
  EXPECT_NEAR(m.x, 3.0, 1e-12);
  EXPECT_NEAR(m.y, -4.0, 1e-12);
}

TEST(Line, MirrorIsInvolution) {
  const Line l = Line::Through({1.0, 2.0}, {4.0, -1.0});
  const Vec2 p{0.3, 7.2};
  const Vec2 back = l.Mirror(l.Mirror(p));
  EXPECT_NEAR(back.x, p.x, 1e-9);
  EXPECT_NEAR(back.y, p.y, 1e-9);
}

TEST(Line, MirrorOfPointOnLineIsItself) {
  const Line l = Line::Through({0.0, 0.0}, {1.0, 1.0});
  const Vec2 m = l.Mirror({2.0, 2.0});
  EXPECT_NEAR(m.x, 2.0, 1e-12);
  EXPECT_NEAR(m.y, 2.0, 1e-12);
}

TEST(Line, MirrorPreservesDistanceToLine) {
  const Line l = Line::Through({-1.0, 3.0}, {2.0, 1.5});
  const Vec2 p{4.0, -2.0};
  EXPECT_NEAR(l.DistanceTo(p), l.DistanceTo(l.Mirror(p)), 1e-9);
}

TEST(Line, SideSignsAreOpposite) {
  const Line x_axis = Line::Through({0.0, 0.0}, {1.0, 0.0});
  EXPECT_GT(x_axis.Side({0.0, 1.0}), 0.0);
  EXPECT_LT(x_axis.Side({0.0, -1.0}), 0.0);
  EXPECT_DOUBLE_EQ(x_axis.Side({5.0, 0.0}), 0.0);
}

TEST(Segment, LengthAndMidpoint) {
  const Segment s{{0.0, 0.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(s.Length(), 5.0);
  EXPECT_EQ(s.Midpoint(), Vec2(1.5, 2.0));
}

TEST(Segment, ClosestPointClamps) {
  const Segment s{{0.0, 0.0}, {10.0, 0.0}};
  EXPECT_EQ(s.ClosestPointTo({5.0, 3.0}), Vec2(5.0, 0.0));
  EXPECT_EQ(s.ClosestPointTo({-2.0, 1.0}), Vec2(0.0, 0.0));
  EXPECT_EQ(s.ClosestPointTo({12.0, 1.0}), Vec2(10.0, 0.0));
}

TEST(Segment, DistanceToPoint) {
  const Segment s{{0.0, 0.0}, {10.0, 0.0}};
  EXPECT_DOUBLE_EQ(s.DistanceTo({5.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(s.DistanceTo({13.0, 4.0}), 5.0);
}

TEST(Segment, DegenerateSegmentActsAsPoint) {
  const Segment s{{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_EQ(s.ClosestPointTo({5.0, 1.0}), Vec2(1.0, 1.0));
  EXPECT_DOUBLE_EQ(s.DistanceTo({4.0, 5.0}), 5.0);
}

TEST(IntersectLines, CrossingLines) {
  const Line a = Line::Through({0.0, 0.0}, {1.0, 1.0});
  const Line b = Line::Through({0.0, 2.0}, {1.0, 3.0});
  // b is parallel to a — no intersection.
  EXPECT_FALSE(IntersectLines(a, b).has_value());

  const Line c = Line::Through({0.0, 2.0}, {2.0, 0.0});
  const auto hit = IntersectLines(a, c);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->x, 1.0, 1e-12);
  EXPECT_NEAR(hit->y, 1.0, 1e-12);
}

TEST(IntersectSegments, BasicCross) {
  const Segment a{{0.0, 0.0}, {2.0, 2.0}};
  const Segment b{{0.0, 2.0}, {2.0, 0.0}};
  const auto hit = IntersectSegments(a, b);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->x, 1.0, 1e-12);
  EXPECT_NEAR(hit->y, 1.0, 1e-12);
}

TEST(IntersectSegments, MissWhenShort) {
  const Segment a{{0.0, 0.0}, {0.4, 0.4}};
  const Segment b{{0.0, 2.0}, {2.0, 0.0}};
  EXPECT_FALSE(IntersectSegments(a, b).has_value());
}

TEST(IntersectSegments, SharedEndpointCounts) {
  const Segment a{{0.0, 0.0}, {1.0, 0.0}};
  const Segment b{{1.0, 0.0}, {1.0, 5.0}};
  const auto hit = IntersectSegments(a, b);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->x, 1.0, 1e-12);
}

TEST(IntersectSegments, ParallelNonCollinear) {
  const Segment a{{0.0, 0.0}, {1.0, 0.0}};
  const Segment b{{0.0, 1.0}, {1.0, 1.0}};
  EXPECT_FALSE(IntersectSegments(a, b).has_value());
}

TEST(IntersectSegments, CollinearOverlapping) {
  const Segment a{{0.0, 0.0}, {2.0, 0.0}};
  const Segment b{{1.0, 0.0}, {3.0, 0.0}};
  const auto hit = IntersectSegments(a, b);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->y, 0.0, 1e-12);
  EXPECT_GE(hit->x, 1.0 - 1e-9);
  EXPECT_LE(hit->x, 2.0 + 1e-9);
}

TEST(IntersectSegments, CollinearDisjoint) {
  const Segment a{{0.0, 0.0}, {1.0, 0.0}};
  const Segment b{{2.0, 0.0}, {3.0, 0.0}};
  EXPECT_FALSE(IntersectSegments(a, b).has_value());
}

TEST(IntersectSegments, PointSegmentOnOther) {
  const Segment point{{1.0, 0.0}, {1.0, 0.0}};
  const Segment s{{0.0, 0.0}, {2.0, 0.0}};
  EXPECT_TRUE(IntersectSegments(point, s).has_value());
  const Segment off_point{{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_FALSE(IntersectSegments(off_point, s).has_value());
}

TEST(IntersectSegments, TJunction) {
  const Segment a{{0.0, 0.0}, {2.0, 0.0}};
  const Segment b{{1.0, -1.0}, {1.0, 0.0}};
  const auto hit = IntersectSegments(a, b);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->x, 1.0, 1e-12);
  EXPECT_NEAR(hit->y, 0.0, 1e-12);
}

TEST(SegmentsIntersect, MatchesIntersectSegments) {
  const Segment a{{0.0, 0.0}, {2.0, 2.0}};
  const Segment cross{{0.0, 2.0}, {2.0, 0.0}};
  const Segment miss{{5.0, 5.0}, {6.0, 6.0}};
  EXPECT_TRUE(SegmentsIntersect(a, cross));
  EXPECT_FALSE(SegmentsIntersect(a, miss));
}

}  // namespace
}  // namespace nomloc::geometry
