#include "localization/fallback.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "geometry/halfplane.h"

namespace nomloc::localization {
namespace {

using geometry::HalfPlane;
using geometry::Polygon;
using geometry::Vec2;

std::vector<Polygon> Room() {
  return {Polygon::Rectangle(0.0, 0.0, 10.0, 8.0)};
}

// Consistent constraints for an object at `truth` among `aps` (the same
// bisector construction the solver tests use).
std::vector<SpConstraint> IdealConstraints(Vec2 truth,
                                           std::span<const Vec2> aps,
                                           double weight = 0.9) {
  std::vector<SpConstraint> out;
  for (std::size_t i = 0; i < aps.size(); ++i) {
    for (std::size_t j = i + 1; j < aps.size(); ++j) {
      const bool i_closer = Distance(truth, aps[i]) <= Distance(truth, aps[j]);
      const Vec2 w = i_closer ? aps[i] : aps[j];
      const Vec2 l = i_closer ? aps[j] : aps[i];
      out.push_back({HalfPlane::CloserTo(w, l), weight, false});
    }
  }
  return out;
}

const std::vector<Vec2> kAps{{1, 1}, {9, 1}, {9, 7}, {1, 7}};

TEST(FallbackPolicy, ValidatesKnobs) {
  EXPECT_TRUE(FallbackPolicy{}.Validate().ok());
  FallbackPolicy bad;
  bad.max_relaxation_cost = -1.0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = {};
  bad.max_relaxation_cost = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(bad.Validate().ok());
  bad = {};
  bad.keep_fractions = {0.5, 0.75};  // ascending
  EXPECT_FALSE(bad.Validate().ok());
  bad = {};
  bad.keep_fractions = {1.5};
  EXPECT_FALSE(bad.Validate().ok());
  bad = {};
  bad.keep_fractions = {0.5, 0.5};  // not strictly descending
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(SolveSpResilient, HealthyPathBitIdenticalToSolveSp) {
  const auto parts = Room();
  const Vec2 truth{3.0, 2.0};
  const auto constraints = IdealConstraints(truth, kAps);

  auto plain = SolveSp(parts, constraints, {});
  ASSERT_TRUE(plain.ok());
  auto resilient = SolveSpResilient(parts, {}, constraints, {});
  ASSERT_TRUE(resilient.ok()) << resilient.status().ToString();

  EXPECT_EQ(resilient->level, common::DegradationLevel::kNone);
  EXPECT_EQ(resilient->dropped_constraints, 0u);
  EXPECT_EQ(resilient->fallback_attempts, 0u);
  EXPECT_EQ(0, std::memcmp(&resilient->solution.estimate, &plain->estimate,
                           sizeof(plain->estimate)));
  EXPECT_EQ(resilient->solution.relaxation_cost, plain->relaxation_cost);
  EXPECT_EQ(resilient->solution.feasible_area_m2, plain->feasible_area_m2);
}

TEST(SolveSpResilient, TightBudgetShedsLowConfidenceContradictions) {
  const auto parts = Room();
  const Vec2 truth{3.0, 2.0};
  // Strong consistent constraints plus two low-weight judgements whose
  // half-planes miss the floor entirely — unsatisfiable anywhere, they
  // force relaxation cost into every full solve.
  auto constraints = IdealConstraints(truth, kAps, /*weight=*/0.9);
  const std::size_t healthy = constraints.size();
  constraints.push_back(
      {HalfPlane::CloserTo({5.0, -200.0}, {5.0, 0.0}), 0.05, false});
  constraints.push_back(
      {HalfPlane::CloserTo({-200.0, 4.0}, {0.0, 4.0}), 0.05, false});

  SpSolverOptions options;
  options.fallback.max_relaxation_cost = 1e-6;
  auto resilient = SolveSpResilient(parts, {}, constraints, options);
  ASSERT_TRUE(resilient.ok()) << resilient.status().ToString();
  EXPECT_EQ(resilient->level, common::DegradationLevel::kRelaxedConstraints);
  EXPECT_GT(resilient->dropped_constraints, 0u);
  EXPECT_GE(resilient->fallback_attempts, 1u);
  // The kept subset is conflict-free: the retry met the tight budget.
  EXPECT_LE(resilient->solution.relaxation_cost, 1e-6);
  // The contradictions (the constraints beyond `healthy`) were the ones
  // shed: at most that many dropped at the winning fraction.
  EXPECT_LE(resilient->dropped_constraints, constraints.size() - 1);
  EXPECT_GE(constraints.size(), healthy);
}

TEST(SolveSpResilient, ExhaustedLadderFallsBackToWeightedCentroid) {
  const auto parts = Room();
  // Every half-plane lies entirely outside the floor, so any subset —
  // even the single constraint the last keep-fraction retains — carries
  // positive relaxation cost and busts a zero budget.  The ladder must
  // exhaust down to the centroid.
  std::vector<SpConstraint> constraints{
      {HalfPlane::CloserTo({5.0, -200.0}, {5.0, 0.0}), 0.5, false},
      {HalfPlane::CloserTo({5.0, 200.0}, {5.0, 8.0}), 0.5, false},
      {HalfPlane::CloserTo({-200.0, 4.0}, {0.0, 4.0}), 0.5, false},
      {HalfPlane::CloserTo({200.0, 4.0}, {10.0, 4.0}), 0.5, false},
  };
  const std::vector<Anchor> anchors{{{2.0, 2.0}, 3.0, false},
                                    {{8.0, 6.0}, 1.0, true}};

  SpSolverOptions options;
  options.fallback.max_relaxation_cost = 0.0;
  auto resilient = SolveSpResilient(parts, anchors, constraints, options);
  ASSERT_TRUE(resilient.ok()) << resilient.status().ToString();
  EXPECT_EQ(resilient->level, common::DegradationLevel::kWeightedCentroid);
  EXPECT_EQ(resilient->dropped_constraints, constraints.size());

  auto centroid = WeightedAnchorCentroid(parts, anchors);
  ASSERT_TRUE(centroid.ok());
  EXPECT_EQ(resilient->solution.estimate.x, centroid->x);
  EXPECT_EQ(resilient->solution.estimate.y, centroid->y);
  // The synthetic solution is well-formed for downstream readers.
  EXPECT_EQ(resilient->solution.feasible_area_m2, 80.0);
  ASSERT_EQ(resilient->solution.parts.size(), 1u);
  EXPECT_EQ(resilient->solution.parts[0].violated, constraints.size());
}

TEST(SolveSpResilient, DisabledPolicyPropagatesSolveErrors) {
  std::vector<SpConstraint> constraints{
      {HalfPlane::CloserTo({1.0, 1.0}, {9.0, 7.0}), 0.5, false}};
  SpSolverOptions options;
  options.fallback.enable = false;
  // No parts: the full solve fails, and with the chain disabled the error
  // must surface instead of degrading.
  auto resilient = SolveSpResilient({}, {}, constraints, options);
  EXPECT_FALSE(resilient.ok());
}

// The pre-SpSolverOptions-collapse compat overload (separate policy
// argument) must keep delegating to the collapsed one until it is
// removed.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(SolveSpResilient, DeprecatedPolicyOverloadMatchesCollapsedOptions) {
  const auto parts = Room();
  const auto constraints = IdealConstraints({4.0, 3.0}, kAps);

  SpSolverOptions options;
  options.fallback.max_relaxation_cost = 1e-6;
  auto collapsed = SolveSpResilient(parts, {}, constraints, options);

  FallbackPolicy policy = options.fallback;
  auto shim = SolveSpResilient(parts, {}, constraints, SpSolverOptions{},
                               policy);
  ASSERT_TRUE(collapsed.ok()) << collapsed.status().ToString();
  ASSERT_TRUE(shim.ok()) << shim.status().ToString();
  EXPECT_EQ(shim->level, collapsed->level);
  EXPECT_EQ(shim->solution.estimate.x, collapsed->solution.estimate.x);
  EXPECT_EQ(shim->solution.estimate.y, collapsed->solution.estimate.y);
}
#pragma GCC diagnostic pop

TEST(WeightedAnchorCentroid, PdpWeightedMeanInsideArea) {
  const auto parts = Room();
  const std::vector<Anchor> anchors{{{2.0, 2.0}, 3.0, false},
                                    {{8.0, 6.0}, 1.0, false}};
  auto centroid = WeightedAnchorCentroid(parts, anchors);
  ASSERT_TRUE(centroid.ok());
  EXPECT_DOUBLE_EQ(centroid->x, (3.0 * 2.0 + 1.0 * 8.0) / 4.0);
  EXPECT_DOUBLE_EQ(centroid->y, (3.0 * 2.0 + 1.0 * 6.0) / 4.0);
}

TEST(WeightedAnchorCentroid, CorruptPdpFallsBackToEqualWeights) {
  const auto parts = Room();
  const std::vector<Anchor> anchors{
      {{2.0, 2.0}, std::numeric_limits<double>::quiet_NaN(), false},
      {{8.0, 6.0}, -1.0, false}};
  auto centroid = WeightedAnchorCentroid(parts, anchors);
  ASSERT_TRUE(centroid.ok());
  EXPECT_DOUBLE_EQ(centroid->x, 5.0);
  EXPECT_DOUBLE_EQ(centroid->y, 4.0);
}

TEST(WeightedAnchorCentroid, OutsideEstimateClampsToNearestPartCentroid) {
  const auto parts = Room();
  // Both anchors report positions far off the floor: the weighted mean
  // lands outside, so the estimate snaps to the part centroid.
  const std::vector<Anchor> anchors{{{50.0, 50.0}, 1.0, false},
                                    {{60.0, 40.0}, 1.0, false}};
  auto centroid = WeightedAnchorCentroid(parts, anchors);
  ASSERT_TRUE(centroid.ok());
  EXPECT_DOUBLE_EQ(centroid->x, 5.0);
  EXPECT_DOUBLE_EQ(centroid->y, 4.0);
}

TEST(WeightedAnchorCentroid, NoAnchorsUsesAreaCentroidAndTypedErrorOnNothing) {
  auto area_only = WeightedAnchorCentroid(Room(), {});
  ASSERT_TRUE(area_only.ok());
  EXPECT_DOUBLE_EQ(area_only->x, 5.0);
  EXPECT_DOUBLE_EQ(area_only->y, 4.0);

  auto nothing = WeightedAnchorCentroid({}, {});
  ASSERT_FALSE(nothing.ok());
  EXPECT_EQ(nothing.status().code(), common::StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace nomloc::localization
