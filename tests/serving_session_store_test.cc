#include "serving/session_store.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "core/nomloc.h"
#include "geometry/polygon.h"
#include "serving/clock.h"

namespace nomloc::serving {
namespace {

SessionStoreConfig SmallStore(double ttl_s = 10.0) {
  SessionStoreConfig config;
  config.shards = 4;
  config.anchor_ttl_s = ttl_s;
  config.session_idle_ttl_s = 100.0;
  return config;
}

PdpObservation Obs(double pdp, double weight, double t_s) {
  PdpObservation obs;
  obs.pdp = pdp;
  obs.weight = weight;
  obs.timestamp_s = t_s;
  return obs;
}

TEST(SessionStoreConfig, ValidatesKnobs) {
  EXPECT_TRUE(SmallStore().Validate().ok());
  SessionStoreConfig bad = SmallStore();
  bad.shards = 0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = SmallStore();
  bad.anchor_ttl_s = 0.0;
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(SessionStore, ShardRoutingIsStableAndInRange) {
  SessionStore store(SmallStore());
  for (std::uint64_t id = 0; id < 64; ++id) {
    const std::size_t shard = store.ShardOf(id);
    EXPECT_LT(shard, store.ShardCount());
    EXPECT_EQ(shard, store.ShardOf(id));
  }
}

TEST(SessionStore, SnapshotSortsAnchorsByKeyAndPassesPdpThrough) {
  SessionStore store(SmallStore());
  // Inserted out of key order on purpose.
  store.Upsert(7, {2, 0}, {2.0, 0.0}, false, Obs(0.3, 1.0, 0.0), 0.0);
  store.Upsert(7, {0, 1}, {0.0, 1.0}, true, Obs(0.1, 1.0, 0.0), 0.0);
  store.Upsert(7, {0, 0}, {0.0, 0.0}, true, Obs(0.2, 1.0, 0.0), 0.0);

  auto snapshot = store.Snapshot(7, 1.0);
  ASSERT_TRUE(snapshot.ok());
  ASSERT_EQ(snapshot->anchors.size(), 3u);
  EXPECT_EQ(snapshot->live_keys, 3u);
  EXPECT_EQ(snapshot->keys_ever, 3u);
  // (0,0) < (0,1) < (2,0); single observations pass through bit-exactly.
  EXPECT_EQ(snapshot->anchors[0].pdp, 0.2);
  EXPECT_EQ(snapshot->anchors[1].pdp, 0.1);
  EXPECT_EQ(snapshot->anchors[2].pdp, 0.3);
  EXPECT_TRUE(snapshot->anchors[0].is_nomadic_site);
  EXPECT_FALSE(snapshot->anchors[2].is_nomadic_site);

  EXPECT_FALSE(store.Snapshot(8, 1.0).ok());  // unknown object
}

TEST(SessionStore, SnapshotWeightAveragesRepeatedReports) {
  SessionStore store(SmallStore());
  store.Upsert(1, {0, 0}, {0.0, 0.0}, false, Obs(1.0, 3.0, 0.0), 0.0);
  store.Upsert(1, {0, 0}, {0.0, 0.0}, false, Obs(2.0, 1.0, 1.0), 1.0);

  auto snapshot = store.Snapshot(1, 2.0);
  ASSERT_TRUE(snapshot.ok());
  ASSERT_EQ(snapshot->anchors.size(), 1u);
  EXPECT_DOUBLE_EQ(snapshot->anchors[0].pdp, (1.0 * 3.0 + 2.0 * 1.0) / 4.0);
}

TEST(SessionStore, LatestReportedPositionWins) {
  SessionStore store(SmallStore());
  store.Upsert(1, {0, 0}, {0.0, 0.0}, false, Obs(1.0, 1.0, 0.0), 0.0);
  store.Upsert(1, {0, 0}, {3.0, 4.0}, false, Obs(1.0, 1.0, 1.0), 1.0);

  auto snapshot = store.Snapshot(1, 2.0);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->anchors[0].position.x, 3.0);
  EXPECT_EQ(snapshot->anchors[0].position.y, 4.0);
}

TEST(SessionStore, TimeDecayEvictsStaleObservationsAndAnchors) {
  ManualClock clock;
  SessionStore store(SmallStore(/*ttl_s=*/10.0));
  store.Upsert(1, {0, 0}, {0.0, 0.0}, false, Obs(1.0, 1.0, 0.0), 0.0);
  store.Upsert(1, {1, 0}, {1.0, 0.0}, false, Obs(2.0, 1.0, 8.0), 8.0);

  clock.Set(9.0);  // both inside the TTL window
  auto young = store.Snapshot(1, clock.NowSeconds());
  ASSERT_TRUE(young.ok());
  EXPECT_EQ(young->anchors.size(), 2u);

  clock.Set(11.0);  // the t=0 observation is now 11 s old
  auto aged = store.Snapshot(1, clock.NowSeconds());
  ASSERT_TRUE(aged.ok());
  ASSERT_EQ(aged->anchors.size(), 1u);
  EXPECT_EQ(aged->anchors[0].pdp, 2.0);
  EXPECT_EQ(aged->live_keys, 1u);
  EXPECT_EQ(aged->keys_ever, 2u);  // the degradation signal
}

TEST(SessionStore, SweepEvictsIdleSessions) {
  SessionStoreConfig config = SmallStore();
  config.session_idle_ttl_s = 20.0;
  SessionStore store(config);
  store.Upsert(1, {0, 0}, {0.0, 0.0}, false, Obs(1.0, 1.0, 0.0), 0.0);
  store.Upsert(2, {0, 0}, {0.0, 0.0}, false, Obs(1.0, 1.0, 15.0), 15.0);
  EXPECT_EQ(store.SessionCount(), 2u);

  EXPECT_EQ(store.SweepAll(21.0), 1u);  // only object 1 went idle
  EXPECT_EQ(store.SessionCount(), 1u);
  EXPECT_FALSE(store.Snapshot(1, 21.0).ok());
  EXPECT_TRUE(store.Snapshot(2, 21.0).ok());
}

// The paper's core time-decay property: once a nomadic AP has moved on,
// its old-site judgements must age out, and the SP feasible cell of a
// query that only sees the surviving constraints re-expands (fewer
// half-planes can only grow the intersection).
TEST(SessionStore, NomadicJudgementDecayReexpandsFeasibleCell) {
  auto engine = core::NomLocEngine::Create(
      geometry::Polygon::Rectangle(0.0, 0.0, 10.0, 10.0));
  ASSERT_TRUE(engine.ok());

  ManualClock clock;
  SessionStore store(SmallStore(/*ttl_s=*/10.0));
  // Two static APs measured now, plus two nomadic dwell-site anchors
  // measured early (they will age out first).  PDPs are consistent with
  // an object near (4, 4).
  store.Upsert(1, {0, 0}, {1.0, 1.0}, false, Obs(0.50, 1.0, 9.0), 9.0);
  store.Upsert(1, {1, 0}, {9.0, 9.0}, false, Obs(0.10, 1.0, 9.0), 9.0);
  store.Upsert(1, {2, 0}, {1.0, 9.0}, true, Obs(0.20, 1.0, 1.0), 1.0);
  store.Upsert(1, {2, 1}, {9.0, 1.0}, true, Obs(0.25, 1.0, 2.0), 2.0);

  const auto solve = [&](double now_s) {
    clock.Set(now_s);
    auto snapshot = store.Snapshot(1, clock.NowSeconds());
    EXPECT_TRUE(snapshot.ok());
    core::LocateRequest request;
    request.anchors = snapshot->anchors;
    auto response = engine->Locate(request);
    EXPECT_TRUE(response.ok());
    return std::pair(snapshot->anchors.size(),
                     response->estimate.feasible_area_m2);
  };

  const auto [full_count, full_area] = solve(9.5);
  const auto [decayed_count, decayed_area] = solve(13.0);
  EXPECT_EQ(full_count, 4u);
  EXPECT_EQ(decayed_count, 2u);  // the nomadic judgements aged out
  EXPECT_GT(full_area, 0.0);
  // Dropping constraints can only grow the relaxed feasible region.
  EXPECT_GE(decayed_area, full_area);
  EXPECT_GT(decayed_area, full_area * 1.01);  // and here it strictly does
}

// --- TTL clock-edge behaviour ------------------------------------------

// Eviction is `now - t > ttl`: an observation aged exactly one TTL is
// still live — the boundary belongs to the survivor.
TEST(SessionStore, ObservationExactlyAtTtlBoundarySurvives) {
  SessionStore store(SmallStore(/*ttl_s=*/10.0));
  store.Upsert(1, {0, 0}, {0.0, 0.0}, false, Obs(1.0, 1.0, 0.0), 0.0);

  auto at_edge = store.Snapshot(1, 10.0);  // age == ttl, not older
  ASSERT_TRUE(at_edge.ok());
  EXPECT_EQ(at_edge->anchors.size(), 1u);

  auto past_edge = store.Snapshot(1, 10.0 + 1e-9);
  ASSERT_TRUE(past_edge.ok());
  EXPECT_EQ(past_edge->anchors.size(), 0u);
  EXPECT_EQ(past_edge->keys_ever, 1u);
}

// A backward clock jump must not evict anything: negative ages are
// younger than any TTL, and the store must not crash or wrap.
TEST(SessionStore, BackwardClockJumpEvictsNothing) {
  SessionStore store(SmallStore(/*ttl_s=*/10.0));
  store.Upsert(1, {0, 0}, {0.0, 0.0}, false, Obs(1.0, 1.0, 50.0), 50.0);
  store.Upsert(1, {1, 0}, {1.0, 0.0}, false, Obs(2.0, 1.0, 55.0), 55.0);

  auto rewound = store.Snapshot(1, 3.0);  // clock stepped back 52 s
  ASSERT_TRUE(rewound.ok());
  EXPECT_EQ(rewound->anchors.size(), 2u);
  EXPECT_EQ(store.SweepAll(3.0), 0u);

  // Time resumes: the normal decay schedule still applies.
  auto resumed = store.Snapshot(1, 61.0);
  ASSERT_TRUE(resumed.ok());
  ASSERT_EQ(resumed->anchors.size(), 1u);
  EXPECT_EQ(resumed->anchors[0].pdp, 2.0);
}

// After every observation ages out the session survives (keys_ever keeps
// the degradation signal), and a fresh report re-populates it.
TEST(SessionStore, RecreationAfterFullEviction) {
  SessionStore store(SmallStore(/*ttl_s=*/10.0));
  store.Upsert(1, {0, 0}, {0.0, 0.0}, false, Obs(1.0, 1.0, 0.0), 0.0);

  auto empty = store.Snapshot(1, 20.0);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->anchors.size(), 0u);
  EXPECT_EQ(empty->keys_ever, 1u);

  store.Upsert(1, {0, 0}, {2.0, 2.0}, false, Obs(3.0, 1.0, 21.0), 21.0);
  auto reborn = store.Snapshot(1, 22.0);
  ASSERT_TRUE(reborn.ok());
  ASSERT_EQ(reborn->anchors.size(), 1u);
  EXPECT_EQ(reborn->anchors[0].pdp, 3.0);
  EXPECT_EQ(reborn->anchors[0].position.x, 2.0);
}

// --- last-known-good + checkpoint/restore ------------------------------

TEST(SessionStore, LastGoodIsTypedNotFoundUntilRecorded) {
  SessionStore store(SmallStore());
  auto missing_session = store.LastGood(1);
  ASSERT_FALSE(missing_session.ok());
  EXPECT_EQ(missing_session.status().code(), common::StatusCode::kNotFound);

  store.Upsert(1, {0, 0}, {0.0, 0.0}, false, Obs(1.0, 1.0, 0.0), 0.0);
  auto no_estimate = store.LastGood(1);
  ASSERT_FALSE(no_estimate.ok());
  EXPECT_EQ(no_estimate.status().code(), common::StatusCode::kNotFound);

  LastKnownGood lkg;
  lkg.position = {4.0, 5.0};
  lkg.confidence = 0.8;
  lkg.timestamp_s = 1.0;
  store.RecordEstimate(1, lkg, 1.0);
  auto stored = store.LastGood(1);
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ(stored->position.x, 4.0);
  EXPECT_EQ(stored->confidence, 0.8);
}

TEST(SessionStore, CheckpointRestoreRoundTripsBitExactly) {
  SessionStore store(SmallStore());
  store.Upsert(7, {2, 0}, {2.0, 0.0}, false, Obs(0.3, 2.0, 1.0), 1.0);
  store.Upsert(7, {0, 1}, {0.5, 1.0}, true, Obs(0.1, 1.0, 2.0), 2.0);
  store.Upsert(9, {0, 0}, {3.0, 3.0}, false, Obs(0.7, 1.0, 2.5), 2.5);
  LastKnownGood lkg;
  lkg.position = {1.25, 2.5};
  lkg.confidence = 0.625;
  lkg.timestamp_s = 2.0;
  store.RecordEstimate(7, lkg, 2.5);

  const common::Json checkpoint = store.CheckpointJson();

  // Restore into a store with a different shard count: the checkpoint is
  // layout-independent.
  SessionStoreConfig other = SmallStore();
  other.shards = 2;
  SessionStore restored(other);
  auto count = restored.RestoreFromJson(checkpoint);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(*count, 2u);

  auto a = store.Snapshot(7, 3.0);
  auto b = restored.Snapshot(7, 3.0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->anchors.size(), b->anchors.size());
  for (std::size_t i = 0; i < a->anchors.size(); ++i) {
    EXPECT_EQ(a->anchors[i].pdp, b->anchors[i].pdp);
    EXPECT_EQ(a->anchors[i].position, b->anchors[i].position);
    EXPECT_EQ(a->anchors[i].is_nomadic_site, b->anchors[i].is_nomadic_site);
  }
  auto lkg_restored = restored.LastGood(7);
  ASSERT_TRUE(lkg_restored.ok());
  EXPECT_EQ(lkg_restored->position.x, 1.25);
  EXPECT_EQ(lkg_restored->confidence, 0.625);
  // And the second checkpoint is byte-identical — restore is lossless.
  EXPECT_EQ(restored.CheckpointJson().Dump(), checkpoint.Dump());
}

// Regression: a checkpoint listing the same object twice must be rejected
// as corruption (the second entry would silently clobber the first), and
// the failed restore must leave the store untouched.
TEST(SessionStore, RestoreRejectsDuplicateObjectId) {
  SessionStore source(SmallStore());
  source.Upsert(42, {0, 0}, {1.0, 2.0}, false, Obs(0.5, 1.0, 0.0), 0.0);
  common::Json checkpoint = source.CheckpointJson();
  common::JsonArray& sessions =
      checkpoint.AsObject().at("sessions").AsArray();
  ASSERT_EQ(sessions.size(), 1u);
  sessions.push_back(sessions[0]);  // object 42 now listed twice

  SessionStore store(SmallStore());
  store.Upsert(1, {0, 0}, {0.0, 0.0}, false, Obs(1.0, 1.0, 0.0), 0.0);
  auto restore = store.RestoreFromJson(checkpoint);
  ASSERT_FALSE(restore.ok());
  EXPECT_EQ(restore.status().code(), common::StatusCode::kDataCorruption);
  EXPECT_NE(restore.status().message().find("duplicate object_id 42"),
            std::string::npos);
  EXPECT_TRUE(store.Snapshot(1, 1.0).ok());
  EXPECT_FALSE(store.Snapshot(42, 1.0).ok());
}

// Checkpoint determinism: flat-map iteration order depends on insertion
// history, so CheckpointJson must sort by object id — two stores holding
// the same sessions inserted in opposite orders checkpoint to identical
// bytes.  (Golden byte-compare, not structural compare: downstream
// tooling hashes checkpoint files.)
TEST(SessionStore, CheckpointBytesIndependentOfInsertOrder) {
  const std::vector<std::uint64_t> ids = {901, 3, 77, 12, 450, 8, 1024};
  const auto build = [&](bool reversed) {
    auto store = std::make_unique<SessionStore>(SmallStore());
    std::vector<std::uint64_t> order = ids;
    if (reversed) std::reverse(order.begin(), order.end());
    for (const std::uint64_t id : order) {
      store->Upsert(id, {int(id % 5), 0}, {double(id % 7), 1.0}, false,
                    Obs(0.25 * double(id % 4 + 1), 1.0, 0.0), 0.0);
      store->Upsert(id, {int(id % 5), 1}, {double(id % 3), 2.0}, true,
                    Obs(0.125, 2.0, 0.5), 0.5);
    }
    return store;
  };
  const std::string forward = build(false)->CheckpointJson().Dump();
  const std::string backward = build(true)->CheckpointJson().Dump();
  EXPECT_EQ(forward, backward);
  // And the bytes survive a restore round-trip through a store whose
  // insertion history is the restore itself.
  auto parsed = common::Json::Parse(forward);
  ASSERT_TRUE(parsed.ok());
  SessionStore restored(SmallStore());
  ASSERT_TRUE(restored.RestoreFromJson(*parsed).ok());
  EXPECT_EQ(restored.CheckpointJson().Dump(), forward);
}

// Shard migration's checkpoint path (ISSUE 9): a checkpoint filtered to
// an ownership predicate holds exactly the owned sessions, and two
// complementary filtered checkpoints merge back into byte-for-byte the
// full checkpoint — the golden proof that a cluster-wide set of per-shard
// dumps loses nothing.
TEST(SessionStore, FilteredCheckpointsMergeToFullCheckpointBytes) {
  SessionStore store(SmallStore());
  for (std::uint64_t id = 0; id < 12; ++id) {
    store.Upsert(id, {int(id % 3), 0}, {double(id), 0.5}, id % 2 == 0,
                 Obs(0.1 * double(id + 1), 1.0, 1.0), 1.0);
    if (id % 3 == 0) {
      LastKnownGood lkg;
      lkg.position = {double(id), double(id)};
      lkg.confidence = 0.5;
      lkg.timestamp_s = 1.0;
      store.RecordEstimate(id, lkg, 1.0);
    }
  }
  const std::string full = store.CheckpointJson().Dump();
  // A null predicate is the full checkpoint.
  EXPECT_EQ(store.CheckpointJson(nullptr).Dump(), full);

  const auto even = [](std::uint64_t id) { return id % 2 == 0; };
  const auto odd = [](std::uint64_t id) { return id % 2 == 1; };
  const common::Json evens = store.CheckpointJson(even);
  const common::Json odds = store.CheckpointJson(odd);
  EXPECT_LT(evens.Dump().size(), full.size());
  EXPECT_LT(odds.Dump().size(), full.size());

  SessionStore rebuilt(SmallStore());
  auto restored = rebuilt.RestoreFromJson(evens);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(*restored, 6u);
  auto merged = rebuilt.MergeFromJson(odds);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(*merged, 6u);
  EXPECT_EQ(rebuilt.CheckpointJson().Dump(), full);
}

TEST(SessionStore, MergeRejectsCollidingObjectId) {
  SessionStore store(SmallStore());
  store.Upsert(5, {0, 0}, {1.0, 1.0}, false, Obs(0.5, 1.0, 0.0), 0.0);
  store.Upsert(6, {0, 0}, {2.0, 2.0}, false, Obs(0.6, 1.0, 0.0), 0.0);
  const common::Json overlap =
      store.CheckpointJson([](std::uint64_t id) { return id == 5; });

  // Object 5 already lives in the target: merging it again would clobber
  // state, so the merge must fail typed and change nothing — not even
  // the non-colliding entries of the incoming dump.
  auto merge = store.MergeFromJson(overlap);
  ASSERT_FALSE(merge.ok());
  EXPECT_EQ(merge.status().code(), common::StatusCode::kDataCorruption);
  EXPECT_EQ(store.SessionCount(), 2u);

  SessionStore fresh(SmallStore());
  auto merged = fresh.MergeFromJson(overlap);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(*merged, 1u);
}

TEST(SessionStore, RestoreRejectsCorruptCheckpointAndKeepsStore) {
  SessionStore store(SmallStore());
  store.Upsert(1, {0, 0}, {0.0, 0.0}, false, Obs(1.0, 1.0, 0.0), 0.0);

  auto bad = common::Json::Parse(
      R"({"schema_version": 1, "sessions": [{"object_id": 3.5}]})");
  ASSERT_TRUE(bad.ok());
  auto restore = store.RestoreFromJson(*bad);
  ASSERT_FALSE(restore.ok());
  EXPECT_EQ(restore.status().code(), common::StatusCode::kDataCorruption);
  // The failed restore left the existing sessions untouched.
  EXPECT_TRUE(store.Snapshot(1, 1.0).ok());
}

}  // namespace
}  // namespace nomloc::serving
