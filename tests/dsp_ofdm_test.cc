#include "dsp/modulation.h"
#include "dsp/ofdm.h"

#include <gtest/gtest.h>

#include <cmath>

#include "channel/csi_model.h"
#include "common/rng.h"
#include "common/stats.h"
#include "dsp/cir.h"
#include "dsp/fft.h"
#include "geometry/polygon.h"

namespace nomloc::dsp {
namespace {

// ----------------------------------------------------------- modulation

TEST(Modulation, BitsPerSymbol) {
  EXPECT_EQ(BitsPerSymbol(Modulation::kBpsk), 1);
  EXPECT_EQ(BitsPerSymbol(Modulation::kQpsk), 2);
  EXPECT_EQ(BitsPerSymbol(Modulation::kQam16), 4);
}

class ModulationRoundTrip : public ::testing::TestWithParam<Modulation> {};

TEST_P(ModulationRoundTrip, CleanChannelIsLossless) {
  const Modulation mod = GetParam();
  const auto bits = RandomBits(240, 7);
  auto symbols = ModulateBits(bits, mod);
  ASSERT_TRUE(symbols.ok());
  EXPECT_EQ(symbols->size(), bits.size() / std::size_t(BitsPerSymbol(mod)));
  const auto decoded = DemodulateSymbols(*symbols, mod);
  EXPECT_EQ(BitErrorRate(bits, decoded), 0.0);
}

TEST_P(ModulationRoundTrip, UnitAverageEnergy) {
  const Modulation mod = GetParam();
  const auto bits = RandomBits(4096, 13);
  auto symbols = ModulateBits(bits, mod);
  ASSERT_TRUE(symbols.ok());
  double energy = 0.0;
  for (const Cplx& s : *symbols) energy += std::norm(s);
  EXPECT_NEAR(energy / double(symbols->size()), 1.0, 0.05);
}

TEST_P(ModulationRoundTrip, SurvivesMildNoise) {
  const Modulation mod = GetParam();
  const auto bits = RandomBits(4000, 17);
  auto symbols = ModulateBits(bits, mod);
  ASSERT_TRUE(symbols.ok());
  common::Rng rng(3);
  for (Cplx& s : *symbols) s += rng.ComplexGaussian(0.001);  // 30 dB SNR.
  const auto decoded = DemodulateSymbols(*symbols, mod);
  EXPECT_LT(BitErrorRate(bits, decoded), 0.001);
}

INSTANTIATE_TEST_SUITE_P(Schemes, ModulationRoundTrip,
                         ::testing::Values(Modulation::kBpsk,
                                           Modulation::kQpsk,
                                           Modulation::kQam16));

TEST(Modulation, HigherOrderIsMoreFragile) {
  // At the same noise level, 16-QAM has more bit errors than BPSK.
  common::Rng rng(5);
  const auto bits = RandomBits(40000, 19);
  auto run = [&](Modulation mod) {
    auto symbols = ModulateBits(bits, mod);
    for (Cplx& s : *symbols) s += rng.ComplexGaussian(0.15);
    return BitErrorRate(bits, DemodulateSymbols(*symbols, mod));
  };
  EXPECT_GT(run(Modulation::kQam16), 3.0 * run(Modulation::kBpsk));
}

TEST(Modulation, Validation) {
  const std::vector<std::uint8_t> three{1, 0, 1};
  EXPECT_FALSE(ModulateBits(three, Modulation::kQpsk).ok());
  EXPECT_FALSE(ModulateBits({}, Modulation::kBpsk).ok());
  const std::vector<std::uint8_t> a{1}, b{1, 0};
  EXPECT_THROW((void)BitErrorRate(a, b), std::logic_error);
}

// ----------------------------------------------------------------- ofdm

OfdmConfig SmallConfig() {
  OfdmConfig cfg;
  cfg.fft_size = 64;
  cfg.cyclic_prefix = 16;
  return cfg;
}

TEST(Ofdm, BurstShape) {
  const auto bits = RandomBits(2 * 56, 3);
  auto payload = ModulateBits(bits, Modulation::kQpsk);
  ASSERT_TRUE(payload.ok());  // 56 symbols = 1 data symbol.
  auto burst = ModulateBurst(*payload, SmallConfig());
  ASSERT_TRUE(burst.ok());
  EXPECT_EQ(burst->data_symbol_count, 1u);
  EXPECT_EQ(burst->waveform.size(), 2u * 80u);  // LTF + 1 data, 64+16 each.
}

TEST(Ofdm, ValidationRejectsBadConfigs) {
  const std::vector<Cplx> payload(10, Cplx(1.0, 0.0));
  OfdmConfig bad = SmallConfig();
  bad.fft_size = 60;  // Not a power of two.
  EXPECT_FALSE(ModulateBurst(payload, bad).ok());
  bad = SmallConfig();
  bad.cyclic_prefix = 64;
  EXPECT_FALSE(ModulateBurst(payload, bad).ok());
  bad = SmallConfig();
  bad.subcarriers = {0};
  EXPECT_FALSE(ModulateBurst(payload, bad).ok());
  EXPECT_FALSE(ModulateBurst({}, SmallConfig()).ok());
}

TEST(Ofdm, IdentityChannelRoundTripsBitsAndFlatCsi) {
  const auto bits = RandomBits(4 * 56 * 2, 11);
  auto payload = ModulateBits(bits, Modulation::kQpsk);
  ASSERT_TRUE(payload.ok());
  const OfdmConfig cfg = SmallConfig();
  auto burst = ModulateBurst(*payload, cfg);
  ASSERT_TRUE(burst.ok());

  common::Rng rng(1);
  const std::vector<Cplx> identity{Cplx(1.0, 0.0)};
  const auto rx = ApplyChannel(burst->waveform, identity, 0.0, rng);
  auto demod = DemodulateBurst(rx, burst->data_symbol_count, cfg);
  ASSERT_TRUE(demod.ok()) << demod.status().ToString();

  // CSI is flat unity.
  for (const Cplx& h : demod->csi.Values())
    EXPECT_LT(std::abs(h - Cplx(1.0, 0.0)), 1e-9);
  // Payload symbols recovered exactly (ignore the zero padding).
  for (std::size_t i = 0; i < payload->size(); ++i)
    EXPECT_LT(std::abs(demod->symbols[i] - (*payload)[i]), 1e-9);
  const auto decoded = DemodulateSymbols(
      std::span<const Cplx>(demod->symbols.data(), payload->size()),
      Modulation::kQpsk);
  EXPECT_EQ(BitErrorRate(bits, decoded), 0.0);
}

TEST(Ofdm, MultipathChannelEstimatedExactly) {
  // Channel with taps inside the CP: the LS estimate must equal the true
  // DFT of the taps at the occupied bins, and ZF must recover the bits.
  const OfdmConfig cfg = SmallConfig();
  const auto bits = RandomBits(2 * 56, 23);
  auto payload = ModulateBits(bits, Modulation::kQpsk);
  auto burst = ModulateBurst(*payload, cfg);
  ASSERT_TRUE(burst.ok());

  std::vector<Cplx> taps(8, Cplx(0.0, 0.0));
  taps[0] = {0.9, 0.1};
  taps[3] = {-0.3, 0.2};
  taps[7] = {0.1, -0.15};

  common::Rng rng(2);
  const auto rx = ApplyChannel(burst->waveform, taps, 0.0, rng);
  auto demod = DemodulateBurst(rx, burst->data_symbol_count, cfg);
  ASSERT_TRUE(demod.ok());

  // True frequency response: DFT of the taps.
  std::vector<Cplx> grid(64, Cplx(0.0, 0.0));
  std::copy(taps.begin(), taps.end(), grid.begin());
  const auto h_true = Fft(grid);
  for (std::size_t i = 0; i < cfg.subcarriers.size(); ++i) {
    const int k = cfg.subcarriers[i];
    const int bin = k >= 0 ? k : 64 + k;
    EXPECT_LT(std::abs(demod->csi.Values()[i] - h_true[std::size_t(bin)]),
              1e-9);
  }
  const auto decoded = DemodulateSymbols(
      std::span<const Cplx>(demod->symbols.data(), payload->size()),
      Modulation::kQpsk);
  EXPECT_EQ(BitErrorRate(bits, decoded), 0.0);
}

TEST(Ofdm, NoisyChannelStillDecodesAtHighSnr) {
  const OfdmConfig cfg = SmallConfig();
  const auto bits = RandomBits(2 * 56 * 4, 29);
  auto payload = ModulateBits(bits, Modulation::kQpsk);
  auto burst = ModulateBurst(*payload, cfg);
  ASSERT_TRUE(burst.ok());
  std::vector<Cplx> taps{{1.0, 0.0}, {0.0, 0.0}, {0.3, -0.1}};
  common::Rng rng(3);
  const auto rx = ApplyChannel(burst->waveform, taps, 1e-6, rng);
  auto demod = DemodulateBurst(rx, burst->data_symbol_count, cfg);
  ASSERT_TRUE(demod.ok());
  const auto decoded = DemodulateSymbols(
      std::span<const Cplx>(demod->symbols.data(), payload->size()),
      Modulation::kQpsk);
  EXPECT_LT(BitErrorRate(bits, decoded), 0.01);
}

TEST(Ofdm, TruncatedRxRejected) {
  const OfdmConfig cfg = SmallConfig();
  const std::vector<Cplx> payload(56, Cplx(1.0, 0.0));
  auto burst = ModulateBurst(payload, cfg);
  ASSERT_TRUE(burst.ok());
  const std::span<const Cplx> half(burst->waveform.data(),
                                   burst->waveform.size() / 2);
  EXPECT_FALSE(DemodulateBurst(half, burst->data_symbol_count, cfg).ok());
}

// -------------------------------------------- the PHY measurement chain

TEST(PhyChain, MatchesDirectSynthesisOnIntegerDelays) {
  // A link whose path delays are exact sample multiples: the PHY-estimated
  // CSI must match the direct (oracle) synthesis to numerical precision.
  channel::ChannelConfig ccfg;
  ccfg.rician_k_db = 80.0;            // Deterministic gains.
  ccfg.noise_floor_dbm = -300.0;      // No noise.
  const double sample_m = common::kSpeedOfLight / ccfg.bandwidth_hz;
  std::vector<channel::PropagationPath> paths(2);
  paths[0].length_m = 1.0 * sample_m;
  paths[0].loss_db = 60.0;
  paths[0].is_direct = true;
  paths[1].length_m = 4.0 * sample_m;
  paths[1].loss_db = 70.0;
  const channel::LinkModel link(paths, ccfg);

  auto phy = link.MeasurePhyCsi(nullptr);  // Deterministic chain.
  ASSERT_TRUE(phy.ok()) << phy.status().ToString();
  const auto direct = link.MeanResponse();
  ASSERT_EQ(phy->SubcarrierCount(), direct.SubcarrierCount());
  for (std::size_t i = 0; i < direct.SubcarrierCount(); ++i) {
    EXPECT_LT(std::abs(phy->Values()[i] - direct.Values()[i]),
              1e-3 * std::abs(direct.Values()[i]) + 1e-12)
        << "subcarrier " << i;
  }
}

TEST(PhyChain, PdpAgreesWithOracleOnRealLink) {
  // On a full ray-traced link the PHY chain and the oracle differ only by
  // fractional-delay discretisation; their PDPs must agree closely.
  auto env = channel::IndoorEnvironment::Create(
      geometry::Polygon::Rectangle(0, 0, 12, 8));
  ASSERT_TRUE(env.ok());
  channel::ChannelConfig ccfg;
  ccfg.rician_k_db = 80.0;
  ccfg.noise_floor_dbm = -300.0;
  const channel::CsiSimulator sim(*env, ccfg);
  const auto link = sim.MakeLink({1.0, 4.0}, {9.0, 4.0});
  auto phy = link.MeasurePhyCsi(nullptr);  // Deterministic chain.
  ASSERT_TRUE(phy.ok());
  const double pdp_phy =
      PdpOfCir(CsiToCir(*phy, ccfg.bandwidth_hz), {});
  const double pdp_direct =
      PdpOfCir(CsiToCir(link.MeanResponse(), ccfg.bandwidth_hz), {});
  EXPECT_NEAR(pdp_phy / pdp_direct, 1.0, 0.1);
}

TEST(PhyChain, ProximityOrderingPreserved) {
  // The end-to-end question: does judging proximity from PHY-measured CSI
  // give the same answer as the oracle?  Near/far link pair.
  auto env = channel::IndoorEnvironment::Create(
      geometry::Polygon::Rectangle(0, 0, 12, 8));
  ASSERT_TRUE(env.ok());
  channel::ChannelConfig ccfg;
  const channel::CsiSimulator sim(*env, ccfg);
  common::Rng rng(9);
  const geometry::Vec2 object{3.0, 4.0};
  const auto near_link = sim.MakeLink(object, {5.0, 4.0});
  const auto far_link = sim.MakeLink(object, {11.0, 4.0});
  int correct = 0;
  for (int trial = 0; trial < 20; ++trial) {
    auto near_csi = near_link.MeasurePhyCsi(&rng);
    auto far_csi = far_link.MeasurePhyCsi(&rng);
    ASSERT_TRUE(near_csi.ok());
    ASSERT_TRUE(far_csi.ok());
    const double p_near =
        PdpOfCir(CsiToCir(*near_csi, ccfg.bandwidth_hz), {});
    const double p_far = PdpOfCir(CsiToCir(*far_csi, ccfg.bandwidth_hz), {});
    if (p_near > p_far) ++correct;
  }
  EXPECT_GE(correct, 18);
}

}  // namespace
}  // namespace nomloc::dsp
