#include "lp/interior_point.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "lp/simplex.h"

namespace nomloc::lp {
namespace {

InequalityLp MakeLp(std::size_t m, std::size_t n) {
  InequalityLp lp;
  lp.a = Matrix(m, n);
  lp.b.assign(m, 0.0);
  lp.c.assign(n, 0.0);
  lp.nonneg.assign(n, true);
  return lp;
}

TEST(InteriorPoint, SolvesTextbookProblem) {
  // Same program as the simplex test: optimum (2, 6), objective -36.
  InequalityLp lp = MakeLp(3, 2);
  lp.a(0, 0) = 1.0;
  lp.a(1, 1) = 2.0;
  lp.a(2, 0) = 3.0;
  lp.a(2, 1) = 2.0;
  lp.b = {4.0, 12.0, 18.0};
  lp.c = {-3.0, -5.0};
  auto sol = SolveInteriorPoint(lp);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_NEAR(sol->x[0], 2.0, 1e-5);
  EXPECT_NEAR(sol->x[1], 6.0, 1e-5);
  EXPECT_NEAR(sol->objective, -36.0, 1e-4);
  EXPECT_LT(sol->duality_gap, 1e-8);
}

TEST(InteriorPoint, HandlesFreeVariables) {
  // minimize x, x free, x >= -5.
  InequalityLp lp = MakeLp(1, 1);
  lp.a(0, 0) = -1.0;
  lp.b = {5.0};
  lp.c = {1.0};
  lp.nonneg = {false};
  auto sol = SolveInteriorPoint(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->x[0], -5.0, 1e-5);
}

TEST(InteriorPoint, NegativeRhsFeasibleProblem) {
  // x >= 2, minimize x.
  InequalityLp lp = MakeLp(1, 1);
  lp.a(0, 0) = -1.0;
  lp.b = {-2.0};
  lp.c = {1.0};
  auto sol = SolveInteriorPoint(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->x[0], 2.0, 1e-5);
}

TEST(InteriorPoint, DetectsInfeasible) {
  // x <= 1 and x >= 3.
  InequalityLp lp = MakeLp(2, 1);
  lp.a(0, 0) = 1.0;
  lp.a(1, 0) = -1.0;
  lp.b = {1.0, -3.0};
  lp.c = {0.0};
  const auto sol = SolveInteriorPoint(lp);
  ASSERT_FALSE(sol.ok());
  // Without a Farkas certificate the method signals infeasibility either
  // directly or as divergence; all three are acceptable, success is not.
  EXPECT_TRUE(sol.status().code() == common::StatusCode::kInfeasible ||
              sol.status().code() == common::StatusCode::kExhausted ||
              sol.status().code() == common::StatusCode::kNumericalError);
}

TEST(InteriorPoint, ValidatesShapes) {
  InequalityLp lp = MakeLp(2, 2);
  lp.b.resize(1);
  EXPECT_EQ(SolveInteriorPoint(lp).status().code(),
            common::StatusCode::kInvalidArgument);
}

TEST(InteriorPoint, RejectsBadOptions) {
  InequalityLp lp = MakeLp(1, 1);
  lp.a(0, 0) = 1.0;
  lp.b = {1.0};
  lp.c = {1.0};
  InteriorPointOptions bad;
  bad.sigma = 1.5;
  EXPECT_THROW((void)SolveInteriorPoint(lp, bad), std::logic_error);
  bad = InteriorPointOptions{};
  bad.step_fraction = 1.0;
  EXPECT_THROW((void)SolveInteriorPoint(lp, bad), std::logic_error);
}

TEST(InteriorPoint, SolvesRelaxationProgramShape) {
  // The SP relaxation program: z free, t >= 0, A z - t <= b, min w^T t;
  // contradictory constraints, heavy one kept.
  InequalityLp lp = MakeLp(2, 3);
  lp.a(0, 0) = 1.0;
  lp.a(0, 1) = -1.0;
  lp.a(1, 0) = -1.0;
  lp.a(1, 2) = -1.0;
  lp.b = {1.0, -3.0};
  lp.c = {0.0, 5.0, 1.0};
  lp.nonneg = {false, true, true};
  auto sol = SolveInteriorPoint(lp);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_NEAR(sol->objective, 2.0, 1e-4);
}

// The money property: interior point and simplex agree on random feasible
// bounded LPs — two independent solvers cross-validate each other.
TEST(InteriorPointProperty, AgreesWithSimplex) {
  common::Rng rng(101);
  int solved = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 2 + rng.UniformInt(3);
    const std::size_t m = 3 + rng.UniformInt(5);
    InequalityLp lp = MakeLp(m + 2 * n, n);
    lp.nonneg.assign(n, false);
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t c = 0; c < n; ++c) lp.a(r, c) = rng.Uniform(-1, 1);
      lp.b[r] = rng.Uniform(0.5, 3.0);
    }
    for (std::size_t i = 0; i < n; ++i) {
      lp.a(m + 2 * i, i) = 1.0;
      lp.b[m + 2 * i] = 5.0;
      lp.a(m + 2 * i + 1, i) = -1.0;
      lp.b[m + 2 * i + 1] = 5.0;
    }
    for (std::size_t c = 0; c < n; ++c) lp.c[c] = rng.Uniform(-1, 1);

    auto simplex = SolveSimplex(lp);
    auto ipm = SolveInteriorPoint(lp);
    ASSERT_TRUE(simplex.ok()) << simplex.status().ToString();
    ASSERT_TRUE(ipm.ok()) << ipm.status().ToString();
    EXPECT_NEAR(ipm->objective, simplex->objective,
                1e-5 * (1.0 + std::abs(simplex->objective)));
    ++solved;
  }
  EXPECT_EQ(solved, 40);
}

TEST(InteriorPointProperty, SolutionIsPrimalFeasible) {
  common::Rng rng(103);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2;
    const std::size_t m = 4 + rng.UniformInt(4);
    InequalityLp lp = MakeLp(m + 2 * n, n);
    lp.nonneg.assign(n, false);
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t c = 0; c < n; ++c) lp.a(r, c) = rng.Uniform(-1, 1);
      lp.b[r] = rng.Uniform(0.5, 2.0);
    }
    for (std::size_t i = 0; i < n; ++i) {
      lp.a(m + 2 * i, i) = 1.0;
      lp.b[m + 2 * i] = 4.0;
      lp.a(m + 2 * i + 1, i) = -1.0;
      lp.b[m + 2 * i + 1] = 4.0;
    }
    for (std::size_t c = 0; c < n; ++c) lp.c[c] = rng.Uniform(-1, 1);
    auto sol = SolveInteriorPoint(lp);
    ASSERT_TRUE(sol.ok());
    const Vector ax = lp.a.MatVec(sol->x);
    for (std::size_t r = 0; r < lp.b.size(); ++r)
      EXPECT_LE(ax[r], lp.b[r] + 1e-6);
  }
}

}  // namespace
}  // namespace nomloc::lp
