// Deterministic chaos suite (ISSUE 5 tentpole): seeded fault schedules
// replayed through the streaming service, asserting the resilience
// invariants — no crash, one response per query, a valid DegradationLevel
// on every response with consistently scaled confidence, bounded error,
// and post-clearance accuracy within 5% of the fault-free run.
#include "serving/chaos.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/degradation.h"
#include "eval/scenario.h"
#include "serving/replay.h"

namespace nomloc::serving {
namespace {

struct Harness {
  eval::Scenario scenario;
  ReplayConfig replay;
  ReplayPlan plan;
  core::NomLocEngine engine;
};

common::Result<Harness> MakeHarness(std::size_t epochs,
                                    const core::NomLocConfig& engine_extra) {
  NOMLOC_ASSIGN_OR_RETURN(eval::Scenario scenario,
                          eval::ScenarioByName("lab"));
  ReplayConfig replay;
  replay.objects = 2;
  replay.epochs = epochs;
  replay.run.packets_per_batch = 3;
  replay.run.dwell_count = 3;
  NOMLOC_ASSIGN_OR_RETURN(ReplayPlan plan,
                          BuildReplayPlan(scenario, replay));
  core::NomLocConfig engine_cfg = engine_extra;
  engine_cfg.bandwidth_hz = replay.run.channel.bandwidth_hz;
  NOMLOC_ASSIGN_OR_RETURN(
      core::NomLocEngine engine,
      core::NomLocEngine::Create(scenario.env.Boundary(), engine_cfg));
  return Harness{std::move(scenario), replay, std::move(plan),
                 std::move(engine)};
}

ServingConfig ChaosServingConfig() {
  ServingConfig config;
  config.workers = 2;
  // Breakers must be able to re-close between epochs, or a corruption
  // window would poison the post-clearance epochs.
  config.breaker.failure_threshold = 2;
  config.breaker.base_backoff_s = 0.2;
  config.breaker.max_backoff_s = 1.0;
  config.query_retry_budget = 1;
  return config;
}

double AreaDiagonalM(const core::NomLocEngine& engine) {
  const auto box = engine.Area().BoundingBox();
  return geometry::Distance(box.lo, box.hi);
}

void AssertInvariants(const ChaosReport& report, const Harness& harness) {
  // One response per query — nothing lost, nothing duplicated.
  ASSERT_EQ(report.outcomes.size(),
            harness.plan.objects * harness.plan.epoch_count);
  const double diagonal_m = AreaDiagonalM(harness.engine);
  for (const ChaosQueryOutcome& outcome : report.outcomes) {
    const auto level = std::size_t(outcome.degradation);
    ASSERT_LE(level, 3u) << "invalid degradation level";
    EXPECT_GE(outcome.confidence, 0.0);
    EXPECT_LE(outcome.confidence, 1.0);
    // The ladder's scale caps the confidence of every degraded rung.
    EXPECT_LE(outcome.confidence,
              common::DegradationConfidenceScale(outcome.degradation) + 1e-12);
    if (outcome.status == ServeStatus::kOk) {
      // Bounded error: every estimate — last-known-good included — stays
      // inside the floor, so its error cannot exceed the area diagonal.
      EXPECT_TRUE(std::isfinite(outcome.error_m));
      EXPECT_LE(outcome.error_m, diagonal_m);
    }
  }
}

TEST(ChaosSchedule, DeterministicPerSeed) {
  auto harness = MakeHarness(5, {});
  ASSERT_TRUE(harness.ok());
  ChaosConfig chaos;
  chaos.seed = 7;
  const auto a =
      BuildChaosSchedule(chaos, harness->plan, harness->replay.epoch_interval_s);
  const auto b =
      BuildChaosSchedule(chaos, harness->plan, harness->replay.epoch_interval_s);
  ASSERT_EQ(a.events.size(), b.events.size());
  ASSERT_EQ(a.events.size(), chaos.events);
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].start_s, b.events[i].start_s);
    EXPECT_EQ(a.events[i].end_s, b.events[i].end_s);
    EXPECT_EQ(a.events[i].ap_id, b.events[i].ap_id);
    EXPECT_EQ(a.events[i].magnitude, b.events[i].magnitude);
  }
  // Faults clear before the run ends so recovery is always measurable.
  const double duration_s =
      double(harness->plan.epoch_count) * harness->replay.epoch_interval_s;
  EXPECT_LT(a.last_event_end_s, duration_s);
}

TEST(ChaosRun, NoEventsIsFaultFree) {
  auto harness = MakeHarness(3, {});
  ASSERT_TRUE(harness.ok());
  ChaosConfig chaos;
  chaos.events = 0;
  auto report = RunChaos(harness->engine, harness->plan,
                         harness->replay.epoch_interval_s, chaos,
                         ChaosServingConfig());
  ASSERT_TRUE(report.ok());
  AssertInvariants(*report, *harness);
  EXPECT_EQ(report->injected_drops, 0u);
  EXPECT_EQ(report->injected_corruptions, 0u);
  for (const ChaosQueryOutcome& outcome : report->outcomes) {
    EXPECT_EQ(outcome.status, ServeStatus::kOk);
    EXPECT_EQ(outcome.degradation, common::DegradationLevel::kNone);
  }
  EXPECT_EQ(report->degradation_counts[0], report->outcomes.size());
}

// The acceptance gate: >= 3 seeds, zero crashes, valid degradation
// everywhere, and post-clearance accuracy within 5% of the fault-free
// replay.
TEST(ChaosRun, InvariantsHoldAcrossSeeds) {
  auto harness = MakeHarness(5, {});
  ASSERT_TRUE(harness.ok());

  ChaosConfig fault_free;
  fault_free.events = 0;
  auto baseline = RunChaos(harness->engine, harness->plan,
                           harness->replay.epoch_interval_s, fault_free,
                           ChaosServingConfig());
  ASSERT_TRUE(baseline.ok());
  std::map<std::pair<std::size_t, std::uint64_t>, double> baseline_errors;
  for (const ChaosQueryOutcome& outcome : baseline->outcomes)
    baseline_errors[{outcome.epoch, outcome.object_id}] = outcome.error_m;

  std::size_t total_injected = 0;
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ChaosConfig chaos;
    chaos.seed = seed;
    chaos.events = 6;
    auto report = RunChaos(harness->engine, harness->plan,
                           harness->replay.epoch_interval_s, chaos,
                           ChaosServingConfig());
    ASSERT_TRUE(report.ok());
    AssertInvariants(*report, *harness);
    total_injected += report->injected_drops + report->injected_corruptions +
                      report->clock_jumps + report->saturation_bursts;

    // Post-clearance: every query issued at least one anchor TTL after
    // the last fault cleared must match the fault-free error within 5%.
    const double clear_s = report->schedule.last_event_end_s +
                           harness->plan.suggested_anchor_ttl_s;
    std::size_t post_clearance = 0;
    for (const ChaosQueryOutcome& outcome : report->outcomes) {
      if (outcome.timestamp_s < clear_s) continue;
      ++post_clearance;
      EXPECT_EQ(outcome.status, ServeStatus::kOk);
      const double want =
          baseline_errors[{outcome.epoch, outcome.object_id}];
      EXPECT_NEAR(outcome.error_m, want,
                  0.05 * std::max(want, 1e-6))
          << "epoch " << outcome.epoch << " object " << outcome.object_id;
    }
    EXPECT_GT(post_clearance, 0u) << "no post-clearance epochs measured";
  }
  // The schedules actually did something across the seeds.
  EXPECT_GT(total_injected, 0u);
}

// With a tight relaxation-cost budget the solver walks the ladder; the
// chaos invariants must hold on degraded rungs too.
TEST(ChaosRun, DegradationLadderEngagesUnderTightBudget) {
  core::NomLocConfig engine_cfg;
  engine_cfg.fallback.max_relaxation_cost = 1e-9;
  auto harness = MakeHarness(4, engine_cfg);
  ASSERT_TRUE(harness.ok());
  ChaosConfig chaos;
  chaos.seed = 2;
  chaos.events = 4;
  auto report = RunChaos(harness->engine, harness->plan,
                         harness->replay.epoch_interval_s, chaos,
                         ChaosServingConfig());
  ASSERT_TRUE(report.ok());
  AssertInvariants(*report, *harness);
  const std::size_t degraded = report->degradation_counts[1] +
                               report->degradation_counts[2] +
                               report->degradation_counts[3];
  EXPECT_GT(degraded, 0u)
      << "tight budget should push responses down the ladder";
}

}  // namespace
}  // namespace nomloc::serving
