#include "channel/csi_model.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/stats.h"
#include "dsp/cir.h"
#include "geometry/polygon.h"

namespace nomloc::channel {
namespace {

using geometry::Polygon;
using geometry::Vec2;

IndoorEnvironment EmptyRoom() {
  auto env = IndoorEnvironment::Create(Polygon::Rectangle(0, 0, 12, 8));
  return std::move(env).value();
}

IndoorEnvironment RoomWithMetalWall() {
  std::vector<Obstacle> obstacles;
  obstacles.push_back(
      {Polygon::Rectangle(5.0, 2.0, 6.0, 6.0), materials::Metal()});
  auto env = IndoorEnvironment::Create(Polygon::Rectangle(0, 0, 12, 8), {},
                                       std::move(obstacles));
  return std::move(env).value();
}

TEST(LinkModel, FrameHasConfiguredGrid) {
  const IndoorEnvironment env = EmptyRoom();
  ChannelConfig cfg;
  cfg.intel5300_grouping = true;
  const CsiSimulator sim(env, cfg);
  common::Rng rng(1);
  const auto frame = sim.SampleOne({1, 1}, {10, 6}, rng);
  EXPECT_EQ(frame.SubcarrierCount(), 30u);

  cfg.intel5300_grouping = false;
  const CsiSimulator sim56(env, cfg);
  EXPECT_EQ(sim56.SampleOne({1, 1}, {10, 6}, rng).SubcarrierCount(), 56u);
}

TEST(LinkModel, DeterministicGivenSeed) {
  const IndoorEnvironment env = EmptyRoom();
  const CsiSimulator sim(env, {});
  common::Rng r1(42), r2(42);
  const auto f1 = sim.SampleOne({1, 1}, {10, 6}, r1);
  const auto f2 = sim.SampleOne({1, 1}, {10, 6}, r2);
  for (std::size_t i = 0; i < f1.SubcarrierCount(); ++i)
    EXPECT_EQ(f1.Values()[i], f2.Values()[i]);
}

TEST(LinkModel, MeanResponseIsNoiseFree) {
  const IndoorEnvironment env = EmptyRoom();
  const CsiSimulator sim(env, {});
  const auto link = sim.MakeLink({1, 1}, {10, 6});
  const auto a = link.MeanResponse();
  const auto b = link.MeanResponse();
  for (std::size_t i = 0; i < a.SubcarrierCount(); ++i)
    EXPECT_EQ(a.Values()[i], b.Values()[i]);
}

TEST(LinkModel, SampleBatchSizeAndVariation) {
  const IndoorEnvironment env = EmptyRoom();
  const CsiSimulator sim(env, {});
  const auto link = sim.MakeLink({1, 1}, {10, 6});
  common::Rng rng(7);
  const auto batch = link.SampleBatch(16, rng);
  ASSERT_EQ(batch.size(), 16u);
  // Per-packet fading/noise: frames differ.
  EXPECT_NE(batch[0].Values()[0], batch[1].Values()[0]);
}

TEST(LinkModel, BatchOfZeroThrows) {
  const IndoorEnvironment env = EmptyRoom();
  const CsiSimulator sim(env, {});
  const auto link = sim.MakeLink({1, 1}, {10, 6});
  common::Rng rng(7);
  EXPECT_THROW(link.SampleBatch(0, rng), std::logic_error);
}

double MeanPdp(const CsiSimulator& sim, Vec2 tx, Vec2 rx, std::size_t packets,
               common::Rng& rng) {
  const auto link = sim.MakeLink(tx, rx);
  const auto batch = link.SampleBatch(packets, rng);
  return dsp::PdpOfBatch(batch, sim.Config().bandwidth_hz);
}

TEST(CsiModel, PdpDecreasesWithDistance) {
  const IndoorEnvironment env = EmptyRoom();
  const CsiSimulator sim(env, {});
  common::Rng rng(11);
  const double near = MeanPdp(sim, {1, 4}, {3, 4}, 40, rng);
  const double mid = MeanPdp(sim, {1, 4}, {6, 4}, 40, rng);
  const double far = MeanPdp(sim, {1, 4}, {11, 4}, 40, rng);
  EXPECT_GT(near, mid);
  EXPECT_GT(mid, far);
}

TEST(CsiModel, NlosReducesPdpVersusSymmetricLosLink) {
  const IndoorEnvironment env = RoomWithMetalWall();
  const CsiSimulator sim(env, {});
  common::Rng rng(13);
  // Equal-length links: one blocked by the metal slab, one clear.
  const double blocked = MeanPdp(sim, {2.0, 4.0}, {9.0, 4.0}, 40, rng);
  const double clear = MeanPdp(sim, {2.0, 1.0}, {9.0, 1.0}, 40, rng);
  EXPECT_GT(clear, 3.0 * blocked);
}

TEST(CsiModel, CirPeakNearExpectedDelayTap) {
  // 15 m link in a big room: direct delay 50 ns = tap 1 at 20 MHz.
  auto env = IndoorEnvironment::Create(Polygon::Rectangle(0, 0, 40, 40));
  ASSERT_TRUE(env.ok());
  ChannelConfig cfg;
  cfg.propagation.include_scatterers = false;
  cfg.propagation.max_reflection_order = 0;
  const CsiSimulator sim(*env, cfg);
  const auto link = sim.MakeLink({1.0, 20.0}, {16.0, 20.0});
  const auto cir = dsp::CsiToCir(link.MeanResponse(), cfg.bandwidth_hz);
  const auto profile = cir.PowerProfile();
  const auto peak = std::size_t(
      std::max_element(profile.begin(), profile.end()) - profile.begin());
  EXPECT_EQ(peak, 1u);
}

TEST(CsiModel, HigherNoiseFloorRaisesFrameVariance) {
  // Isolate AWGN: a single deterministic path (huge Rician K, no
  // reflections or scatterers) so per-frame variation comes from noise.
  const IndoorEnvironment env = EmptyRoom();
  ChannelConfig base;
  base.rician_k_db = 80.0;
  base.propagation.max_reflection_order = 0;
  base.propagation.include_scatterers = false;
  ChannelConfig quiet = base;
  quiet.noise_floor_dbm = -110.0;
  ChannelConfig noisy = base;
  noisy.noise_floor_dbm = -55.0;
  const CsiSimulator sq(env, quiet);
  const CsiSimulator sn(env, noisy);
  common::Rng r1(5), r2(5);

  auto spread = [](const std::vector<dsp::CsiFrame>& frames) {
    // Relative variance of per-frame total power.
    std::vector<double> powers;
    powers.reserve(frames.size());
    for (const auto& f : frames) powers.push_back(f.TotalPower());
    const double m = common::Mean(powers);
    double v = 0.0;
    for (double p : powers) v += (p - m) * (p - m);
    return v / double(powers.size()) / (m * m);
  };

  const auto fq = sq.MakeLink({1, 1}, {11, 7}).SampleBatch(60, r1);
  const auto fn = sn.MakeLink({1, 1}, {11, 7}).SampleBatch(60, r2);
  EXPECT_GT(spread(fn), 10.0 * spread(fq));
}

TEST(CsiModel, RicianKControlsDirectPathStability) {
  // With huge K the direct gain is nearly deterministic; with K = 0 dB it
  // fluctuates.  Compare max-tap PDP variance across packets on a LOS link.
  const IndoorEnvironment env = EmptyRoom();
  ChannelConfig stable;
  stable.rician_k_db = 30.0;
  stable.propagation.include_scatterers = false;
  ChannelConfig fading = stable;
  fading.rician_k_db = 0.0;
  common::Rng r1(9), r2(9);
  auto pdp_variance = [&](const ChannelConfig& cfg, common::Rng& rng) {
    const CsiSimulator sim(env, cfg);
    const auto link = sim.MakeLink({1, 1}, {9, 6});
    common::RunningStats stats;
    for (int i = 0; i < 60; ++i) {
      const auto frame = link.Sample(rng);
      stats.Add(dsp::PdpOfCir(dsp::CsiToCir(frame, cfg.bandwidth_hz), {}));
    }
    return stats.Variance() / (stats.Mean() * stats.Mean());
  };
  EXPECT_GT(pdp_variance(fading, r2), 2.0 * pdp_variance(stable, r1));
}

TEST(CsiModel, TxPowerScalesReceivedPower) {
  const IndoorEnvironment env = EmptyRoom();
  ChannelConfig low;
  low.tx_power_dbm = 0.0;
  ChannelConfig high;
  high.tx_power_dbm = 20.0;
  const CsiSimulator sl(env, low);
  const CsiSimulator sh(env, high);
  const double pl = sl.MakeLink({1, 1}, {8, 5}).MeanResponse().TotalPower();
  const double ph = sh.MakeLink({1, 1}, {8, 5}).MeanResponse().TotalPower();
  EXPECT_NEAR(ph / pl, 100.0, 1.0);  // +20 dB = x100.
}

TEST(LinkModel, EmptyPathListThrows) {
  EXPECT_THROW(LinkModel({}, ChannelConfig{}), std::logic_error);
}

TEST(FadingCoherence, CorrelatedBatchesVarySlowly) {
  const IndoorEnvironment env = EmptyRoom();
  auto frame_power_step = [&](double rho, common::Rng& rng) {
    ChannelConfig cfg;
    cfg.fading_correlation = rho;
    cfg.rician_k_db = 0.0;  // Rayleigh: maximal fading variance.
    const CsiSimulator sim(env, cfg);
    const auto batch = sim.MakeLink({1, 1}, {10, 6}).SampleBatch(200, rng);
    // Mean absolute step of consecutive per-frame total powers,
    // normalised by the power scale.
    double step = 0.0, scale = 0.0;
    for (std::size_t i = 1; i < batch.size(); ++i) {
      step += std::abs(batch[i].TotalPower() - batch[i - 1].TotalPower());
      scale += batch[i].TotalPower();
    }
    return step / scale;
  };
  common::Rng r1(21), r2(21);
  EXPECT_LT(frame_power_step(0.99, r1), 0.5 * frame_power_step(0.0, r2));
}

TEST(FadingCoherence, MarginalPowerPreserved) {
  // AR(1) evolution must not change the long-run mean power.
  const IndoorEnvironment env = EmptyRoom();
  auto mean_power = [&](double rho, common::Rng& rng) {
    ChannelConfig cfg;
    cfg.fading_correlation = rho;
    const CsiSimulator sim(env, cfg);
    double total = 0.0;
    // Many short batches: average across batch restarts too (with high
    // correlation each batch has few effective samples).
    for (int b = 0; b < 200; ++b) {
      const auto batch = sim.MakeLink({1, 1}, {10, 6}).SampleBatch(20, rng);
      for (const auto& f : batch) total += f.TotalPower();
    }
    return total / (200.0 * 20.0);
  };
  common::Rng r1(23), r2(23);
  const double p_iid = mean_power(0.0, r1);
  const double p_corr = mean_power(0.9, r2);
  EXPECT_NEAR(p_corr / p_iid, 1.0, 0.2);
}

TEST(Mimo, SampleMimoShapesMatchConfig) {
  const IndoorEnvironment env = EmptyRoom();
  ChannelConfig cfg;
  cfg.rx_antennas = 3;  // The Intel 5300's array.
  const CsiSimulator sim(env, cfg);
  common::Rng rng(31);
  const auto packet = sim.MakeLink({1, 1}, {9, 6}).SampleMimo(rng);
  ASSERT_EQ(packet.size(), 3u);
  for (const auto& frame : packet)
    EXPECT_EQ(frame.SubcarrierCount(), 30u);
  const auto batch = sim.MakeLink({1, 1}, {9, 6}).SampleMimoBatch(5, rng);
  EXPECT_EQ(batch.size(), 5u);
}

TEST(Mimo, AntennasShareFadingButDifferInPhase) {
  const IndoorEnvironment env = EmptyRoom();
  ChannelConfig cfg;
  cfg.rx_antennas = 2;
  cfg.noise_floor_dbm = -150.0;  // Negligible noise isolates the array.
  const CsiSimulator sim(env, cfg);
  common::Rng rng(33);
  const auto packet = sim.MakeLink({1, 1}, {9, 6}).SampleMimo(rng);
  // Same large-scale gains: total power close; values themselves differ
  // because each path carries an antenna phase offset.
  EXPECT_NEAR(packet[1].TotalPower() / packet[0].TotalPower(), 1.0, 0.5);
  EXPECT_NE(packet[0].Values()[0], packet[1].Values()[0]);
}

TEST(Mimo, SingleAntennaMimoMatchesSisoShape) {
  const IndoorEnvironment env = EmptyRoom();
  ChannelConfig cfg;
  cfg.rx_antennas = 1;
  const CsiSimulator sim(env, cfg);
  common::Rng rng(35);
  const auto packet = sim.MakeLink({1, 1}, {9, 6}).SampleMimo(rng);
  ASSERT_EQ(packet.size(), 1u);
}

TEST(Mimo, InvalidAntennaConfigThrows) {
  const IndoorEnvironment env = EmptyRoom();
  ChannelConfig cfg;
  cfg.rx_antennas = 0;
  const CsiSimulator sim(env, cfg);
  EXPECT_THROW(sim.MakeLink({1, 1}, {2, 2}), std::logic_error);
}

TEST(Mimo, DiversityStabilisesPdp) {
  // Under Rayleigh-heavy fading, combining 3 antennas shrinks the
  // packet-to-packet variance of the PDP estimate.
  const IndoorEnvironment env = EmptyRoom();
  ChannelConfig cfg;
  cfg.rician_k_db = 0.0;
  cfg.rx_antennas = 3;
  const CsiSimulator sim(env, cfg);
  common::Rng rng(37);
  const auto link = sim.MakeLink({1, 1}, {9, 6});

  common::RunningStats siso, mimo;
  for (int i = 0; i < 80; ++i) {
    const auto packet = link.SampleMimo(rng);
    const std::vector<dsp::CsiFrame> one{packet[0]};
    const std::vector<std::vector<dsp::CsiFrame>> all{packet};
    siso.Add(dsp::PdpOfBatch(one, cfg.bandwidth_hz));
    mimo.Add(dsp::PdpOfMimoBatch(all, cfg.bandwidth_hz));
  }
  const double cv_siso = siso.StdDev() / siso.Mean();
  const double cv_mimo = mimo.StdDev() / mimo.Mean();
  EXPECT_LT(cv_mimo, 0.8 * cv_siso);
}

TEST(FadingCoherence, InvalidCorrelationThrows) {
  const IndoorEnvironment env = EmptyRoom();
  ChannelConfig cfg;
  cfg.fading_correlation = 1.0;
  const CsiSimulator sim(env, cfg);
  const auto link = sim.MakeLink({1, 1}, {5, 5});
  common::Rng rng(1);
  EXPECT_THROW(link.SampleBatch(4, rng), std::logic_error);
}

}  // namespace
}  // namespace nomloc::channel
