#include "geometry/polygon.h"

#include <gtest/gtest.h>

#include "common/status.h"

namespace nomloc::geometry {
namespace {

Polygon UnitSquare() { return Polygon::Rectangle(0.0, 0.0, 1.0, 1.0); }

Polygon LShape() {
  auto p = Polygon::Create(
      {{0.0, 0.0}, {4.0, 0.0}, {4.0, 2.0}, {2.0, 2.0}, {2.0, 4.0}, {0.0, 4.0}});
  return std::move(p).value();
}

TEST(PolygonCreate, RejectsTooFewVertices) {
  EXPECT_FALSE(Polygon::Create({{0.0, 0.0}, {1.0, 0.0}}).ok());
}

TEST(PolygonCreate, RejectsDuplicateAdjacent) {
  EXPECT_FALSE(
      Polygon::Create({{0.0, 0.0}, {0.0, 0.0}, {1.0, 0.0}, {1.0, 1.0}}).ok());
}

TEST(PolygonCreate, RejectsZeroArea) {
  EXPECT_FALSE(
      Polygon::Create({{0.0, 0.0}, {1.0, 1.0}, {2.0, 2.0}}).ok());
}

TEST(PolygonCreate, RejectsSelfIntersecting) {
  // Bow-tie.
  EXPECT_FALSE(Polygon::Create(
                   {{0.0, 0.0}, {2.0, 2.0}, {2.0, 0.0}, {0.0, 2.0}})
                   .ok());
}

TEST(PolygonCreate, NormalisesCwToCcw) {
  auto p = Polygon::Create({{0.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}, {1.0, 0.0}});
  ASSERT_TRUE(p.ok());
  EXPECT_GT(SignedArea(p->Vertices()), 0.0);
}

TEST(PolygonRectangle, InvalidDimsThrow) {
  EXPECT_THROW(Polygon::Rectangle(0.0, 0.0, 0.0, 1.0), std::logic_error);
  EXPECT_THROW(Polygon::Rectangle(0.0, 2.0, 1.0, 1.0), std::logic_error);
}

TEST(Polygon, AreaPerimeterSquare) {
  const Polygon sq = Polygon::Rectangle(0.0, 0.0, 2.0, 3.0);
  EXPECT_DOUBLE_EQ(sq.Area(), 6.0);
  EXPECT_DOUBLE_EQ(sq.Perimeter(), 10.0);
}

TEST(Polygon, AreaLShape) {
  EXPECT_DOUBLE_EQ(LShape().Area(), 12.0);
}

TEST(Polygon, CentroidSquare) {
  const Vec2 c = Polygon::Rectangle(0.0, 0.0, 2.0, 4.0).Centroid();
  EXPECT_NEAR(c.x, 1.0, 1e-12);
  EXPECT_NEAR(c.y, 2.0, 1e-12);
}

TEST(Polygon, CentroidTriangle) {
  auto tri = Polygon::Create({{0.0, 0.0}, {3.0, 0.0}, {0.0, 3.0}});
  ASSERT_TRUE(tri.ok());
  const Vec2 c = tri->Centroid();
  EXPECT_NEAR(c.x, 1.0, 1e-12);
  EXPECT_NEAR(c.y, 1.0, 1e-12);
}

TEST(Polygon, CentroidIsInsideLShape) {
  const Polygon l = LShape();
  EXPECT_TRUE(l.Contains(l.Centroid()));
}

TEST(Polygon, BoundingBox) {
  const Aabb box = LShape().BoundingBox();
  EXPECT_EQ(box.lo, Vec2(0.0, 0.0));
  EXPECT_EQ(box.hi, Vec2(4.0, 4.0));
}

TEST(Polygon, ConvexityDetection) {
  EXPECT_TRUE(UnitSquare().IsConvex());
  EXPECT_FALSE(LShape().IsConvex());
  auto tri = Polygon::Create({{0.0, 0.0}, {1.0, 0.0}, {0.5, 1.0}});
  EXPECT_TRUE(tri->IsConvex());
}

TEST(Polygon, ContainsInterior) {
  const Polygon sq = UnitSquare();
  EXPECT_TRUE(sq.Contains({0.5, 0.5}));
  EXPECT_FALSE(sq.Contains({1.5, 0.5}));
  EXPECT_FALSE(sq.Contains({-0.1, 0.5}));
}

TEST(Polygon, ContainsBoundary) {
  const Polygon sq = UnitSquare();
  EXPECT_TRUE(sq.Contains({0.0, 0.5}));   // Edge.
  EXPECT_TRUE(sq.Contains({0.0, 0.0}));   // Vertex.
  EXPECT_TRUE(sq.Contains({1.0, 1.0}));   // Vertex.
}

TEST(Polygon, ContainsLShapeNotch) {
  const Polygon l = LShape();
  EXPECT_TRUE(l.Contains({1.0, 1.0}));
  EXPECT_TRUE(l.Contains({3.0, 1.0}));
  EXPECT_TRUE(l.Contains({1.0, 3.0}));
  EXPECT_FALSE(l.Contains({3.0, 3.0}));  // In the notch.
}

TEST(Polygon, VertexAndEdgeAccess) {
  const Polygon sq = UnitSquare();
  EXPECT_EQ(sq.VertexCount(), 4u);
  EXPECT_EQ(sq.EdgeCount(), 4u);
  const Segment last = sq.Edge(3);
  EXPECT_EQ(last.b, sq.Vertex(0));  // Closing edge wraps around.
  EXPECT_THROW(sq.Vertex(4), std::logic_error);
  EXPECT_THROW(sq.Edge(4), std::logic_error);
}

TEST(Polygon, BoundaryDistance) {
  const Polygon sq = UnitSquare();
  EXPECT_DOUBLE_EQ(sq.BoundaryDistance({0.5, 0.5}), 0.5);
  EXPECT_DOUBLE_EQ(sq.BoundaryDistance({0.0, 0.5}), 0.0);
  EXPECT_DOUBLE_EQ(sq.BoundaryDistance({2.0, 0.5}), 1.0);
}

TEST(Polygon, ContainsSegmentFullyInside) {
  EXPECT_TRUE(UnitSquare().ContainsSegment({0.1, 0.1}, {0.9, 0.9}));
}

TEST(Polygon, ContainsSegmentWithBoundaryEndpoints) {
  EXPECT_TRUE(UnitSquare().ContainsSegment({0.0, 0.0}, {1.0, 1.0}));
}

TEST(Polygon, ContainsSegmentRejectsCrossing) {
  EXPECT_FALSE(UnitSquare().ContainsSegment({0.5, 0.5}, {2.0, 0.5}));
}

TEST(Polygon, ContainsSegmentRejectsNotchCrossing) {
  // Straight line across the L notch leaves the polygon in the middle.
  EXPECT_FALSE(LShape().ContainsSegment({3.0, 1.0}, {1.0, 3.0}));
}

TEST(SignedArea, OrientationSign) {
  const Vec2 ccw[] = {{0.0, 0.0}, {1.0, 0.0}, {1.0, 1.0}};
  const Vec2 cw[] = {{0.0, 0.0}, {1.0, 1.0}, {1.0, 0.0}};
  EXPECT_GT(SignedArea(ccw), 0.0);
  EXPECT_LT(SignedArea(cw), 0.0);
  EXPECT_DOUBLE_EQ(SignedArea(ccw), 0.5);
}

// Property sweep: points sampled on a grid agree with an independent
// winding-number implementation for the L-shape.
TEST(PolygonProperty, ContainmentConsistentOnGrid) {
  const Polygon l = LShape();
  for (double x = -0.5; x <= 4.5; x += 0.25) {
    for (double y = -0.5; y <= 4.5; y += 0.25) {
      const bool in_l = (x >= 0.0 && x <= 4.0 && y >= 0.0 && y <= 2.0) ||
                        (x >= 0.0 && x <= 2.0 && y >= 0.0 && y <= 4.0);
      EXPECT_EQ(l.Contains({x, y}), in_l) << "at (" << x << ", " << y << ")";
    }
  }
}

}  // namespace
}  // namespace nomloc::geometry
