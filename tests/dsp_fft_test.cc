#include "dsp/fft.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.h"

namespace nomloc::dsp {
namespace {

std::vector<Cplx> RandomSignal(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<Cplx> x(n);
  for (auto& v : x) v = {rng.Uniform(-1, 1), rng.Uniform(-1, 1)};
  return x;
}

double MaxAbsDiff(std::span<const Cplx> a, std::span<const Cplx> b) {
  EXPECT_EQ(a.size(), b.size());
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

TEST(PowerOfTwo, Predicates) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_TRUE(IsPowerOfTwo(64));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_FALSE(IsPowerOfTwo(56));
}

TEST(PowerOfTwo, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(56), 64u);
  EXPECT_EQ(NextPowerOfTwo(65), 128u);
}

TEST(Fft, ImpulseGivesFlatSpectrum) {
  std::vector<Cplx> x(8, Cplx(0.0, 0.0));
  x[0] = 1.0;
  const auto spectrum = Fft(x);
  for (const Cplx& v : spectrum) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, DcGivesSingleBin) {
  std::vector<Cplx> x(16, Cplx(1.0, 0.0));
  const auto spectrum = Fft(x);
  EXPECT_NEAR(std::abs(spectrum[0]), 16.0, 1e-9);
  for (std::size_t k = 1; k < 16; ++k)
    EXPECT_NEAR(std::abs(spectrum[k]), 0.0, 1e-9);
}

TEST(Fft, SingleToneLandsInRightBin) {
  const std::size_t n = 32;
  std::vector<Cplx> x(n);
  const int tone = 5;
  for (std::size_t t = 0; t < n; ++t) {
    const double ang = 2.0 * std::numbers::pi * tone * double(t) / double(n);
    x[t] = {std::cos(ang), std::sin(ang)};
  }
  const auto spectrum = Fft(x);
  for (std::size_t k = 0; k < n; ++k) {
    if (k == tone)
      EXPECT_NEAR(std::abs(spectrum[k]), double(n), 1e-9);
    else
      EXPECT_NEAR(std::abs(spectrum[k]), 0.0, 1e-9);
  }
}

TEST(Fft, MatchesNaiveDftPow2) {
  const auto x = RandomSignal(64, 1);
  EXPECT_LT(MaxAbsDiff(Fft(x), DftNaive(x, false)), 1e-9);
}

TEST(Fft, MatchesNaiveDftArbitraryLengths) {
  for (std::size_t n : {3u, 5u, 7u, 12u, 30u, 56u}) {
    const auto x = RandomSignal(n, n);
    EXPECT_LT(MaxAbsDiff(Fft(x), DftNaive(x, false)), 1e-8) << "n=" << n;
  }
}

TEST(Ifft, MatchesNaiveInverse) {
  for (std::size_t n : {8u, 30u}) {
    const auto x = RandomSignal(n, 100 + n);
    EXPECT_LT(MaxAbsDiff(Ifft(x), DftNaive(x, true)), 1e-9) << "n=" << n;
  }
}

class FftRoundTripTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundTripTest, IfftOfFftIsIdentity) {
  const std::size_t n = GetParam();
  const auto x = RandomSignal(n, 7 * n + 1);
  const auto back = Ifft(Fft(x));
  EXPECT_LT(MaxAbsDiff(x, back), 1e-9) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Lengths, FftRoundTripTest,
                         ::testing::Values(1, 2, 4, 8, 13, 30, 56, 64, 100,
                                           128, 255));

TEST(Fft, LinearityHolds) {
  const auto x = RandomSignal(64, 2);
  const auto y = RandomSignal(64, 3);
  std::vector<Cplx> sum(64);
  for (std::size_t i = 0; i < 64; ++i) sum[i] = 2.0 * x[i] + y[i];
  const auto fx = Fft(x);
  const auto fy = Fft(y);
  const auto fsum = Fft(sum);
  for (std::size_t i = 0; i < 64; ++i)
    EXPECT_LT(std::abs(fsum[i] - (2.0 * fx[i] + fy[i])), 1e-9);
}

TEST(Fft, ParsevalEnergyConserved) {
  const auto x = RandomSignal(64, 4);
  const auto spectrum = Fft(x);
  double time_energy = 0.0, freq_energy = 0.0;
  for (const Cplx& v : x) time_energy += std::norm(v);
  for (const Cplx& v : spectrum) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy, 64.0 * time_energy, 1e-6);
}

TEST(Fft, EmptyInputThrows) {
  EXPECT_THROW(Fft({}), std::logic_error);
  EXPECT_THROW(Ifft({}), std::logic_error);
}

TEST(FftRadix2, NonPowerOfTwoThrows) {
  std::vector<Cplx> x(6);
  EXPECT_THROW(FftRadix2(x, false), std::logic_error);
}

TEST(PowerSpectrum, SquaredMagnitudes) {
  const std::vector<Cplx> x{{3.0, 4.0}, {0.0, 2.0}};
  const auto p = PowerSpectrum(x);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_DOUBLE_EQ(p[0], 25.0);
  EXPECT_DOUBLE_EQ(p[1], 4.0);
}

TEST(Magnitudes, AbsoluteValues) {
  const std::vector<Cplx> x{{3.0, 4.0}, {-1.0, 0.0}};
  const auto m = Magnitudes(x);
  EXPECT_DOUBLE_EQ(m[0], 5.0);
  EXPECT_DOUBLE_EQ(m[1], 1.0);
}

TEST(MovingAverage, SmoothsWithShrinkingEdges) {
  const std::vector<double> x{0.0, 3.0, 6.0, 9.0};
  const auto y = MovingAverage(x, 1);
  ASSERT_EQ(y.size(), 4u);
  EXPECT_DOUBLE_EQ(y[0], 1.5);  // (0+3)/2.
  EXPECT_DOUBLE_EQ(y[1], 3.0);  // (0+3+6)/3.
  EXPECT_DOUBLE_EQ(y[2], 6.0);
  EXPECT_DOUBLE_EQ(y[3], 7.5);
}

TEST(MovingAverage, ZeroHalfIsIdentity) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  EXPECT_EQ(MovingAverage(x, 0), x);
}

}  // namespace
}  // namespace nomloc::dsp
