#include "dsp/fft.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numbers>

#include "common/rng.h"
#include "dsp/fft_plan.h"

namespace nomloc::dsp {
namespace {

std::vector<Cplx> RandomSignal(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<Cplx> x(n);
  for (auto& v : x) v = {rng.Uniform(-1, 1), rng.Uniform(-1, 1)};
  return x;
}

double MaxAbsDiff(std::span<const Cplx> a, std::span<const Cplx> b) {
  EXPECT_EQ(a.size(), b.size());
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

TEST(PowerOfTwo, Predicates) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_TRUE(IsPowerOfTwo(64));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_FALSE(IsPowerOfTwo(56));
}

TEST(PowerOfTwo, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(56), 64u);
  EXPECT_EQ(NextPowerOfTwo(65), 128u);
}

TEST(PowerOfTwo, NextPowerOfTwoRejectsUnrepresentable) {
  constexpr std::size_t kLargest =
      std::size_t{1} << (std::numeric_limits<std::size_t>::digits - 1);
  EXPECT_EQ(NextPowerOfTwo(kLargest), kLargest);
  // One past the largest representable power of two has no ceiling; the
  // guard must throw instead of overflowing the doubling loop to 0.
  EXPECT_THROW(NextPowerOfTwo(kLargest + 1), std::logic_error);
  EXPECT_THROW(NextPowerOfTwo(std::numeric_limits<std::size_t>::max()),
               std::logic_error);
}

TEST(Fft, ImpulseGivesFlatSpectrum) {
  std::vector<Cplx> x(8, Cplx(0.0, 0.0));
  x[0] = 1.0;
  const auto spectrum = Fft(x);
  for (const Cplx& v : spectrum) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, DcGivesSingleBin) {
  std::vector<Cplx> x(16, Cplx(1.0, 0.0));
  const auto spectrum = Fft(x);
  EXPECT_NEAR(std::abs(spectrum[0]), 16.0, 1e-9);
  for (std::size_t k = 1; k < 16; ++k)
    EXPECT_NEAR(std::abs(spectrum[k]), 0.0, 1e-9);
}

TEST(Fft, SingleToneLandsInRightBin) {
  const std::size_t n = 32;
  std::vector<Cplx> x(n);
  const int tone = 5;
  for (std::size_t t = 0; t < n; ++t) {
    const double ang = 2.0 * std::numbers::pi * tone * double(t) / double(n);
    x[t] = {std::cos(ang), std::sin(ang)};
  }
  const auto spectrum = Fft(x);
  for (std::size_t k = 0; k < n; ++k) {
    if (k == tone)
      EXPECT_NEAR(std::abs(spectrum[k]), double(n), 1e-9);
    else
      EXPECT_NEAR(std::abs(spectrum[k]), 0.0, 1e-9);
  }
}

TEST(Fft, MatchesNaiveDftPow2) {
  const auto x = RandomSignal(64, 1);
  EXPECT_LT(MaxAbsDiff(Fft(x), DftNaive(x, false)), 1e-9);
}

TEST(Fft, MatchesNaiveDftArbitraryLengths) {
  for (std::size_t n : {3u, 5u, 7u, 12u, 30u, 56u}) {
    const auto x = RandomSignal(n, n);
    EXPECT_LT(MaxAbsDiff(Fft(x), DftNaive(x, false)), 1e-8) << "n=" << n;
  }
}

TEST(Fft, PlanCachedTransformMatchesNaiveEveryLength) {
  // Exhaustive small-length sweep plus representative larger lengths:
  // covers the radix-2 fast path, every Bluestein residue class mod small
  // powers of two, and a large power of two.  All transforms go through
  // the process-wide FftPlanCache.
  std::vector<std::size_t> lengths;
  for (std::size_t n = 1; n <= 64; ++n) lengths.push_back(n);
  lengths.push_back(100);
  lengths.push_back(1024);
  for (const std::size_t n : lengths) {
    const auto x = RandomSignal(n, 0x5eed0 + n);
    // Naive DFT error grows ~ n; scale the tolerance accordingly.
    const double tol = 1e-9 * double(n);
    EXPECT_LT(MaxAbsDiff(Fft(x), DftNaive(x, false)), tol) << "n=" << n;
    EXPECT_LT(MaxAbsDiff(Ifft(x), DftNaive(x, true)), tol) << "n=" << n;
  }
}

TEST(Fft, BitIdenticalAcrossPlanCacheClear) {
  // A rebuilt plan must reproduce the exact same arithmetic: cached and
  // freshly planned transforms are bit-for-bit identical.
  for (const std::size_t n : {8u, 30u, 56u, 100u, 1024u}) {
    const auto x = RandomSignal(n, 0xb17 + n);
    const auto before_fwd = Fft(x);
    const auto before_inv = Ifft(x);
    FftPlanCache::Global().Clear();
    const auto after_fwd = Fft(x);
    const auto after_inv = Ifft(x);
    ASSERT_EQ(before_fwd.size(), after_fwd.size());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(before_fwd[i], after_fwd[i]) << "n=" << n << " bin=" << i;
      EXPECT_EQ(before_inv[i], after_inv[i]) << "n=" << n << " bin=" << i;
    }
  }
}

TEST(Ifft, MatchesNaiveInverse) {
  for (std::size_t n : {8u, 30u}) {
    const auto x = RandomSignal(n, 100 + n);
    EXPECT_LT(MaxAbsDiff(Ifft(x), DftNaive(x, true)), 1e-9) << "n=" << n;
  }
}

class FftRoundTripTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundTripTest, IfftOfFftIsIdentity) {
  const std::size_t n = GetParam();
  const auto x = RandomSignal(n, 7 * n + 1);
  const auto back = Ifft(Fft(x));
  EXPECT_LT(MaxAbsDiff(x, back), 1e-9) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Lengths, FftRoundTripTest,
                         ::testing::Values(1, 2, 4, 8, 13, 30, 56, 64, 100,
                                           128, 255));

TEST(Fft, LinearityHolds) {
  const auto x = RandomSignal(64, 2);
  const auto y = RandomSignal(64, 3);
  std::vector<Cplx> sum(64);
  for (std::size_t i = 0; i < 64; ++i) sum[i] = 2.0 * x[i] + y[i];
  const auto fx = Fft(x);
  const auto fy = Fft(y);
  const auto fsum = Fft(sum);
  for (std::size_t i = 0; i < 64; ++i)
    EXPECT_LT(std::abs(fsum[i] - (2.0 * fx[i] + fy[i])), 1e-9);
}

TEST(Fft, ParsevalEnergyConserved) {
  const auto x = RandomSignal(64, 4);
  const auto spectrum = Fft(x);
  double time_energy = 0.0, freq_energy = 0.0;
  for (const Cplx& v : x) time_energy += std::norm(v);
  for (const Cplx& v : spectrum) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy, 64.0 * time_energy, 1e-6);
}

TEST(Fft, EmptyInputThrows) {
  EXPECT_THROW(Fft({}), std::logic_error);
  EXPECT_THROW(Ifft({}), std::logic_error);
}

TEST(FftRadix2, NonPowerOfTwoThrows) {
  std::vector<Cplx> x(6);
  EXPECT_THROW(FftRadix2(x, false), std::logic_error);
}

TEST(PowerSpectrum, SquaredMagnitudes) {
  const std::vector<Cplx> x{{3.0, 4.0}, {0.0, 2.0}};
  const auto p = PowerSpectrum(x);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_DOUBLE_EQ(p[0], 25.0);
  EXPECT_DOUBLE_EQ(p[1], 4.0);
}

TEST(Magnitudes, AbsoluteValues) {
  const std::vector<Cplx> x{{3.0, 4.0}, {-1.0, 0.0}};
  const auto m = Magnitudes(x);
  EXPECT_DOUBLE_EQ(m[0], 5.0);
  EXPECT_DOUBLE_EQ(m[1], 1.0);
}

TEST(MovingAverage, SmoothsWithShrinkingEdges) {
  const std::vector<double> x{0.0, 3.0, 6.0, 9.0};
  const auto y = MovingAverage(x, 1);
  ASSERT_EQ(y.size(), 4u);
  EXPECT_DOUBLE_EQ(y[0], 1.5);  // (0+3)/2.
  EXPECT_DOUBLE_EQ(y[1], 3.0);  // (0+3+6)/3.
  EXPECT_DOUBLE_EQ(y[2], 6.0);
  EXPECT_DOUBLE_EQ(y[3], 7.5);
}

TEST(MovingAverage, ZeroHalfIsIdentity) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  EXPECT_EQ(MovingAverage(x, 0), x);
}

// Pre-prefix-sum O(n * window) implementation, kept as the regression
// reference for the O(n) rewrite.
std::vector<double> MovingAverageNaive(std::span<const double> x,
                                       std::size_t half) {
  std::vector<double> out(x.size(), 0.0);
  const std::ptrdiff_t n = std::ptrdiff_t(x.size());
  const std::ptrdiff_t h = std::ptrdiff_t(half);
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    const std::ptrdiff_t lo = std::max<std::ptrdiff_t>(0, i - h);
    const std::ptrdiff_t hi = std::min(n - 1, i + h);
    double sum = 0.0;
    for (std::ptrdiff_t j = lo; j <= hi; ++j) sum += x[std::size_t(j)];
    out[std::size_t(i)] = sum / double(hi - lo + 1);
  }
  return out;
}

TEST(MovingAverage, PrefixSumMatchesNaiveWindowSums) {
  common::Rng rng(0x30a);
  for (const std::size_t n : {1u, 2u, 7u, 64u, 257u}) {
    std::vector<double> x(n);
    for (double& v : x) v = rng.Uniform(-5.0, 5.0);
    for (const std::size_t half :
         {std::size_t{0}, std::size_t{1}, std::size_t{3}, std::size_t{10}, n}) {
      const auto fast = MovingAverage(x, half);
      const auto naive = MovingAverageNaive(x, half);
      ASSERT_EQ(fast.size(), naive.size());
      for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(fast[i], naive[i], 1e-10)
            << "n=" << n << " half=" << half << " i=" << i;
    }
  }
}

}  // namespace
}  // namespace nomloc::dsp
