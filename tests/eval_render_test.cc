#include "eval/render.h"

#include <gtest/gtest.h>

#include <sstream>

namespace nomloc::eval {
namespace {

std::vector<std::string> Lines(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream in(s);
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

TEST(Render, ProducesGridOfExpectedShape) {
  const Scenario lab = LabScenario();
  const std::string art = RenderScenario(lab);
  const auto lines = Lines(art);
  // 12 x 8 m at 2 cells/m horizontally, 1 cell/m vertically.
  ASSERT_EQ(lines.size(), 9u);
  for (const auto& line : lines) EXPECT_EQ(line.size(), 25u);
}

TEST(Render, ContainsAllMarkerClasses) {
  const Scenario lab = LabScenario();
  const std::string art = RenderScenario(lab);
  EXPECT_NE(art.find('A'), std::string::npos);  // Static APs.
  EXPECT_NE(art.find('N'), std::string::npos);  // Nomadic sites.
  EXPECT_NE(art.find('x'), std::string::npos);  // Test sites.
  EXPECT_NE(art.find('o'), std::string::npos);  // Obstacles.
  EXPECT_NE(art.find('#'), std::string::npos);  // Walls.
  EXPECT_NE(art.find('.'), std::string::npos);  // Free space.
}

TEST(Render, LShapeHasBlankOutsideRegion) {
  const Scenario lobby = LobbyScenario();
  const std::string art = RenderScenario(lobby);
  const auto lines = Lines(art);
  // Top rows (high y) only cover the vertical arm: the right side of the
  // canvas must be blank there.
  ASSERT_GE(lines.size(), 4u);
  const std::string& top = lines[1];
  EXPECT_NE(top.find(' '), std::string::npos);
  EXPECT_EQ(top.back(), ' ');
}

TEST(Render, MarkersDrawn) {
  const Scenario lab = LabScenario();
  RenderOptions opts;
  opts.markers.push_back({6.0, 4.0});
  const std::string art = RenderScenario(lab, opts);
  EXPECT_NE(art.find('*'), std::string::npos);
}

TEST(Render, ScaleControlsResolution) {
  const Scenario lab = LabScenario();
  RenderOptions coarse;
  coarse.cells_per_m = 1.0;
  RenderOptions fine;
  fine.cells_per_m = 4.0;
  EXPECT_LT(RenderScenario(lab, coarse).size(),
            RenderScenario(lab, fine).size());
}

TEST(Render, InvalidScaleThrows) {
  const Scenario lab = LabScenario();
  RenderOptions bad;
  bad.cells_per_m = 0.0;
  EXPECT_THROW(RenderScenario(lab, bad), std::logic_error);
}

TEST(Render, InteriorWallsVisibleInOffice) {
  const Scenario office = OfficeScenario();
  const std::string art = RenderScenario(office);
  const auto lines = Lines(art);
  // The corridor walls put '#' runs in interior rows (not just borders).
  std::size_t interior_wall_rows = 0;
  for (std::size_t r = 2; r + 2 < lines.size(); ++r) {
    if (lines[r].find("###") != std::string::npos) ++interior_wall_rows;
  }
  EXPECT_GE(interior_wall_rows, 1u);
}

}  // namespace
}  // namespace nomloc::eval
