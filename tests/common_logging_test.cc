#include "common/logging.h"

#include <gtest/gtest.h>

namespace nomloc::common {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(saved_); }
  LogLevel saved_ = LogLevel::kWarning;
};

TEST_F(LoggingTest, LevelRoundTrips) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo,
                         LogLevel::kWarning, LogLevel::kError,
                         LogLevel::kOff}) {
    SetLogLevel(level);
    EXPECT_EQ(GetLogLevel(), level);
  }
}

TEST_F(LoggingTest, SuppressedMessagesProduceNoOutput) {
  SetLogLevel(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  NOMLOC_LOG(Debug) << "hidden debug";
  NOMLOC_LOG(Info) << "hidden info";
  NOMLOC_LOG(Warning) << "hidden warning";
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST_F(LoggingTest, EnabledMessageCarriesTagFileAndText) {
  SetLogLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  NOMLOC_LOG(Warning) << "the answer is " << 42;
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("[W "), std::string::npos);
  EXPECT_NE(out.find("common_logging_test.cc"), std::string::npos);
  EXPECT_NE(out.find("the answer is 42"), std::string::npos);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  SetLogLevel(LogLevel::kOff);
  ::testing::internal::CaptureStderr();
  NOMLOC_LOG(Error) << "even errors";
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST_F(LoggingTest, StreamingArbitraryTypes) {
  SetLogLevel(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  NOMLOC_LOG(Debug) << 1.5 << ' ' << "text" << ' ' << true;
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("1.5 text 1"), std::string::npos);
}

TEST_F(LoggingTest, EachMessageIsOneLine) {
  SetLogLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  NOMLOC_LOG(Info) << "first";
  NOMLOC_LOG(Info) << "second";
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}

}  // namespace
}  // namespace nomloc::common
