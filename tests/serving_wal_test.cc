// WAL + checkpoint-file durability contract (ISSUE 10): append-before-
// apply frames replay in exact stream order, a torn tail (crash mid-
// append) is truncated away while any other damage is typed
// kDataCorruption, and checkpoint files load whole or not at all.
#include "serving/wal.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "serving/wire.h"

namespace nomloc::serving {
namespace {

std::string TestDir(const std::string& leaf) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  std::string dir = ::testing::TempDir() + "nomloc_wal/";
  dir += info->test_suite_name();
  dir += '.';
  dir += info->name();
  dir += '/';
  dir += leaf;
  // A clean slate: tests re-run in the same TempDir.
  for (int i = 1; i <= 16; ++i) {
    char name[32];
    std::snprintf(name, sizeof name, "/wal-%06d.log", i);
    std::remove((dir + name).c_str());
  }
  std::remove((dir + "/checkpoint.json").c_str());
  std::remove((dir + "/checkpoint.json.tmp").c_str());
  return dir;
}

WireDecoderAccept HostAccept() {
  return WireDecoderAccept{.packets = true,
                           .responses = false,
                           .controls = true,
                           .replicates = true,
                           .ordered = true};
}

IngestPacket Observation(std::uint64_t object_id, double timestamp_s) {
  IngestPacket packet;
  packet.kind = PacketKind::kObservation;
  packet.object_id = object_id;
  packet.ap_id = 3;
  packet.site_index = 1;
  packet.reported_position = {1.0, 2.0};
  packet.pdp = 0.5;
  packet.weight = 2.0;
  packet.timestamp_s = timestamp_s;
  packet.deadline_s = timestamp_s + 1.0;
  return packet;
}

/// Truncates `path` to `size` bytes (POSIX truncate via stdio is enough
/// for tests: reopen in r+ and ftruncate through fileno).
void TruncateFile(const std::string& path, long size) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(::ftruncate(fileno(f), size), 0);
  std::fclose(f);
}

long FileSize(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return -1;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  return size;
}

TEST(Wal, AppendThenReopenReplaysInStreamOrder) {
  WalConfig config;
  config.directory = TestDir("replay");
  config.fsync = false;
  auto opened = WriteAheadLog::Open(config, HostAccept());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_TRUE(opened->events.empty());

  std::string frames;
  AppendWireFrame(Observation(1, 1.0), frames);
  WireControl clock_set;
  clock_set.op = WireControlOp::kClockSet;
  clock_set.value = 2.0;
  AppendWireControlFrame(clock_set, frames);
  WireReplicate replicate;
  replicate.slot = 2;
  replicate.epoch = 1;
  replicate.packet = Observation(9, 1.5);
  AppendWireReplicateFrame(replicate, frames);
  ASSERT_TRUE(opened->wal->Append(frames).ok());
  ASSERT_TRUE(opened->wal->Sync().ok());
  opened->wal.reset();  // Close cleanly.

  auto reopened = WriteAheadLog::Open(config, HostAccept());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_FALSE(reopened->torn_tail_truncated);
  ASSERT_EQ(reopened->events.size(), 3u);
  EXPECT_EQ(reopened->events[0].kind, kWireObservationFrame);
  EXPECT_EQ(reopened->events[0].packet.object_id, 1u);
  EXPECT_EQ(reopened->events[1].kind, kWireControlFrame);
  EXPECT_EQ(reopened->events[1].control.op, WireControlOp::kClockSet);
  EXPECT_EQ(reopened->events[2].kind, kWireReplicateFrame);
  EXPECT_EQ(reopened->events[2].replicate.packet.object_id, 9u);
  EXPECT_EQ(reopened->frames_replayed, 3u);
}

TEST(Wal, RotatesSegmentsAndReplaysAcrossThem) {
  WalConfig config;
  config.directory = TestDir("rotate");
  config.fsync = false;
  config.segment_bytes = 256;  // The floor: rotate after ~3 observations.
  auto opened = WriteAheadLog::Open(config, HostAccept());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();

  for (std::uint64_t id = 0; id < 12; ++id) {
    std::string frame;
    AppendWireFrame(Observation(id, double(id)), frame);
    ASSERT_TRUE(opened->wal->Append(frame).ok());
  }
  EXPECT_GT(opened->wal->SegmentCount(), 1u);
  const std::size_t segments = opened->wal->SegmentCount();
  opened->wal.reset();

  auto reopened = WriteAheadLog::Open(config, HostAccept());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->segments_scanned, segments);
  ASSERT_EQ(reopened->events.size(), 12u);
  for (std::uint64_t id = 0; id < 12; ++id)
    EXPECT_EQ(reopened->events[id].packet.object_id, id);
}

TEST(Wal, TornTailIsTruncatedAndEarlierRecordsSurvive) {
  WalConfig config;
  config.directory = TestDir("torn");
  config.fsync = false;
  auto opened = WriteAheadLog::Open(config, HostAccept());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  for (std::uint64_t id = 0; id < 3; ++id) {
    std::string frame;
    AppendWireFrame(Observation(id, double(id)), frame);
    ASSERT_TRUE(opened->wal->Append(frame).ok());
  }
  opened->wal.reset();

  // A crash mid-append leaves a partial final record: chop 7 bytes off
  // the last (only) segment, mid-frame.
  const std::string segment = config.directory + "/wal-000001.log";
  const long full = FileSize(segment);
  ASSERT_GT(full, 7);
  TruncateFile(segment, full - 7);

  auto reopened = WriteAheadLog::Open(config, HostAccept());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE(reopened->torn_tail_truncated);
  ASSERT_EQ(reopened->events.size(), 2u);  // The torn third is gone.
  EXPECT_EQ(reopened->events[0].packet.object_id, 0u);
  EXPECT_EQ(reopened->events[1].packet.object_id, 1u);
  // The truncation is physical: the file now ends at the last complete
  // record, so a third open sees no tear at all.
  const long repaired = FileSize(segment);
  EXPECT_LT(repaired, full);
  reopened->wal.reset();
  auto third = WriteAheadLog::Open(config, HostAccept());
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(third->torn_tail_truncated);
  EXPECT_EQ(third->events.size(), 2u);
}

TEST(Wal, BitFlipIsTypedDataCorruptionNotPartialReplay) {
  WalConfig config;
  config.directory = TestDir("flip");
  config.fsync = false;
  auto opened = WriteAheadLog::Open(config, HostAccept());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::string frame;
  AppendWireFrame(Observation(5, 1.0), frame);
  ASSERT_TRUE(opened->wal->Append(frame).ok());
  opened->wal.reset();

  // Flip one payload byte mid-record: a checksum mismatch is damage, not
  // a tear — the log must refuse to open.
  const std::string segment = config.directory + "/wal-000001.log";
  std::FILE* f = std::fopen(segment.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, long(kWireHeaderBytes) + 10, SEEK_SET);
  std::fputc('\xff', f);
  std::fclose(f);

  auto reopened = WriteAheadLog::Open(config, HostAccept());
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), common::StatusCode::kDataCorruption);
}

TEST(Wal, TornFrameInNonFinalSegmentIsDataCorruption) {
  WalConfig config;
  config.directory = TestDir("midtear");
  config.fsync = false;
  config.segment_bytes = 256;
  auto opened = WriteAheadLog::Open(config, HostAccept());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  for (std::uint64_t id = 0; id < 12; ++id) {
    std::string frame;
    AppendWireFrame(Observation(id, double(id)), frame);
    ASSERT_TRUE(opened->wal->Append(frame).ok());
  }
  ASSERT_GT(opened->wal->SegmentCount(), 1u);
  opened->wal.reset();

  // A tear in segment 1 cannot be a crash footprint (later segments
  // exist, so the log kept appending past it): typed corruption.
  const std::string first = config.directory + "/wal-000001.log";
  const long full = FileSize(first);
  ASSERT_GT(full, 7);
  TruncateFile(first, full - 7);

  auto reopened = WriteAheadLog::Open(config, HostAccept());
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), common::StatusCode::kDataCorruption);
}

TEST(Wal, ResetDeletesSegmentsAndRestartsNumbering) {
  WalConfig config;
  config.directory = TestDir("reset");
  config.fsync = false;
  config.segment_bytes = 256;
  auto opened = WriteAheadLog::Open(config, HostAccept());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  for (std::uint64_t id = 0; id < 12; ++id) {
    std::string frame;
    AppendWireFrame(Observation(id, double(id)), frame);
    ASSERT_TRUE(opened->wal->Append(frame).ok());
  }
  ASSERT_TRUE(opened->wal->Reset().ok());
  EXPECT_EQ(opened->wal->SegmentCount(), 1u);
  opened->wal.reset();

  auto reopened = WriteAheadLog::Open(config, HostAccept());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE(reopened->events.empty());  // Compaction dropped everything.
}

TEST(Wal, ValidateRejectsBadConfig) {
  WalConfig config;
  EXPECT_FALSE(config.Validate().ok());  // Empty directory.
  config.directory = "/tmp/x";
  config.segment_bytes = 16;  // Below the floor.
  EXPECT_FALSE(config.Validate().ok());
}

TEST(CheckpointFile, SaveLoadRoundTrip) {
  const std::string path = TestDir("ckpt") + "/checkpoint.json";
  WalConfig config;  // Reuse the WAL's directory creation.
  config.directory = TestDir("ckpt");
  config.fsync = false;
  ASSERT_TRUE(WriteAheadLog::Open(config, HostAccept()).ok());

  const std::string payload = "{\"sessions\":[1,2,3]}";
  ASSERT_TRUE(SaveCheckpointFile(path, payload).ok());
  auto loaded = LoadCheckpointFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, payload);

  // Atomic replace: the new payload fully supersedes the old.
  ASSERT_TRUE(SaveCheckpointFile(path, "{}").ok());
  loaded = LoadCheckpointFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, "{}");
}

TEST(CheckpointFile, MissingFileIsNotFound) {
  const auto loaded = LoadCheckpointFile("/nonexistent/nomloc/ckpt");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), common::StatusCode::kNotFound);
}

TEST(CheckpointFile, TruncationIsDataCorruptionNotPartialRestore) {
  const std::string dir = TestDir("ckpt_trunc");
  WalConfig config;
  config.directory = dir;
  config.fsync = false;
  ASSERT_TRUE(WriteAheadLog::Open(config, HostAccept()).ok());
  const std::string path = dir + "/checkpoint.json";
  ASSERT_TRUE(SaveCheckpointFile(path, "{\"sessions\":[1,2,3,4,5]}").ok());

  const long full = FileSize(path);
  ASSERT_GT(full, 5);
  for (long cut : {full - 1, full - 5, full / 2}) {
    ASSERT_TRUE(SaveCheckpointFile(path, "{\"sessions\":[1,2,3,4,5]}").ok());
    TruncateFile(path, cut);
    const auto loaded = LoadCheckpointFile(path);
    ASSERT_FALSE(loaded.ok()) << "cut at " << cut << " loaded anyway";
    EXPECT_EQ(loaded.status().code(), common::StatusCode::kDataCorruption);
  }
}

TEST(CheckpointFile, ChecksumFlipAndTrailingBytesAreDataCorruption) {
  const std::string dir = TestDir("ckpt_flip");
  WalConfig config;
  config.directory = dir;
  config.fsync = false;
  ASSERT_TRUE(WriteAheadLog::Open(config, HostAccept()).ok());
  const std::string path = dir + "/checkpoint.json";
  ASSERT_TRUE(SaveCheckpointFile(path, "{\"k\":12345}").ok());

  {  // Flip one payload byte.
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, -2, SEEK_END);
    std::fputc('X', f);
    std::fclose(f);
    const auto loaded = LoadCheckpointFile(path);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), common::StatusCode::kDataCorruption);
  }
  {  // Trailing garbage after the declared payload length.
    ASSERT_TRUE(SaveCheckpointFile(path, "{\"k\":12345}").ok());
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fputs("junk", f);
    std::fclose(f);
    const auto loaded = LoadCheckpointFile(path);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), common::StatusCode::kDataCorruption);
  }
}

}  // namespace
}  // namespace nomloc::serving
