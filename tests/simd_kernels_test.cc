// SIMD-vs-scalar equivalence of every kernel, parameterized over each
// target the build supports on this machine.
//
// Numerical contract under test (DESIGN.md "SIMD kernel layer"):
//   * element-wise kernels are bit-identical to the scalar table on every
//     target — each output lane runs the same mul/add sequence;
//   * reduction kernels may reassociate across lanes and must match the
//     scalar result within a small ULP/relative bound.
// Lengths sweep across non-multiples of every lane width, inputs include
// denormals, and NaN canaries beyond the logical length verify that no
// kernel reads or writes past its bounds.
#include "simd/kernels.h"

#include <bit>
#include <cmath>
#include <complex>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "simd/dispatch.h"

namespace nomloc::simd {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr std::size_t kLengths[] = {1, 2,  3,  4,  5,  6,  7, 8,
                                    9, 15, 16, 17, 31, 63, 100};

std::vector<Target> SupportedTargets() {
  std::vector<Target> out;
  for (Target t :
       {Target::kScalar, Target::kSse2, Target::kNeon, Target::kAvx2}) {
    if (TargetSupported(t)) out.push_back(t);
  }
  return out;
}

std::int64_t UlpDiff(double a, double b) {
  if (a == b) return 0;
  if (std::isnan(a) || std::isnan(b) || std::signbit(a) != std::signbit(b))
    return std::numeric_limits<std::int64_t>::max();
  const auto ia = std::bit_cast<std::int64_t>(a);
  const auto ib = std::bit_cast<std::int64_t>(b);
  return ia > ib ? ia - ib : ib - ia;
}

// Reduction results: |a - b| within `ulps`, or both tiny (reassociated
// sums of denormals may round to zero on different sides).
void ExpectClose(double got, double want, std::int64_t ulps) {
  if (std::abs(got - want) <= 1e-300) return;
  EXPECT_LE(UlpDiff(got, want), ulps) << "got " << got << " want " << want;
}

std::vector<double> RandomVec(common::Rng& rng, std::size_t n,
                              bool with_denormals = false) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = rng.Uniform(-2.0, 2.0);
  if (with_denormals) {
    for (std::size_t i = 0; i < n; i += 3)
      v[i] = std::numeric_limits<double>::denorm_min() * double(i + 1);
  }
  return v;
}

std::vector<std::complex<double>> RandomCplx(common::Rng& rng, std::size_t n,
                                             bool with_denormals = false) {
  std::vector<std::complex<double>> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = {rng.Uniform(-2.0, 2.0), rng.Uniform(-2.0, 2.0)};
  if (with_denormals) {
    for (std::size_t i = 0; i < n; i += 4)
      v[i] = {std::numeric_limits<double>::min() / 2.0,
              std::numeric_limits<double>::denorm_min()};
  }
  return v;
}

class SimdKernelsTest : public ::testing::TestWithParam<Target> {
 protected:
  void SetUp() override {
    table_ = &detail::ScalarKernels();
    ForceTarget(GetParam());
    table_ = &ActiveKernels();
    scalar_ = &detail::ScalarKernels();
  }
  void TearDown() override { ForceTarget(ResolveTarget()); }

  const KernelTable* table_ = nullptr;
  const KernelTable* scalar_ = nullptr;
};

TEST_P(SimdKernelsTest, AxpyBitIdentical) {
  common::Rng rng(0xa1);
  for (std::size_t n : kLengths) {
    const auto x = RandomVec(rng, n, /*with_denormals=*/true);
    auto y = RandomVec(rng, n);
    auto y_scalar = y;
    const double a = rng.Uniform(-3.0, 3.0);
    table_->axpy(n, a, x.data(), y.data());
    scalar_->axpy(n, a, x.data(), y_scalar.data());
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(y[i], y_scalar[i]) << i;
  }
}

TEST_P(SimdKernelsTest, ScaleAndInvScaleBitIdentical) {
  common::Rng rng(0xa2);
  for (std::size_t n : kLengths) {
    auto x = RandomVec(rng, n, /*with_denormals=*/true);
    auto x_scalar = x;
    const double a = rng.Uniform(0.5, 3.0);
    table_->scale(n, a, x.data());
    scalar_->scale(n, a, x_scalar.data());
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(x[i], x_scalar[i]) << i;
    table_->inv_scale(n, a, x.data());
    scalar_->inv_scale(n, a, x_scalar.data());
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(x[i], x_scalar[i]) << i;
  }
}

TEST_P(SimdKernelsTest, CplxAxpyBitIdentical) {
  common::Rng rng(0xa3);
  for (std::size_t n : kLengths) {
    const auto tr = RandomVec(rng, n, /*with_denormals=*/true);
    const auto ti = RandomVec(rng, n);
    auto outr = RandomVec(rng, n);
    auto outi = RandomVec(rng, n);
    auto outr_s = outr;
    auto outi_s = outi;
    const double br = rng.Uniform(-2.0, 2.0);
    const double bi = rng.Uniform(-2.0, 2.0);
    table_->cplx_axpy(n, br, bi, tr.data(), ti.data(), outr.data(),
                      outi.data());
    scalar_->cplx_axpy(n, br, bi, tr.data(), ti.data(), outr_s.data(),
                       outi_s.data());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(outr[i], outr_s[i]) << i;
      EXPECT_EQ(outi[i], outi_s[i]) << i;
    }
  }
}

TEST_P(SimdKernelsTest, FftPassBitIdentical) {
  common::Rng rng(0xa4);
  const std::size_t n = 32;
  for (std::size_t half : {std::size_t(1), std::size_t(2), std::size_t(4),
                           std::size_t(8), std::size_t(16)}) {
    for (double wsign : {1.0, -1.0}) {
      auto re = RandomVec(rng, n);
      auto im = RandomVec(rng, n);
      auto re_s = re;
      auto im_s = im;
      const auto wr = RandomVec(rng, half);
      const auto wi = RandomVec(rng, half);
      table_->fft_pass(re.data(), im.data(), n, half, wr.data(), wi.data(),
                       wsign);
      scalar_->fft_pass(re_s.data(), im_s.data(), n, half, wr.data(),
                        wi.data(), wsign);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(re[i], re_s[i]) << "half=" << half << " i=" << i;
        EXPECT_EQ(im[i], im_s[i]) << "half=" << half << " i=" << i;
      }
    }
  }
}

TEST_P(SimdKernelsTest, TransposedMatVecBitIdentical) {
  // t_mat_vec is a sequence of per-row axpys: each x[c] sees the same
  // update chain on every target, so it is bit-identical, not just close.
  common::Rng rng(0xa5);
  for (std::size_t cols : {std::size_t(1), std::size_t(5), std::size_t(16),
                           std::size_t(23)}) {
    const std::size_t rows = 11;
    const auto a = RandomVec(rng, rows * cols);
    const auto y = RandomVec(rng, rows);
    std::vector<double> x(cols, 0.0), x_s(cols, 0.0);
    table_->t_mat_vec(a.data(), rows, cols, y.data(), x.data());
    scalar_->t_mat_vec(a.data(), rows, cols, y.data(), x_s.data());
    for (std::size_t c = 0; c < cols; ++c) EXPECT_EQ(x[c], x_s[c]) << c;
  }
}

TEST_P(SimdKernelsTest, InterleaveRoundTripBitIdentical) {
  common::Rng rng(0xa6);
  for (std::size_t n : kLengths) {
    const auto xs = RandomCplx(rng, n, /*with_denormals=*/true);
    std::vector<double> re(n), im(n);
    table_->deinterleave(n, reinterpret_cast<const double*>(xs.data()),
                         nullptr, re.data(), im.data());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(re[i], xs[i].real());
      EXPECT_EQ(im[i], xs[i].imag());
    }
    // Permuted gather (reversal) matches element-by-element too.
    std::vector<std::size_t> perm(n);
    for (std::size_t i = 0; i < n; ++i) perm[i] = n - 1 - i;
    table_->deinterleave(n, reinterpret_cast<const double*>(xs.data()),
                         perm.data(), re.data(), im.data());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(re[i], xs[n - 1 - i].real());
      EXPECT_EQ(im[i], xs[n - 1 - i].imag());
    }
    std::vector<std::complex<double>> back(n);
    table_->interleave(n, re.data(), im.data(),
                       reinterpret_cast<double*>(back.data()));
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(back[i], xs[n - 1 - i]);
  }
}

TEST_P(SimdKernelsTest, DotWithinUlpBound) {
  common::Rng rng(0xb1);
  for (std::size_t n : kLengths) {
    const auto a = RandomVec(rng, n, /*with_denormals=*/true);
    const auto b = RandomVec(rng, n);
    ExpectClose(table_->dot(a.data(), b.data(), n),
                scalar_->dot(a.data(), b.data(), n),
                std::int64_t(8 * (n + 1)));
  }
}

TEST_P(SimdKernelsTest, MatVecWithinUlpBound) {
  common::Rng rng(0xb2);
  const std::size_t rows = 9;
  for (std::size_t cols : {std::size_t(1), std::size_t(7), std::size_t(16),
                           std::size_t(21)}) {
    const auto a = RandomVec(rng, rows * cols);
    const auto x = RandomVec(rng, cols);
    std::vector<double> y(rows), y_s(rows);
    table_->mat_vec(a.data(), rows, cols, x.data(), y.data());
    scalar_->mat_vec(a.data(), rows, cols, x.data(), y_s.data());
    for (std::size_t r = 0; r < rows; ++r)
      ExpectClose(y[r], y_s[r], std::int64_t(8 * (cols + 1)));
  }
}

TEST_P(SimdKernelsTest, PowerSpectrumWithinUlpBound) {
  common::Rng rng(0xb3);
  for (std::size_t n : kLengths) {
    const auto xs = RandomCplx(rng, n, /*with_denormals=*/true);
    std::vector<double> out(n), out_s(n);
    table_->power_spectrum(n, reinterpret_cast<const double*>(xs.data()),
                           out.data());
    scalar_->power_spectrum(n, reinterpret_cast<const double*>(xs.data()),
                            out_s.data());
    // Element-wise, but the SIMD lanes use re^2+im^2 while the scalar
    // rounding is abs(z)^2 — a couple of ULP apart.
    for (std::size_t i = 0; i < n; ++i) ExpectClose(out[i], out_s[i], 4);

    auto acc = RandomVec(rng, n);
    auto acc_s = acc;
    table_->power_spectrum_add(n, reinterpret_cast<const double*>(xs.data()),
                               acc.data());
    scalar_->power_spectrum_add(
        n, reinterpret_cast<const double*>(xs.data()), acc_s.data());
    for (std::size_t i = 0; i < n; ++i) ExpectClose(acc[i], acc_s[i], 8);
  }
}

TEST_P(SimdKernelsTest, MagnitudesWithinUlpBound) {
  common::Rng rng(0xb4);
  for (std::size_t n : kLengths) {
    const auto xs = RandomCplx(rng, n);
    std::vector<double> out(n), out_s(n);
    table_->magnitudes(n, reinterpret_cast<const double*>(xs.data()),
                       out.data());
    scalar_->magnitudes(n, reinterpret_cast<const double*>(xs.data()),
                        out_s.data());
    for (std::size_t i = 0; i < n; ++i) ExpectClose(out[i], out_s[i], 4);
  }
}

TEST_P(SimdKernelsTest, MaxAndSumNormWithinUlpBound) {
  common::Rng rng(0xb5);
  for (std::size_t n : kLengths) {
    const auto xs = RandomCplx(rng, n, /*with_denormals=*/true);
    const double* p = reinterpret_cast<const double*>(xs.data());
    ExpectClose(table_->max_norm(n, p), scalar_->max_norm(n, p), 4);
    ExpectClose(table_->sum_norm(n, p), scalar_->sum_norm(n, p),
                std::int64_t(8 * (n + 1)));
  }
}

TEST_P(SimdKernelsTest, NoReadOrWriteBeyondLength) {
  // Inputs carry NaN canaries immediately after the logical length; output
  // canaries use a sentinel.  A kernel that touches the padding either
  // poisons its (finite) result or trips the sentinel check.
  common::Rng rng(0xc1);
  constexpr std::size_t kPad = 8;
  constexpr double kSentinel = 1234.5;
  for (std::size_t n : kLengths) {
    std::vector<double> a = RandomVec(rng, n + kPad);
    std::vector<double> b = RandomVec(rng, n + kPad);
    std::vector<std::complex<double>> xs = RandomCplx(rng, n + kPad);
    for (std::size_t i = n; i < n + kPad; ++i) {
      a[i] = kNaN;
      b[i] = kNaN;
      xs[i] = {kNaN, kNaN};
    }

    EXPECT_TRUE(std::isfinite(table_->dot(a.data(), b.data(), n))) << n;
    EXPECT_TRUE(std::isfinite(
        table_->sum_norm(n, reinterpret_cast<const double*>(xs.data()))))
        << n;
    EXPECT_TRUE(std::isfinite(
        table_->max_norm(n, reinterpret_cast<const double*>(xs.data()))))
        << n;

    std::vector<double> out(n + kPad, kSentinel);
    table_->power_spectrum(n, reinterpret_cast<const double*>(xs.data()),
                           out.data());
    for (std::size_t i = 0; i < n; ++i) EXPECT_TRUE(std::isfinite(out[i]));
    for (std::size_t i = n; i < n + kPad; ++i) EXPECT_EQ(out[i], kSentinel);

    std::vector<double> y(n + kPad, kSentinel);
    table_->axpy(n, 0.5, a.data(), y.data());
    for (std::size_t i = 0; i < n; ++i) EXPECT_TRUE(std::isfinite(y[i]));
    for (std::size_t i = n; i < n + kPad; ++i) EXPECT_EQ(y[i], kSentinel);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTargets, SimdKernelsTest, ::testing::ValuesIn(SupportedTargets()),
    [](const ::testing::TestParamInfo<Target>& info) {
      return std::string(TargetName(info.param));
    });

}  // namespace
}  // namespace nomloc::simd
