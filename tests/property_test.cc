// Cross-module randomized property tests: invariants that must hold for
// *any* input, checked over seeded random sweeps.  These complement the
// per-module unit tests with the algebra the system relies on: geometric
// transforms, Fourier identities, LP duality/scaling, channel reciprocity,
// and end-to-end invariances of the NomLoc pipeline.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "channel/csi_model.h"
#include "common/rng.h"
#include "core/nomloc.h"
#include "dsp/fft.h"
#include "geometry/hull.h"
#include "localization/proximity.h"
#include "localization/sp_solver.h"
#include "lp/simplex.h"

namespace nomloc {
namespace {

using geometry::Polygon;
using geometry::Vec2;

// ---------------------------------------------------------------- geometry

class GeometryTransformTest : public ::testing::TestWithParam<int> {};

TEST_P(GeometryTransformTest, AreaInvariantCentroidCovariant) {
  common::Rng rng{std::uint64_t(GetParam())};
  // Random convex polygon from a point-cloud hull.
  std::vector<Vec2> cloud;
  for (int i = 0; i < 24; ++i)
    cloud.push_back({rng.Uniform(-5, 5), rng.Uniform(-5, 5)});
  const auto hull = geometry::ConvexHull(cloud);
  ASSERT_GE(hull.size(), 3u);
  auto poly = Polygon::Create({hull.begin(), hull.end()});
  ASSERT_TRUE(poly.ok());

  const double angle = rng.UniformAngle();
  const Vec2 shift{rng.Uniform(-20, 20), rng.Uniform(-20, 20)};
  std::vector<Vec2> moved;
  for (const Vec2 v : poly->Vertices())
    moved.push_back(v.Rotated(angle) + shift);
  auto moved_poly = Polygon::Create(std::move(moved));
  ASSERT_TRUE(moved_poly.ok());

  EXPECT_NEAR(moved_poly->Area(), poly->Area(), 1e-9);
  EXPECT_NEAR(moved_poly->Perimeter(), poly->Perimeter(), 1e-9);
  const Vec2 expected_centroid = poly->Centroid().Rotated(angle) + shift;
  EXPECT_NEAR(moved_poly->Centroid().x, expected_centroid.x, 1e-9);
  EXPECT_NEAR(moved_poly->Centroid().y, expected_centroid.y, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeometryTransformTest,
                         ::testing::Range(1, 11));

TEST(GeometryProperty, MirrorTwicePreservesDistances) {
  common::Rng rng(77);
  for (int trial = 0; trial < 100; ++trial) {
    const geometry::Line line = geometry::Line::Through(
        {rng.Uniform(-5, 5), rng.Uniform(-5, 5)},
        {rng.Uniform(-5, 5) + 0.1, rng.Uniform(-5, 5) + 0.1});
    const Vec2 a{rng.Uniform(-5, 5), rng.Uniform(-5, 5)};
    const Vec2 b{rng.Uniform(-5, 5), rng.Uniform(-5, 5)};
    // Reflection is an isometry.
    EXPECT_NEAR(Distance(line.Mirror(a), line.Mirror(b)), Distance(a, b),
                1e-9);
  }
}

// -------------------------------------------------------------------- dsp

class FftIdentityTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftIdentityTest, RealInputHasHermitianSpectrum) {
  const std::size_t n = GetParam();
  common::Rng rng(n);
  std::vector<dsp::Cplx> x(n);
  for (auto& v : x) v = {rng.Uniform(-1, 1), 0.0};
  const auto spectrum = dsp::Fft(x);
  for (std::size_t k = 1; k < n; ++k) {
    EXPECT_NEAR(spectrum[k].real(), spectrum[n - k].real(), 1e-9);
    EXPECT_NEAR(spectrum[k].imag(), -spectrum[n - k].imag(), 1e-9);
  }
}

TEST_P(FftIdentityTest, CircularShiftIsLinearPhase) {
  const std::size_t n = GetParam();
  if (n < 4) GTEST_SKIP();
  common::Rng rng(2 * n);
  std::vector<dsp::Cplx> x(n);
  for (auto& v : x) v = {rng.Uniform(-1, 1), rng.Uniform(-1, 1)};
  std::vector<dsp::Cplx> shifted(n);
  const std::size_t s = 3 % n;
  for (std::size_t t = 0; t < n; ++t) shifted[(t + s) % n] = x[t];
  const auto fx = dsp::Fft(x);
  const auto fs = dsp::Fft(shifted);
  for (std::size_t k = 0; k < n; ++k) {
    const double ang =
        -2.0 * std::numbers::pi * double(k) * double(s) / double(n);
    const dsp::Cplx expected =
        fx[k] * dsp::Cplx(std::cos(ang), std::sin(ang));
    EXPECT_NEAR(std::abs(fs[k] - expected), 0.0, 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, FftIdentityTest,
                         ::testing::Values(4, 8, 30, 56, 64, 100));

// --------------------------------------------------------------------- lp

TEST(LpProperty, ObjectiveScalesLinearly) {
  // min c.x scaled by k scales the optimum by k; scaling b scales the
  // optimal point for this homogeneous-constraint family.
  common::Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    lp::InequalityLp prog;
    const std::size_t m = 4 + rng.UniformInt(4);
    prog.a = lp::Matrix(m + 4, 2);
    prog.b.assign(m + 4, 0.0);
    prog.c = {rng.Uniform(-1, 1), rng.Uniform(-1, 1)};
    prog.nonneg = {false, false};
    for (std::size_t r = 0; r < m; ++r) {
      prog.a(r, 0) = rng.Uniform(-1, 1);
      prog.a(r, 1) = rng.Uniform(-1, 1);
      prog.b[r] = rng.Uniform(0.5, 2.0);
    }
    prog.a(m, 0) = 1.0;
    prog.b[m] = 4.0;
    prog.a(m + 1, 0) = -1.0;
    prog.b[m + 1] = 4.0;
    prog.a(m + 2, 1) = 1.0;
    prog.b[m + 2] = 4.0;
    prog.a(m + 3, 1) = -1.0;
    prog.b[m + 3] = 4.0;

    auto base = lp::SolveSimplex(prog);
    ASSERT_TRUE(base.ok());

    lp::InequalityLp scaled_c = prog;
    for (double& v : scaled_c.c) v *= 3.0;
    auto sc = lp::SolveSimplex(scaled_c);
    ASSERT_TRUE(sc.ok());
    EXPECT_NEAR(sc->objective, 3.0 * base->objective, 1e-7);

    lp::InequalityLp scaled_b = prog;
    for (double& v : scaled_b.b) v *= 2.0;
    auto sb = lp::SolveSimplex(scaled_b);
    ASSERT_TRUE(sb.ok());
    EXPECT_NEAR(sb->objective, 2.0 * base->objective, 1e-7);
  }
}

// ---------------------------------------------------------------- channel

TEST(ChannelProperty, RayTracingIsReciprocal) {
  // Swapping TX and RX preserves every path's length and loss (the image
  // method is symmetric; only the arrival direction flips).
  auto env = channel::IndoorEnvironment::Create(
      Polygon::Rectangle(0, 0, 12, 8), {},
      {{Polygon::Rectangle(5, 3, 7, 5), channel::materials::Wood()}});
  ASSERT_TRUE(env.ok());
  common::Rng rng(9);
  env->PlaceScatterers(6, rng);
  channel::PropagationConfig cfg;
  cfg.relative_cutoff_db = 300.0;
  for (int trial = 0; trial < 20; ++trial) {
    const Vec2 a{rng.Uniform(0.5, 11.5), rng.Uniform(0.5, 7.5)};
    const Vec2 b{rng.Uniform(0.5, 11.5), rng.Uniform(0.5, 7.5)};
    if (!env->IsFreeSpace(a) || !env->IsFreeSpace(b)) continue;
    auto forward = channel::TracePaths(*env, a, b, cfg);
    auto backward = channel::TracePaths(*env, b, a, cfg);
    ASSERT_EQ(forward.size(), backward.size());
    for (std::size_t p = 0; p < forward.size(); ++p) {
      EXPECT_NEAR(forward[p].length_m, backward[p].length_m, 1e-6);
      EXPECT_NEAR(forward[p].loss_db, backward[p].loss_db, 1e-6);
    }
  }
}

TEST(ChannelProperty, MeanResponseScalesWithTxPower) {
  auto env =
      channel::IndoorEnvironment::Create(Polygon::Rectangle(0, 0, 12, 8));
  ASSERT_TRUE(env.ok());
  for (double extra_db : {3.0, 10.0, 17.0}) {
    channel::ChannelConfig lo;
    channel::ChannelConfig hi;
    hi.tx_power_dbm = lo.tx_power_dbm + extra_db;
    const channel::CsiSimulator sl(*env, lo);
    const channel::CsiSimulator sh(*env, hi);
    const double pl =
        sl.MakeLink({1, 1}, {9, 6}).MeanResponse().TotalPower();
    const double ph =
        sh.MakeLink({1, 1}, {9, 6}).MeanResponse().TotalPower();
    EXPECT_NEAR(common::ToDb(ph / pl), extra_db, 1e-6);
  }
}

// ------------------------------------------------------------ localization

TEST(PipelineProperty, JudgementsInvariantToCommonPowerScale) {
  // PDP enters only as ratios: scaling every anchor's power by the same
  // factor changes neither directions nor confidences.
  common::Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<localization::Anchor> anchors;
    const std::size_t n = 3 + rng.UniformInt(4);
    for (std::size_t i = 0; i < n; ++i)
      anchors.push_back({{rng.Uniform(0, 10), rng.Uniform(0, 8)},
                         rng.Uniform(1e-9, 1e-3),
                         false});
    auto scaled = anchors;
    const double k = rng.Uniform(0.001, 1000.0);
    for (auto& a : scaled) a.pdp *= k;
    const auto j1 = localization::JudgeProximity(anchors);
    const auto j2 = localization::JudgeProximity(scaled);
    ASSERT_EQ(j1.size(), j2.size());
    for (std::size_t i = 0; i < j1.size(); ++i) {
      EXPECT_EQ(j1[i].winner, j2[i].winner);
      EXPECT_EQ(j1[i].loser, j2[i].loser);
      EXPECT_NEAR(j1[i].confidence, j2[i].confidence, 1e-12);
    }
  }
}

TEST(PipelineProperty, SpEstimateCovariantUnderTranslation) {
  // Shifting the whole scene (room, anchors, truth) shifts the estimate.
  common::Rng rng(17);
  for (int trial = 0; trial < 15; ++trial) {
    const Vec2 shift{rng.Uniform(-50, 50), rng.Uniform(-50, 50)};
    const Polygon room = Polygon::Rectangle(0, 0, 10, 8);
    const Polygon moved_room = Polygon::Rectangle(
        shift.x, shift.y, 10 + shift.x, 8 + shift.y);
    std::vector<Vec2> aps{{1, 1}, {9, 1}, {9, 7}, {1, 7}, {5, 4}};
    const Vec2 truth{rng.Uniform(1, 9), rng.Uniform(1, 7)};

    auto constraints_for = [&](Vec2 offset) {
      std::vector<localization::SpConstraint> out;
      for (std::size_t i = 0; i < aps.size(); ++i) {
        for (std::size_t j = i + 1; j < aps.size(); ++j) {
          const bool i_closer =
              Distance(truth, aps[i]) <= Distance(truth, aps[j]);
          const Vec2 w = (i_closer ? aps[i] : aps[j]) + offset;
          const Vec2 l = (i_closer ? aps[j] : aps[i]) + offset;
          out.push_back({geometry::HalfPlane::CloserTo(w, l), 0.9, false});
        }
      }
      return out;
    };

    auto base =
        localization::SolveSpPart(room, constraints_for({0, 0}), {});
    auto moved =
        localization::SolveSpPart(moved_room, constraints_for(shift), {});
    ASSERT_TRUE(base.ok());
    ASSERT_TRUE(moved.ok());
    EXPECT_NEAR(moved->estimate.x, base->estimate.x + shift.x, 1e-6);
    EXPECT_NEAR(moved->estimate.y, base->estimate.y + shift.y, 1e-6);
  }
}

TEST(PipelineProperty, EndToEndEstimateAlwaysInsideArea) {
  // Whatever the (random) power values, the engine's output stays inside
  // the floor polygon — the virtual-AP boundary guarantee.
  auto engine = core::NomLocEngine::Create(Polygon::Rectangle(0, 0, 10, 8));
  ASSERT_TRUE(engine.ok());
  common::Rng rng(19);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<localization::Anchor> anchors;
    const std::size_t n = 3 + rng.UniformInt(5);
    for (std::size_t i = 0; i < n; ++i) {
      anchors.push_back({{rng.Uniform(0, 10), rng.Uniform(0, 8)},
                         std::pow(10.0, rng.Uniform(-9, -3)),
                         rng.Bernoulli(0.5)});
    }
    auto est = engine->LocateFromAnchors(anchors);
    if (!est.ok()) continue;  // Coincident anchors: legitimately rejected.
    EXPECT_TRUE(engine->Area().Contains(est->position, 1e-5))
        << "(" << est->position.x << ", " << est->position.y << ")";
  }
}

}  // namespace
}  // namespace nomloc
