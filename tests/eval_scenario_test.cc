#include "eval/runner.h"
#include "eval/scenario.h"

#include <gtest/gtest.h>

namespace nomloc::eval {
namespace {

using geometry::Vec2;

RunConfig SmallConfig() {
  RunConfig cfg;
  cfg.packets_per_batch = 10;
  cfg.trials = 2;
  cfg.dwell_count = 4;
  cfg.seed = 5;
  return cfg;
}

TEST(Scenarios, LabLayoutMatchesPaper) {
  const Scenario lab = LabScenario();
  EXPECT_EQ(lab.name, "lab");
  EXPECT_EQ(lab.static_aps.size(), 4u);      // 4 APs (§V-B).
  EXPECT_EQ(lab.nomadic_sites.size(), 4u);   // {home, P1, P2, P3}.
  EXPECT_EQ(lab.test_sites.size(), 10u);     // 10 sites (§V-C).
  EXPECT_EQ(lab.nomadic_sites.front(), lab.static_aps.front());
}

TEST(Scenarios, LobbyLayoutMatchesPaper) {
  const Scenario lobby = LobbyScenario();
  EXPECT_EQ(lobby.name, "lobby");
  EXPECT_EQ(lobby.static_aps.size(), 4u);
  EXPECT_EQ(lobby.nomadic_sites.size(), 4u);
  EXPECT_EQ(lobby.test_sites.size(), 12u);   // 12 sites (§V-C).
  EXPECT_FALSE(lobby.env.Boundary().IsConvex());  // The L shape.
}

TEST(Scenarios, AllSitesAreInFreeSpace) {
  for (const Scenario& s : {LabScenario(), LobbyScenario()}) {
    for (const Vec2 p : s.static_aps) EXPECT_TRUE(s.env.IsFreeSpace(p));
    for (const Vec2 p : s.nomadic_sites) EXPECT_TRUE(s.env.IsFreeSpace(p));
    for (const Vec2 p : s.test_sites) EXPECT_TRUE(s.env.IsFreeSpace(p));
  }
}

TEST(Scenarios, LabIsMoreClutteredThanLobby) {
  const Scenario lab = LabScenario();
  const Scenario lobby = LobbyScenario();
  EXPECT_GT(lab.env.Obstacles().size(), lobby.env.Obstacles().size());
  EXPECT_GT(lab.env.Scatterers().size(), lobby.env.Scatterers().size());
}

TEST(Scenarios, LabHasNlosTestSites) {
  // At least one test-site/AP link must be blocked (the clutter that
  // motivates the whole paper).
  const Scenario lab = LabScenario();
  int blocked = 0;
  for (const Vec2 site : lab.test_sites)
    for (const Vec2 ap : lab.static_aps)
      if (!lab.env.HasLineOfSight(site, ap)) ++blocked;
  EXPECT_GT(blocked, 3);
}

TEST(Scenarios, ByNameLookup) {
  EXPECT_TRUE(ScenarioByName("lab").ok());
  EXPECT_TRUE(ScenarioByName("lobby").ok());
  EXPECT_TRUE(ScenarioByName("office").ok());
  EXPECT_EQ(ScenarioByName("warehouse").status().code(),
            common::StatusCode::kNotFound);
}

TEST(Scenarios, OfficeHasInteriorWalls) {
  const Scenario office = OfficeScenario();
  EXPECT_EQ(office.test_sites.size(), 12u);
  // Walls: 4 boundary edges + 7 drywall partitions + 2 obstacles x 4.
  EXPECT_EQ(office.env.Walls().size(), 4u + 7u + 8u);
  for (const Vec2 p : office.static_aps) EXPECT_TRUE(office.env.IsFreeSpace(p));
  for (const Vec2 p : office.test_sites) EXPECT_TRUE(office.env.IsFreeSpace(p));
}

TEST(Scenarios, OfficeWallsBlockButDoorsAllow) {
  const Scenario office = OfficeScenario();
  // Through a drywall wall (open area to office, no door on the path).
  EXPECT_FALSE(office.env.HasLineOfSight({3.0, 2.0}, {2.0, 8.0}));
  // Through the corridor door gaps: open-area (9,2) sees corridor (9,5.2).
  EXPECT_TRUE(office.env.HasLineOfSight({9.0, 2.0}, {9.0, 5.2}));
}

TEST(Scenarios, OfficeLocalizationRuns) {
  RunConfig cfg = SmallConfig();
  auto result = RunLocalization(OfficeScenario(), cfg);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->sites.size(), 12u);
  EXPECT_LT(result->MeanError(), 6.0);
}

TEST(Scenarios, OfficeNomadicBeatsStatic) {
  RunConfig nomadic = SmallConfig();
  nomadic.trials = 4;
  RunConfig fixed = nomadic;
  fixed.deployment = Deployment::kStatic;
  const Scenario office = OfficeScenario();
  auto rn = RunLocalization(office, nomadic);
  auto rs = RunLocalization(office, fixed);
  ASSERT_TRUE(rn.ok());
  ASSERT_TRUE(rs.ok());
  EXPECT_LT(rn->MeanError(), rs->MeanError() + 0.3);
}

TEST(Scenarios, ScatterersDeterministicPerSeed) {
  const Scenario a = LabScenario(123);
  const Scenario b = LabScenario(123);
  const Scenario c = LabScenario(456);
  ASSERT_EQ(a.env.Scatterers().size(), b.env.Scatterers().size());
  for (std::size_t i = 0; i < a.env.Scatterers().size(); ++i)
    EXPECT_EQ(a.env.Scatterers()[i], b.env.Scatterers()[i]);
  EXPECT_NE(a.env.Scatterers()[0], c.env.Scatterers()[0]);
}

TEST(Runner, ProducesOneResultPerSite) {
  const Scenario lab = LabScenario();
  RunConfig cfg = SmallConfig();
  auto result = RunLocalization(lab, cfg);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->sites.size(), lab.test_sites.size());
  for (const SiteResult& site : result->sites) {
    EXPECT_EQ(site.trial_errors_m.size(), cfg.trials);
    EXPECT_GE(site.mean_error_m, 0.0);
  }
  EXPECT_GE(result->slv, 0.0);
}

TEST(Runner, ZeroTrialsRejected) {
  RunConfig cfg = SmallConfig();
  cfg.trials = 0;
  EXPECT_FALSE(RunLocalization(LabScenario(), cfg).ok());
}

TEST(Runner, DeterministicGivenSeed) {
  const Scenario lab = LabScenario();
  auto a = RunLocalization(lab, SmallConfig());
  auto b = RunLocalization(lab, SmallConfig());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (std::size_t i = 0; i < a->sites.size(); ++i)
    EXPECT_DOUBLE_EQ(a->sites[i].mean_error_m, b->sites[i].mean_error_m);
}

TEST(Runner, StaticDeploymentUsesOnlyStaticAnchors) {
  const Scenario lab = LabScenario();
  RunConfig cfg = SmallConfig();
  cfg.deployment = Deployment::kStatic;
  cfg.trials = 1;
  auto result = RunLocalization(lab, cfg);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->sites.size(), lab.test_sites.size());
}

TEST(Runner, AllErrorsPoolsTrials) {
  auto result = RunLocalization(LabScenario(), SmallConfig());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->AllErrors().size(),
            result->sites.size() * SmallConfig().trials);
  EXPECT_EQ(result->SiteMeanErrors().size(), result->sites.size());
  EXPECT_GE(result->MeanError(), 0.0);
}

TEST(Runner, ParallelRunBitIdenticalToSequential) {
  const Scenario lab = LabScenario();
  RunConfig seq = SmallConfig();
  RunConfig par = SmallConfig();
  par.threads = 4;
  auto a = RunLocalization(lab, seq);
  auto b = RunLocalization(lab, par);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->sites.size(), b->sites.size());
  for (std::size_t i = 0; i < a->sites.size(); ++i) {
    ASSERT_EQ(a->sites[i].trial_errors_m.size(),
              b->sites[i].trial_errors_m.size());
    for (std::size_t t = 0; t < a->sites[i].trial_errors_m.size(); ++t)
      EXPECT_DOUBLE_EQ(a->sites[i].trial_errors_m[t],
                       b->sites[i].trial_errors_m[t]);
  }
  EXPECT_DOUBLE_EQ(a->slv, b->slv);
}

TEST(Runner, MimoConfigurationRuns) {
  const Scenario lab = LabScenario();
  RunConfig cfg = SmallConfig();
  cfg.channel.rx_antennas = 3;
  auto result = RunLocalization(lab, cfg);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_LT(result->MeanError(), 5.0);
}

TEST(Runner, ProximityAccuracyBetweenZeroAndOne) {
  const Scenario lobby = LobbyScenario();
  RunConfig cfg = SmallConfig();
  auto result = RunProximityAccuracy(lobby, cfg);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->per_site_accuracy.size(), lobby.test_sites.size());
  for (double acc : result->per_site_accuracy) {
    EXPECT_GE(acc, 0.0);
    EXPECT_LE(acc, 1.0);
  }
}

TEST(Runner, ProximityAccuracyIsHighOverall) {
  // The PDP mechanism is the paper's Fig. 7 claim: mostly > 85 %.
  const Scenario lobby = LobbyScenario();
  RunConfig cfg = SmallConfig();
  cfg.trials = 4;
  cfg.packets_per_batch = 20;
  auto result = RunProximityAccuracy(lobby, cfg);
  ASSERT_TRUE(result.ok());
  double mean = 0.0;
  for (double acc : result->per_site_accuracy) mean += acc;
  mean /= double(result->per_site_accuracy.size());
  EXPECT_GT(mean, 0.7);
}

}  // namespace
}  // namespace nomloc::eval
