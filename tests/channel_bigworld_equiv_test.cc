// Randomized brute-vs-indexed equivalence over procedurally generated
// worlds: TracePaths must be bit-identical under TraceGeometry::kIndexed
// and TraceGeometry::kBrute for every layout, size, and seed tried here.
// This is the oracle check backing the trace.cold.bigworld speedup — the
// index may only ever change *when* walls are tested, never the result.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "channel/environment.h"
#include "channel/propagation.h"
#include "common/assert.h"
#include "geometry/polygon.h"
#include "world/worldgen.h"

namespace nomloc::channel {
namespace {

using geometry::Vec2;

// Restores the process-wide trace-geometry mode on scope exit so test
// order never leaks a forced mode.
class ScopedTraceGeometry {
 public:
  explicit ScopedTraceGeometry(TraceGeometry mode)
      : saved_(ActiveTraceGeometry()) {
    ForceTraceGeometry(mode);
  }
  ~ScopedTraceGeometry() { ForceTraceGeometry(saved_); }

 private:
  TraceGeometry saved_;
};

bool BitIdentical(const std::vector<PropagationPath>& a,
                  const std::vector<PropagationPath>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].length_m != b[i].length_m) return false;
    if (a[i].loss_db != b[i].loss_db) return false;
    if (a[i].bounces != b[i].bounces) return false;
    if (a[i].is_direct != b[i].is_direct) return false;
    if (a[i].is_scatter != b[i].is_scatter) return false;
    if (a[i].aoa_rad != b[i].aoa_rad) return false;
  }
  return true;
}

// Traces every (ap, test site) pair under both geometry backends and
// asserts bit-identity.
void ExpectEquivalence(const world::GeneratedWorld& w,
                       const PropagationConfig& config) {
  for (const Vec2 tx : w.ap_sites) {
    for (const Vec2 rx : w.test_sites) {
      std::vector<PropagationPath> indexed, brute;
      {
        ScopedTraceGeometry mode(TraceGeometry::kIndexed);
        indexed = TracePaths(w.env, tx, rx, config);
      }
      {
        ScopedTraceGeometry mode(TraceGeometry::kBrute);
        brute = TracePaths(w.env, tx, rx, config);
      }
      ASSERT_TRUE(BitIdentical(indexed, brute))
          << w.name << " tx=(" << tx.x << "," << tx.y << ") rx=(" << rx.x
          << "," << rx.y << ")";
    }
  }
}

world::GeneratedWorld MakeWorld(world::Layout layout, std::size_t rooms,
                                std::uint64_t seed,
                                std::size_t max_sites = 6) {
  world::WorldSpec spec;
  spec.layout = layout;
  spec.rooms = rooms;
  spec.seed = seed;
  spec.max_test_sites = max_sites;
  auto w = world::Generate(spec);
  NOMLOC_ASSERT(w.ok());
  return std::move(w).value();
}

TEST(BigworldEquivalence, AllLayoutsOrderOne) {
  PropagationConfig config;
  config.max_reflection_order = 1;
  for (const world::Layout layout :
       {world::Layout::kOfficeGrid, world::Layout::kCorridorSpine,
        world::Layout::kAtrium, world::Layout::kMultiFloor}) {
    for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
      ExpectEquivalence(MakeWorld(layout, 24, seed), config);
    }
  }
}

TEST(BigworldEquivalence, SizesSweepOrderOne) {
  PropagationConfig config;
  config.max_reflection_order = 1;
  for (const std::size_t rooms : {10u, 40u, 100u}) {
    ExpectEquivalence(MakeWorld(world::Layout::kOfficeGrid, rooms, 0xabc,
                                /*max_sites=*/4),
                      config);
  }
}

TEST(BigworldEquivalence, SecondOrderReflectionsSmallWorld) {
  // Order 2 multiplies candidate wall sequences, exercising the specular
  // back-trace (FirstHit-free but penetration-heavy) on every leg.
  PropagationConfig config;
  config.max_reflection_order = 2;
  ExpectEquivalence(MakeWorld(world::Layout::kCorridorSpine, 10, 0xdef,
                              /*max_sites=*/3),
                    config);
}

TEST(BigworldEquivalence, DegenerateGeometry) {
  // Hand-built world with collinear overlapping walls, a zero-length
  // obstacle edge... (zero-length walls are skipped by the generator, so
  // build directly): a receiver sitting exactly on a wall, and links
  // collinear with walls.
  const Material drywall = materials::Drywall();
  std::vector<Wall> walls;
  // 20 parallel collinear-adjacent walls along y=2 (above the index's
  // build threshold) plus crossing walls sharing endpoints.
  for (int i = 0; i < 20; ++i)
    walls.push_back({{{double(i), 2.0}, {double(i) + 1.0, 2.0}}, drywall});
  walls.push_back({{{5.0, 0.5}, {5.0, 3.5}}, drywall});   // Crosses y=2.
  walls.push_back({{{5.0, 3.5}, {8.0, 3.5}}, drywall});   // Shares endpoint.
  auto env = IndoorEnvironment::Create(
      geometry::Polygon::Rectangle(-1.0, 0.0, 21.0, 4.0), std::move(walls));
  ASSERT_TRUE(env.ok());
  ASSERT_FALSE(env->BlockingIndex().Empty());

  PropagationConfig config;
  config.max_reflection_order = 1;
  const std::vector<Vec2> probes{{0.5, 1.0},  {10.0, 2.0} /* on a wall */,
                                 {5.0, 3.5} /* wall joint */, {20.5, 3.0},
                                 {5.0, 1.0} /* collinear with cross wall */};
  for (const Vec2 tx : probes) {
    for (const Vec2 rx : probes) {
      if (tx.x == rx.x && tx.y == rx.y) continue;
      std::vector<PropagationPath> indexed, brute;
      {
        ScopedTraceGeometry mode(TraceGeometry::kIndexed);
        indexed = TracePaths(*env, tx, rx, config);
      }
      {
        ScopedTraceGeometry mode(TraceGeometry::kBrute);
        brute = TracePaths(*env, tx, rx, config);
      }
      ASSERT_TRUE(BitIdentical(indexed, brute))
          << "tx=(" << tx.x << "," << tx.y << ") rx=(" << rx.x << "," << rx.y
          << ")";
    }
  }
}

TEST(BigworldEquivalence, LineOfSightAndPenetrationAgree) {
  const auto w = MakeWorld(world::Layout::kAtrium, 40, 0x123, 8);
  for (const Vec2 tx : w.ap_sites) {
    for (const Vec2 rx : w.test_sites) {
      bool los_i, los_b;
      double pen_i, pen_b;
      {
        ScopedTraceGeometry mode(TraceGeometry::kIndexed);
        los_i = w.env.HasLineOfSight(tx, rx);
        pen_i = w.env.PenetrationLossDb(tx, rx);
      }
      {
        ScopedTraceGeometry mode(TraceGeometry::kBrute);
        los_b = w.env.HasLineOfSight(tx, rx);
        pen_b = w.env.PenetrationLossDb(tx, rx);
      }
      EXPECT_EQ(los_i, los_b);
      EXPECT_EQ(pen_i, pen_b);  // Bitwise: same walls, same sum order.
    }
  }
}

TEST(BigworldEquivalence, EnvOverrideForcesBrute) {
  // ResolveTraceGeometry honours NOMLOC_FORCE_BRUTE_TRACE, mirroring the
  // SIMD NOMLOC_FORCE_SCALAR idiom.
  ASSERT_EQ(setenv("NOMLOC_FORCE_BRUTE_TRACE", "1", /*overwrite=*/1), 0);
  EXPECT_EQ(ResolveTraceGeometry(), TraceGeometry::kBrute);
  ASSERT_EQ(setenv("NOMLOC_FORCE_BRUTE_TRACE", "0", 1), 0);
  EXPECT_EQ(ResolveTraceGeometry(), TraceGeometry::kIndexed);
  ASSERT_EQ(unsetenv("NOMLOC_FORCE_BRUTE_TRACE"), 0);
  EXPECT_EQ(ResolveTraceGeometry(), TraceGeometry::kIndexed);
}

}  // namespace
}  // namespace nomloc::channel
