#include "geometry/vec2.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace nomloc::geometry {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0}, b{3.0, -1.0};
  EXPECT_EQ(a + b, Vec2(4.0, 1.0));
  EXPECT_EQ(a - b, Vec2(-2.0, 3.0));
  EXPECT_EQ(-a, Vec2(-1.0, -2.0));
  EXPECT_EQ(a * 2.0, Vec2(2.0, 4.0));
  EXPECT_EQ(2.0 * a, Vec2(2.0, 4.0));
  EXPECT_EQ(a / 2.0, Vec2(0.5, 1.0));
}

TEST(Vec2, CompoundAssignment) {
  Vec2 v{1.0, 1.0};
  v += {2.0, 3.0};
  EXPECT_EQ(v, Vec2(3.0, 4.0));
  v -= {1.0, 1.0};
  EXPECT_EQ(v, Vec2(2.0, 3.0));
  v *= 2.0;
  EXPECT_EQ(v, Vec2(4.0, 6.0));
}

TEST(Vec2, NormAndNormSq) {
  const Vec2 v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(v.Norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.NormSq(), 25.0);
}

TEST(Vec2, Normalized) {
  const Vec2 v{3.0, 4.0};
  const Vec2 n = v.Normalized();
  EXPECT_NEAR(n.Norm(), 1.0, 1e-12);
  EXPECT_NEAR(n.x, 0.6, 1e-12);
  EXPECT_NEAR(n.y, 0.8, 1e-12);
}

TEST(Vec2, NormalizedZeroVectorIsZero) {
  EXPECT_EQ(Vec2(0.0, 0.0).Normalized(), Vec2(0.0, 0.0));
}

TEST(Vec2, PerpIsCcwRotation) {
  const Vec2 v{1.0, 0.0};
  EXPECT_EQ(v.Perp(), Vec2(0.0, 1.0));
  EXPECT_DOUBLE_EQ(Dot(v, v.Perp()), 0.0);
}

TEST(Vec2, RotatedQuarterTurn) {
  const Vec2 v{1.0, 0.0};
  const Vec2 r = v.Rotated(std::numbers::pi / 2.0);
  EXPECT_NEAR(r.x, 0.0, 1e-12);
  EXPECT_NEAR(r.y, 1.0, 1e-12);
}

TEST(Vec2, RotationPreservesNorm) {
  const Vec2 v{2.0, -3.0};
  for (double ang : {0.1, 1.0, 2.5, -0.7}) {
    EXPECT_NEAR(v.Rotated(ang).Norm(), v.Norm(), 1e-12);
  }
}

TEST(Vec2, DotAndCross) {
  EXPECT_DOUBLE_EQ(Dot({1.0, 2.0}, {3.0, 4.0}), 11.0);
  EXPECT_DOUBLE_EQ(Cross({1.0, 0.0}, {0.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(Cross({0.0, 1.0}, {1.0, 0.0}), -1.0);
  EXPECT_DOUBLE_EQ(Cross({2.0, 2.0}, {4.0, 4.0}), 0.0);
}

TEST(Vec2, DistanceFunctions) {
  EXPECT_DOUBLE_EQ(Distance({0.0, 0.0}, {3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(DistanceSq({0.0, 0.0}, {3.0, 4.0}), 25.0);
}

TEST(Vec2, Lerp) {
  const Vec2 a{0.0, 0.0}, b{10.0, 20.0};
  EXPECT_EQ(Lerp(a, b, 0.0), a);
  EXPECT_EQ(Lerp(a, b, 1.0), b);
  EXPECT_EQ(Lerp(a, b, 0.5), Vec2(5.0, 10.0));
}

TEST(Vec2, AlmostEqual) {
  EXPECT_TRUE(AlmostEqual({1.0, 1.0}, {1.0 + 1e-12, 1.0}));
  EXPECT_FALSE(AlmostEqual({1.0, 1.0}, {1.1, 1.0}));
  EXPECT_TRUE(AlmostEqual({1.0, 1.0}, {1.05, 1.0}, 0.1));
}

TEST(Vec2, StreamOutput) {
  std::ostringstream os;
  os << Vec2{1.5, -2.0};
  EXPECT_EQ(os.str(), "(1.5, -2)");
}

TEST(Aabb, ContainsAndDims) {
  const Aabb box{{0.0, 0.0}, {2.0, 3.0}};
  EXPECT_TRUE(box.Contains({1.0, 1.0}));
  EXPECT_TRUE(box.Contains({0.0, 0.0}));
  EXPECT_TRUE(box.Contains({2.0, 3.0}));
  EXPECT_FALSE(box.Contains({2.1, 1.0}));
  EXPECT_FALSE(box.Contains({1.0, -0.1}));
  EXPECT_DOUBLE_EQ(box.Width(), 2.0);
  EXPECT_DOUBLE_EQ(box.Height(), 3.0);
  EXPECT_EQ(box.Center(), Vec2(1.0, 1.5));
}

TEST(Aabb, ExpandGrowsBox) {
  Aabb box{{0.0, 0.0}, {1.0, 1.0}};
  box.Expand({-1.0, 2.0});
  EXPECT_EQ(box.lo, Vec2(-1.0, 0.0));
  EXPECT_EQ(box.hi, Vec2(1.0, 2.0));
  box.Expand({0.5, 0.5});  // Interior point: no change.
  EXPECT_EQ(box.lo, Vec2(-1.0, 0.0));
  EXPECT_EQ(box.hi, Vec2(1.0, 2.0));
}

}  // namespace
}  // namespace nomloc::geometry
