#include "channel/propagation.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "geometry/polygon.h"

namespace nomloc::channel {
namespace {

using geometry::Polygon;
using geometry::Vec2;

IndoorEnvironment EmptyRoom() {
  auto env = IndoorEnvironment::Create(Polygon::Rectangle(0, 0, 10, 8));
  return std::move(env).value();
}

TEST(FreeSpacePathLoss, GrowsWithDistanceAt20dBPerDecade) {
  const double f = common::kDefaultCarrierHz;
  const double l1 = FreeSpacePathLossDb(1.0, f);
  const double l10 = FreeSpacePathLossDb(10.0, f);
  EXPECT_NEAR(l10 - l1, 20.0, 1e-9);
}

TEST(FreeSpacePathLoss, KnownValueAt2_4GHz) {
  // FSPL at 1 m, 2.437 GHz ~ 40.2 dB.
  EXPECT_NEAR(FreeSpacePathLossDb(1.0, 2.437e9), 40.2, 0.3);
}

TEST(FreeSpacePathLoss, ClampsNearField) {
  const double f = common::kDefaultCarrierHz;
  EXPECT_DOUBLE_EQ(FreeSpacePathLossDb(0.0, f, 0.1),
                   FreeSpacePathLossDb(0.1, f, 0.1));
  EXPECT_DOUBLE_EQ(FreeSpacePathLossDb(0.05, f, 0.1),
                   FreeSpacePathLossDb(0.1, f, 0.1));
}

TEST(TracePaths, AlwaysIncludesDirectPathFirst) {
  const IndoorEnvironment env = EmptyRoom();
  PropagationConfig cfg;
  const auto paths = TracePaths(env, {2, 2}, {8, 6}, cfg);
  ASSERT_FALSE(paths.empty());
  EXPECT_TRUE(paths.front().is_direct);
  EXPECT_EQ(paths.front().bounces, 0);
  EXPECT_NEAR(paths.front().length_m, std::hypot(6.0, 4.0), 1e-9);
}

TEST(TracePaths, SortedByIncreasingDelay) {
  const IndoorEnvironment env = EmptyRoom();
  PropagationConfig cfg;
  const auto paths = TracePaths(env, {2, 2}, {8, 6}, cfg);
  for (std::size_t i = 1; i < paths.size(); ++i)
    EXPECT_GE(paths[i].length_m, paths[i - 1].length_m);
}

TEST(TracePaths, DirectOnlyWhenOrderZeroNoScatterers) {
  const IndoorEnvironment env = EmptyRoom();
  PropagationConfig cfg;
  cfg.max_reflection_order = 0;
  cfg.include_scatterers = false;
  const auto paths = TracePaths(env, {2, 2}, {8, 6}, cfg);
  EXPECT_EQ(paths.size(), 1u);
}

TEST(TracePaths, FourWallsGiveFourFirstOrderReflections) {
  const IndoorEnvironment env = EmptyRoom();
  PropagationConfig cfg;
  cfg.max_reflection_order = 1;
  cfg.include_scatterers = false;
  cfg.relative_cutoff_db = 200.0;  // Keep everything.
  const auto paths = TracePaths(env, {3, 3}, {7, 5}, cfg);
  std::size_t single_bounce = 0;
  for (const auto& p : paths)
    if (p.bounces == 1) ++single_bounce;
  EXPECT_EQ(single_bounce, 4u);
}

TEST(TracePaths, ReflectionGeometryMatchesImageMethod) {
  // TX and RX on a horizontal line; floor reflection (y = 0 wall) length
  // equals the image-method distance |tx_mirrored - rx|.
  const IndoorEnvironment env = EmptyRoom();
  PropagationConfig cfg;
  cfg.max_reflection_order = 1;
  cfg.include_scatterers = false;
  cfg.relative_cutoff_db = 200.0;
  const Vec2 tx{2.0, 2.0}, rx{8.0, 2.0};
  const auto paths = TracePaths(env, tx, rx, cfg);
  const double expected = Distance(Vec2{2.0, -2.0}, rx);  // Mirror across y=0.
  bool found = false;
  for (const auto& p : paths)
    if (p.bounces == 1 && std::abs(p.length_m - expected) < 1e-9) found = true;
  EXPECT_TRUE(found);
}

TEST(TracePaths, SecondOrderAddsPaths) {
  const IndoorEnvironment env = EmptyRoom();
  PropagationConfig cfg;
  cfg.include_scatterers = false;
  cfg.relative_cutoff_db = 200.0;
  cfg.max_reflection_order = 1;
  const auto order1 = TracePaths(env, {3, 3}, {7, 5}, cfg);
  cfg.max_reflection_order = 2;
  const auto order2 = TracePaths(env, {3, 3}, {7, 5}, cfg);
  EXPECT_GT(order2.size(), order1.size());
  int double_bounce = 0;
  for (const auto& p : order2)
    if (p.bounces == 2) ++double_bounce;
  EXPECT_GT(double_bounce, 0);
}

TEST(TracePaths, ReflectedPathsAreLongerAndWeakerThanDirect) {
  const IndoorEnvironment env = EmptyRoom();
  PropagationConfig cfg;
  cfg.include_scatterers = false;
  cfg.relative_cutoff_db = 200.0;
  const auto paths = TracePaths(env, {3, 3}, {7, 5}, cfg);
  const auto& direct = paths.front();
  for (const auto& p : paths) {
    if (p.is_direct) continue;
    EXPECT_GT(p.length_m, direct.length_m);
    EXPECT_GT(p.loss_db, direct.loss_db);
  }
}

TEST(TracePaths, BlockedDirectPathPaysPenetrationLoss) {
  std::vector<Obstacle> obstacles;
  obstacles.push_back(
      {Polygon::Rectangle(4.0, 3.0, 6.0, 5.0), materials::Metal()});
  auto env = IndoorEnvironment::Create(Polygon::Rectangle(0, 0, 10, 8), {},
                                       std::move(obstacles));
  ASSERT_TRUE(env.ok());
  PropagationConfig cfg;
  cfg.include_scatterers = false;
  cfg.max_reflection_order = 0;
  cfg.relative_cutoff_db = 500.0;
  const auto blocked = TracePaths(*env, {1, 4}, {9, 4}, cfg);
  const auto clear = TracePaths(*env, {1, 1}, {9, 1}, cfg);
  const double extra = blocked.front().loss_db - clear.front().loss_db;
  // Two metal edges crossed minus small FSPL difference.
  EXPECT_NEAR(extra,
              2.0 * materials::Metal().transmission_loss_db, 1.0);
}

TEST(TracePaths, NlosStrongestPathCanBeAReflection) {
  // With the direct path through metal, some reflected path around the
  // cabinet should be stronger.
  std::vector<Obstacle> obstacles;
  obstacles.push_back(
      {Polygon::Rectangle(4.0, 3.0, 6.0, 5.0), materials::Metal()});
  auto env = IndoorEnvironment::Create(Polygon::Rectangle(0, 0, 10, 8), {},
                                       std::move(obstacles));
  ASSERT_TRUE(env.ok());
  PropagationConfig cfg;
  cfg.include_scatterers = false;
  cfg.max_reflection_order = 1;
  cfg.relative_cutoff_db = 200.0;
  const auto paths = TracePaths(*env, {1, 4}, {9, 4}, cfg);
  const auto strongest = std::min_element(
      paths.begin(), paths.end(),
      [](const auto& a, const auto& b) { return a.loss_db < b.loss_db; });
  EXPECT_FALSE(strongest->is_direct);
}

TEST(TracePaths, ScattererPathsIncluded) {
  IndoorEnvironment env = EmptyRoom();
  common::Rng rng(3);
  env.PlaceScatterers(5, rng);
  PropagationConfig cfg;
  cfg.max_reflection_order = 0;
  cfg.relative_cutoff_db = 500.0;
  const auto paths = TracePaths(env, {2, 2}, {8, 6}, cfg);
  std::size_t scatter = 0;
  for (const auto& p : paths)
    if (p.is_scatter) ++scatter;
  EXPECT_EQ(scatter, 5u);
}

TEST(TracePaths, CutoffDropsWeakPaths) {
  IndoorEnvironment env = EmptyRoom();
  common::Rng rng(3);
  env.PlaceScatterers(10, rng);
  PropagationConfig tight;
  tight.relative_cutoff_db = 10.0;  // Scatter paths (18 dB extra) dropped.
  const auto few = TracePaths(env, {2, 2}, {8, 6}, tight);
  PropagationConfig loose;
  loose.relative_cutoff_db = 200.0;
  const auto many = TracePaths(env, {2, 2}, {8, 6}, loose);
  EXPECT_LT(few.size(), many.size());
}

TEST(TracePaths, DelayConsistentWithLength) {
  const IndoorEnvironment env = EmptyRoom();
  const auto paths = TracePaths(env, {1, 1}, {9, 7}, {});
  for (const auto& p : paths)
    EXPECT_NEAR(p.DelayS() * common::kSpeedOfLight, p.length_m, 1e-9);
}

TEST(TracePaths, NegativeOrderThrows) {
  const IndoorEnvironment env = EmptyRoom();
  PropagationConfig cfg;
  cfg.max_reflection_order = -1;
  EXPECT_THROW(TracePaths(env, {1, 1}, {2, 2}, cfg), std::logic_error);
}

// Property: the direct path loss is monotone in distance in an empty room.
TEST(TracePathsProperty, DirectLossMonotoneInDistance) {
  const IndoorEnvironment env = EmptyRoom();
  PropagationConfig cfg;
  cfg.include_scatterers = false;
  cfg.max_reflection_order = 0;
  double prev_loss = -1.0;
  for (double d = 1.0; d <= 8.0; d += 0.5) {
    const auto paths = TracePaths(env, {1.0, 4.0}, {1.0 + d, 4.0}, cfg);
    EXPECT_GT(paths.front().loss_db, prev_loss);
    prev_loss = paths.front().loss_db;
  }
}

}  // namespace
}  // namespace nomloc::channel
