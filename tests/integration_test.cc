// End-to-end integration tests: the paper's headline claims, in miniature.
// These use reduced trial counts to stay fast; the bench binaries run the
// full-size versions.
#include <gtest/gtest.h>

#include "common/stats.h"
#include "eval/runner.h"
#include "eval/scenario.h"

namespace nomloc::eval {
namespace {

RunConfig BaseConfig(std::uint64_t seed) {
  RunConfig cfg;
  cfg.packets_per_batch = 15;
  cfg.trials = 4;
  cfg.dwell_count = 8;
  cfg.seed = seed;
  return cfg;
}

// Fig. 8 claim: nomadic deployment reduces SLV versus static, in both
// scenarios.
TEST(PaperClaims, NomadicReducesSlvInLab) {
  const Scenario lab = LabScenario();
  RunConfig nomadic = BaseConfig(101);
  RunConfig fixed = BaseConfig(101);
  fixed.deployment = Deployment::kStatic;
  auto rn = RunLocalization(lab, nomadic);
  auto rs = RunLocalization(lab, fixed);
  ASSERT_TRUE(rn.ok());
  ASSERT_TRUE(rs.ok());
  EXPECT_LT(rn->slv, rs->slv);
}

TEST(PaperClaims, NomadicReducesSlvInLobby) {
  const Scenario lobby = LobbyScenario();
  RunConfig nomadic = BaseConfig(102);
  RunConfig fixed = BaseConfig(102);
  fixed.deployment = Deployment::kStatic;
  auto rn = RunLocalization(lobby, nomadic);
  auto rs = RunLocalization(lobby, fixed);
  ASSERT_TRUE(rn.ok());
  ASSERT_TRUE(rs.ok());
  EXPECT_LT(rn->slv, rs->slv);
}

// Robustness of the headline claim across seeds: the SLV reduction is a
// property of the mechanism, not of one lucky random stream.
TEST(PaperClaims, SlvReductionHoldsAcrossSeeds) {
  const Scenario lobby = LobbyScenario();
  int wins = 0;
  const std::uint64_t seeds[] = {201, 202, 203};
  for (std::uint64_t seed : seeds) {
    RunConfig nomadic = BaseConfig(seed);
    // SLV is a variance estimate: it needs more trials than the quick
    // directional checks above to stabilise per seed.
    nomadic.trials = 10;
    nomadic.packets_per_batch = 30;
    RunConfig fixed = nomadic;
    fixed.deployment = Deployment::kStatic;
    auto rn = RunLocalization(lobby, nomadic);
    auto rs = RunLocalization(lobby, fixed);
    ASSERT_TRUE(rn.ok());
    ASSERT_TRUE(rs.ok());
    if (rn->slv < rs->slv) ++wins;
  }
  EXPECT_EQ(wins, 3);
}

// Fig. 9 claim: nomadic deployment improves mean accuracy.
TEST(PaperClaims, NomadicImprovesMeanErrorInLab) {
  const Scenario lab = LabScenario();
  RunConfig nomadic = BaseConfig(103);
  RunConfig fixed = BaseConfig(103);
  fixed.deployment = Deployment::kStatic;
  auto rn = RunLocalization(lab, nomadic);
  auto rs = RunLocalization(lab, fixed);
  ASSERT_TRUE(rn.ok());
  ASSERT_TRUE(rs.ok());
  EXPECT_LT(rn->MeanError(), rs->MeanError());
}

TEST(PaperClaims, NomadicImprovesMeanErrorInLobby) {
  const Scenario lobby = LobbyScenario();
  RunConfig nomadic = BaseConfig(104);
  RunConfig fixed = BaseConfig(104);
  fixed.deployment = Deployment::kStatic;
  auto rn = RunLocalization(lobby, nomadic);
  auto rs = RunLocalization(lobby, fixed);
  ASSERT_TRUE(rn.ok());
  ASSERT_TRUE(rs.ok());
  EXPECT_LT(rn->MeanError(), rs->MeanError());
}

// Fig. 9 absolute scale: meter-level accuracy (paper: < 2 m mean in Lab).
TEST(PaperClaims, LabMeanErrorIsMeterScale) {
  auto result = RunLocalization(LabScenario(), BaseConfig(105));
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->MeanError(), 3.0);
}

// Fig. 10 claim: small nomadic position error is ignorable; large error
// degrades gracefully (never catastrophically).
TEST(PaperClaims, SmallPositionErrorIsIgnorable) {
  const Scenario lab = LabScenario();
  RunConfig er0 = BaseConfig(106);
  RunConfig er1 = BaseConfig(106);
  er1.position_error_m = 1.0;
  auto r0 = RunLocalization(lab, er0);
  auto r1 = RunLocalization(lab, er1);
  ASSERT_TRUE(r0.ok());
  ASSERT_TRUE(r1.ok());
  EXPECT_LT(r1->MeanError(), r0->MeanError() + 1.0);
}

TEST(PaperClaims, LargePositionErrorDegradesGracefully) {
  const Scenario lab = LabScenario();
  RunConfig er0 = BaseConfig(107);
  RunConfig er3 = BaseConfig(107);
  er3.position_error_m = 3.0;
  auto r0 = RunLocalization(lab, er0);
  auto r3 = RunLocalization(lab, er3);
  ASSERT_TRUE(r0.ok());
  ASSERT_TRUE(r3.ok());
  // Degradation exists but the system still beats random guessing
  // (random point in a 12 x 8 m room averages > 4 m error).
  EXPECT_LT(r3->MeanError(), 4.0);
}

// §V-C claim: Lobby proximity accuracy >= Lab (sparser AP deployment).
TEST(PaperClaims, ProximityAccuracyLobbyVsLab) {
  RunConfig cfg = BaseConfig(108);
  cfg.trials = 6;
  auto lab = RunProximityAccuracy(LabScenario(), cfg);
  auto lobby = RunProximityAccuracy(LobbyScenario(), cfg);
  ASSERT_TRUE(lab.ok());
  ASSERT_TRUE(lobby.ok());
  const double lab_mean = common::Mean(lab->per_site_accuracy);
  const double lobby_mean = common::Mean(lobby->per_site_accuracy);
  // Allow slack — the claim is directional, the margin small.
  EXPECT_GT(lobby_mean, lab_mean - 0.1);
  EXPECT_GT(lab_mean, 0.6);
}

// Estimates always stay inside the floor area (boundary constraints).
TEST(Invariants, EstimatesRespectAreaBoundary) {
  for (const Scenario& s : {LabScenario(), LobbyScenario()}) {
    RunConfig cfg = BaseConfig(109);
    cfg.trials = 1;
    core::NomLocConfig engine_cfg = cfg.engine;
    engine_cfg.bandwidth_hz = cfg.channel.bandwidth_hz;
    auto engine = core::NomLocEngine::Create(s.env.Boundary(), engine_cfg);
    ASSERT_TRUE(engine.ok());
    common::Rng rng(cfg.seed);
    for (const geometry::Vec2 site : s.test_sites) {
      auto est = LocalizeEpoch(s, cfg, *engine, site, rng);
      ASSERT_TRUE(est.ok()) << est.status().ToString();
      EXPECT_TRUE(s.env.Boundary().Contains(est->position, 1e-4))
          << s.name << " site (" << site.x << "," << site.y << ") est ("
          << est->position.x << "," << est->position.y << ")";
    }
  }
}

// Mobility-pattern ablation smoke check (future work §VI): all patterns
// produce valid runs.
class PatternRunTest
    : public ::testing::TestWithParam<mobility::MobilityPattern> {};

TEST_P(PatternRunTest, RunsAndStaysBounded) {
  RunConfig cfg = BaseConfig(110);
  cfg.trials = 1;
  cfg.pattern = GetParam();
  auto result = RunLocalization(LabScenario(), cfg);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->MeanError(), 6.0);
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, PatternRunTest,
    ::testing::Values(mobility::MobilityPattern::kMarkovWalk,
                      mobility::MobilityPattern::kStayBiased,
                      mobility::MobilityPattern::kPatrol,
                      mobility::MobilityPattern::kStationary));

// Multiple nomadic APs (future work §VI): two roaming APs do at least as
// well as one on average.
TEST(Extensions, TwoNomadicApsRun) {
  RunConfig cfg = BaseConfig(111);
  cfg.trials = 2;
  cfg.nomadic_ap_count = 2;
  auto result = RunLocalization(LobbyScenario(), cfg);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->MeanError(), 5.0);
}

}  // namespace
}  // namespace nomloc::eval
