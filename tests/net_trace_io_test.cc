#include "net/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "channel/csi_model.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "eval/scenario.h"

namespace nomloc::net {
namespace {

using geometry::Polygon;
using geometry::Vec2;

MeasurementTrace SmallTrace() {
  MeasurementTrace trace;
  trace.description = "unit-test trace";
  EpochRecord epoch;
  epoch.ground_truth = {3.0, 2.0};
  epoch.anchors = {{{1.0, 1.0}, 4.0e-6, false},
                   {{9.0, 1.0}, 1.0e-6, false},
                   {{5.0, 7.0}, 2.0e-6, true}};
  trace.epochs.push_back(epoch);
  EpochRecord epoch2 = epoch;
  epoch2.ground_truth = {7.0, 5.0};
  epoch2.anchors[0].pdp = 0.5e-6;
  epoch2.anchors[1].pdp = 3.0e-6;
  trace.epochs.push_back(epoch2);
  return trace;
}

TEST(TraceIo, RoundTripsThroughJsonText) {
  const MeasurementTrace original = SmallTrace();
  const common::Json json = TraceToJson(original);
  auto parsed_json = common::Json::Parse(json.Dump());
  ASSERT_TRUE(parsed_json.ok());
  auto restored = TraceFromJson(*parsed_json);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  EXPECT_EQ(restored->description, original.description);
  ASSERT_EQ(restored->epochs.size(), original.epochs.size());
  for (std::size_t e = 0; e < original.epochs.size(); ++e) {
    EXPECT_EQ(restored->epochs[e].ground_truth,
              original.epochs[e].ground_truth);
    ASSERT_EQ(restored->epochs[e].anchors.size(),
              original.epochs[e].anchors.size());
    for (std::size_t a = 0; a < original.epochs[e].anchors.size(); ++a) {
      EXPECT_EQ(restored->epochs[e].anchors[a].position,
                original.epochs[e].anchors[a].position);
      EXPECT_DOUBLE_EQ(restored->epochs[e].anchors[a].pdp,
                       original.epochs[e].anchors[a].pdp);
      EXPECT_EQ(restored->epochs[e].anchors[a].is_nomadic_site,
                original.epochs[e].anchors[a].is_nomadic_site);
    }
  }
}

TEST(TraceIo, RejectsSchemaViolations) {
  EXPECT_FALSE(TraceFromJson(common::Json(1.0)).ok());
  auto wrong_version = common::Json::Parse(
      R"({"schema_version": 99, "description": "", "epochs": []})");
  ASSERT_TRUE(wrong_version.ok());
  EXPECT_FALSE(TraceFromJson(*wrong_version).ok());
  auto bad_anchor = common::Json::Parse(
      R"({"schema_version": 1, "description": "", "epochs":
          [{"truth_x": 0, "truth_y": 0,
            "anchors": [{"x": 1, "y": 1, "pdp": -1, "nomadic": false}]}]})");
  ASSERT_TRUE(bad_anchor.ok());
  EXPECT_FALSE(TraceFromJson(*bad_anchor).ok());
}

TEST(TraceIo, ReplayScoresAgainstGroundTruth) {
  auto engine = core::NomLocEngine::Create(Polygon::Rectangle(0, 0, 10, 8));
  ASSERT_TRUE(engine.ok());
  auto result = ReplayTrace(SmallTrace(), *engine);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->errors_m.size(), 2u);
  for (double e : result->errors_m) {
    EXPECT_GE(e, 0.0);
    EXPECT_LT(e, 13.0);  // Bounded by the room diagonal.
  }
  EXPECT_NEAR(result->mean_error_m,
              (result->errors_m[0] + result->errors_m[1]) / 2.0, 1e-12);
}

TEST(TraceIo, EmptyTraceRejected) {
  auto engine = core::NomLocEngine::Create(Polygon::Rectangle(0, 0, 4, 4));
  ASSERT_TRUE(engine.ok());
  EXPECT_FALSE(ReplayTrace({}, *engine).ok());
}

// The record/replay workflow end-to-end: record simulated epochs, encode,
// decode, replay through two engine configurations, compare.
TEST(TraceIo, RecordReplayWorkflow) {
  const eval::Scenario lab = eval::LabScenario();
  const channel::CsiSimulator sim(lab.env, {});
  common::Rng rng(5);

  MeasurementTrace trace;
  trace.description = "lab campaign";
  for (const Vec2 site : lab.test_sites) {
    EpochRecord epoch;
    epoch.ground_truth = site;
    for (const Vec2 ap : lab.static_aps) {
      const auto frames = sim.MakeLink(site, ap).SampleBatch(20, rng);
      epoch.anchors.push_back(localization::MakeAnchor(
          ap, frames, common::kBandwidth20MHz));
    }
    trace.epochs.push_back(std::move(epoch));
  }

  auto decoded = TraceFromJson(*common::Json::Parse(
      TraceToJson(trace).Dump()));
  ASSERT_TRUE(decoded.ok());

  core::NomLocConfig centroid_cfg;
  core::NomLocConfig chebyshev_cfg;
  chebyshev_cfg.solver.center = localization::CenterMethod::kChebyshev;
  auto engine_a =
      core::NomLocEngine::Create(lab.env.Boundary(), centroid_cfg);
  auto engine_b =
      core::NomLocEngine::Create(lab.env.Boundary(), chebyshev_cfg);
  ASSERT_TRUE(engine_a.ok());
  ASSERT_TRUE(engine_b.ok());

  auto replay_a = ReplayTrace(*decoded, *engine_a);
  auto replay_b = ReplayTrace(*decoded, *engine_b);
  ASSERT_TRUE(replay_a.ok());
  ASSERT_TRUE(replay_b.ok());
  // Same recorded data, two algorithm variants, both meter-scale.
  EXPECT_LT(replay_a->mean_error_m, 4.0);
  EXPECT_LT(replay_b->mean_error_m, 4.0);
  // Replay of the same trace with the same engine is deterministic.
  auto replay_a2 = ReplayTrace(*decoded, *engine_a);
  ASSERT_TRUE(replay_a2.ok());
  EXPECT_EQ(replay_a->errors_m, replay_a2->errors_m);
}

TEST(TraceIo, ParseTraceReportsByteOffsetOnGarbage) {
  auto broken = ParseTrace(R"({"schema_version": 1, "epochs": [)");
  ASSERT_FALSE(broken.ok());
  EXPECT_EQ(broken.status().code(), common::StatusCode::kDataCorruption);
  EXPECT_NE(broken.status().message().find("offset"), std::string::npos)
      << broken.status().ToString();
}

// Fuzz-style: every strict prefix of a golden trace must come back as a
// typed parse error (never a crash, never a silently truncated trace).
TEST(TraceIo, EveryTruncationOfGoldenTraceIsTypedError) {
  const std::string golden = TraceToJson(SmallTrace()).Dump();
  ASSERT_GT(golden.size(), 100u);
  for (std::size_t len = 0; len < golden.size(); ++len) {
    auto parsed = ParseTrace(golden.substr(0, len));
    ASSERT_FALSE(parsed.ok()) << "prefix of " << len << " bytes parsed";
    EXPECT_EQ(parsed.status().code(), common::StatusCode::kDataCorruption)
        << "prefix of " << len << " bytes: " << parsed.status().ToString();
  }
  // The full text still parses — the sweep proves truncation detection,
  // not a broken golden.
  EXPECT_TRUE(ParseTrace(golden).ok());
}

// Random single-byte corruptions: the parser may reject or (for benign
// flips, e.g. inside the description string) still accept, but it must
// yield a typed Result either way.  A flip can leave the JSON well formed
// but mangle a key name (kNotFound) or a field value (kInvalidArgument);
// anything syntactically broken must come back as kDataCorruption.
TEST(TraceIo, RandomByteCorruptionNeverCrashes) {
  const std::string golden = TraceToJson(SmallTrace()).Dump();
  common::Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = golden;
    const std::size_t pos = rng.UniformInt(mutated.size());
    mutated[pos] = char(rng.UniformInt(256));
    auto parsed = ParseTrace(mutated);
    if (!parsed.ok()) {
      const auto code = parsed.status().code();
      EXPECT_TRUE(code == common::StatusCode::kDataCorruption ||
                  code == common::StatusCode::kInvalidArgument ||
                  code == common::StatusCode::kNotFound)
          << parsed.status().ToString();
    }
  }
}

TEST(TraceIo, ParseFailuresCounterTracksQuarantine) {
  auto& counter =
      common::MetricRegistry::Global().Counter("trace.parse_failures");
  const std::uint64_t before = counter.Value();
  EXPECT_FALSE(ParseTrace("{nope").ok());
  EXPECT_FALSE(ParseTrace(R"({"schema_version": 99, "epochs": []})").ok());
  EXPECT_EQ(counter.Value(), before + 2);
}

TEST(TraceIo, SaveLoadRoundTripAndTypedFileErrors) {
  auto missing = LoadTraceFile("/nonexistent/nomloc-trace.json");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), common::StatusCode::kNotFound);

  const std::string path =
      testing::TempDir() + "/trace_io_roundtrip.json";
  const MeasurementTrace original = SmallTrace();
  ASSERT_TRUE(SaveTraceFile(original, path).ok());
  auto restored = LoadTraceFile(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->epochs.size(), original.epochs.size());
  EXPECT_EQ(restored->description, original.description);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nomloc::net
