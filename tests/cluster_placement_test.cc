// Rendezvous placement contract: deterministic, reasonably balanced,
// preference-ordered, and minimally disruptive on resize.
#include "cluster/placement.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace nomloc::cluster {
namespace {

TEST(Placement, RejectsZeroShards) {
  EXPECT_FALSE(PlacementTable::Create(0).ok());
}

TEST(Placement, DeterministicAcrossInstances) {
  auto a = PlacementTable::Create(8);
  auto b = PlacementTable::Create(8);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (std::uint64_t id = 0; id < 5000; ++id)
    EXPECT_EQ(a->ShardOf(id), b->ShardOf(id)) << "object " << id;
}

TEST(Placement, SeedChangesTheTable) {
  auto a = PlacementTable::Create(8, 1);
  auto b = PlacementTable::Create(8, 2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  std::size_t moved = 0;
  for (std::uint64_t id = 0; id < 5000; ++id)
    if (a->ShardOf(id) != b->ShardOf(id)) ++moved;
  EXPECT_GT(moved, 2500u);  // Independent tables agree ~1/8 of the time.
}

TEST(Placement, ReasonablyBalanced) {
  auto table = PlacementTable::Create(4);
  ASSERT_TRUE(table.ok());
  constexpr std::size_t kIds = 40000;
  std::vector<std::size_t> counts(4, 0);
  for (std::uint64_t id = 0; id < kIds; ++id) ++counts[table->ShardOf(id)];
  for (std::size_t shard = 0; shard < 4; ++shard) {
    // Expected 10000 per shard; a keyed hash stays within a few percent.
    EXPECT_GT(counts[shard], kIds / 4 - kIds / 40) << "shard " << shard;
    EXPECT_LT(counts[shard], kIds / 4 + kIds / 40) << "shard " << shard;
  }
}

TEST(Placement, PreferenceOrderRanksAllShardsByWeight) {
  auto table = PlacementTable::Create(6);
  ASSERT_TRUE(table.ok());
  std::vector<std::size_t> order;
  for (std::uint64_t id = 0; id < 500; ++id) {
    table->PreferenceOrder(id, order);
    ASSERT_EQ(order.size(), 6u);
    EXPECT_EQ(order[0], table->ShardOf(id));
    EXPECT_EQ(std::set<std::size_t>(order.begin(), order.end()).size(), 6u);
    for (std::size_t i = 1; i < order.size(); ++i)
      EXPECT_GE(table->Weight(order[i - 1], id), table->Weight(order[i], id));
  }
}

TEST(Placement, ResizeMovesOnlyTheNewShardsIds) {
  // Growing N -> N+1 must move exactly the ids the new slot wins: every
  // other id keeps its owner (the minimal-remap property that makes the
  // table safe to recompute with no directory service).
  auto small = PlacementTable::Create(4);
  auto big = PlacementTable::Create(5);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(big.ok());
  constexpr std::uint64_t kIds = 20000;
  std::size_t moved = 0;
  for (std::uint64_t id = 0; id < kIds; ++id) {
    const std::size_t before = small->ShardOf(id);
    const std::size_t after = big->ShardOf(id);
    if (before != after) {
      EXPECT_EQ(after, 4u) << "object " << id << " moved to an old shard";
      ++moved;
    }
  }
  // ~1/5 of ids move to the new slot.
  EXPECT_GT(moved, kIds / 5 - kIds / 25);
  EXPECT_LT(moved, kIds / 5 + kIds / 25);
}

TEST(Placement, EpochStartsAtZeroAndBumpsMonotonically) {
  auto table = PlacementTable::Create(4);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->Epoch(), 0u);
  EXPECT_EQ(table->BumpEpoch(), 1u);
  EXPECT_EQ(table->BumpEpoch(), 2u);
  EXPECT_EQ(table->Epoch(), 2u);
  table->SetEpoch(17);
  EXPECT_EQ(table->Epoch(), 17u);
}

TEST(Placement, GrownKeepsOldOwnersAndBumpsEpoch) {
  // The online-resharding table: N -> N+1 under the same seed.  Old slots
  // keep their salts, so the only ids that move are the new slot's
  // rendezvous winners, and the epoch bump makes frames stamped with the
  // old table typed stale rejections instead of a split brain.
  auto table = PlacementTable::Create(4);
  ASSERT_TRUE(table.ok());
  table->SetEpoch(5);
  auto grown = table->Grown();
  ASSERT_TRUE(grown.ok());
  EXPECT_EQ(grown->ShardCount(), 5u);
  EXPECT_EQ(grown->Epoch(), 6u);
  constexpr std::uint64_t kIds = 20000;
  std::size_t moved = 0;
  for (std::uint64_t id = 0; id < kIds; ++id) {
    const std::size_t before = table->ShardOf(id);
    const std::size_t after = grown->ShardOf(id);
    // Old slots share salts with the source table, weight for weight.
    for (std::size_t slot = 0; slot < 4; ++slot)
      ASSERT_EQ(table->Weight(slot, id), grown->Weight(slot, id))
          << "object " << id << " slot " << slot;
    if (before != after) {
      EXPECT_EQ(after, 4u) << "object " << id << " moved to an old shard";
      ++moved;
    }
  }
  EXPECT_GT(moved, kIds / 5 - kIds / 25);
  EXPECT_LT(moved, kIds / 5 + kIds / 25);
}

}  // namespace
}  // namespace nomloc::cluster
