#include "net/sim.h"

#include <gtest/gtest.h>

namespace nomloc::net {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.Now(), 0.0);
  EXPECT_EQ(sim.PendingEvents(), 0u);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(3.0, [&] { order.push_back(3); });
  sim.ScheduleAt(1.0, [&] { order.push_back(1); });
  sim.ScheduleAt(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(sim.Run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.Now(), 3.0);
}

TEST(Simulator, SameTimeEventsRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    sim.ScheduleAt(1.0, [&order, i] { order.push_back(i); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  double fired_at = -1.0;
  sim.ScheduleAt(2.0, [&] {
    sim.ScheduleAfter(1.5, [&] { fired_at = sim.Now(); });
  });
  sim.Run();
  EXPECT_DOUBLE_EQ(fired_at, 3.5);
}

TEST(Simulator, RunUntilStopsBeforeLaterEvents) {
  Simulator sim;
  int ran = 0;
  sim.ScheduleAt(1.0, [&] { ++ran; });
  sim.ScheduleAt(5.0, [&] { ++ran; });
  EXPECT_EQ(sim.Run(2.0), 1u);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.PendingEvents(), 1u);
  // Time advances to the horizon even when no event fires there.
  EXPECT_DOUBLE_EQ(sim.Now(), 2.0);
}

TEST(Simulator, EventExactlyAtHorizonRuns) {
  Simulator sim;
  int ran = 0;
  sim.ScheduleAt(2.0, [&] { ++ran; });
  sim.Run(2.0);
  EXPECT_EQ(ran, 1);
}

TEST(Simulator, StopHaltsProcessing) {
  Simulator sim;
  int ran = 0;
  sim.ScheduleAt(1.0, [&] {
    ++ran;
    sim.Stop();
  });
  sim.ScheduleAt(2.0, [&] { ++ran; });
  sim.Run();
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.PendingEvents(), 1u);
  // A later Run resumes.
  sim.Run();
  EXPECT_EQ(ran, 2);
}

TEST(Simulator, SelfReschedulingChain) {
  Simulator sim;
  int ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    if (ticks < 10) sim.ScheduleAfter(0.5, tick);
  };
  sim.ScheduleAt(0.0, tick);
  sim.Run();
  EXPECT_EQ(ticks, 10);
  EXPECT_DOUBLE_EQ(sim.Now(), 4.5);
}

TEST(Simulator, SchedulingInPastThrows) {
  Simulator sim;
  sim.ScheduleAt(5.0, [] {});
  sim.Run();
  EXPECT_THROW(sim.ScheduleAt(1.0, [] {}), std::logic_error);
  EXPECT_THROW(sim.ScheduleAfter(-1.0, [] {}), std::logic_error);
}

TEST(Simulator, NullCallbackThrows) {
  Simulator sim;
  EXPECT_THROW(sim.ScheduleAt(1.0, nullptr), std::logic_error);
}

TEST(Simulator, ManyEventsProcessQuickly) {
  Simulator sim;
  std::size_t ran = 0;
  for (int i = 0; i < 10000; ++i)
    sim.ScheduleAt(double(i % 100), [&] { ++ran; });
  EXPECT_EQ(sim.Run(), 10000u);
  EXPECT_EQ(ran, 10000u);
}

}  // namespace
}  // namespace nomloc::net
