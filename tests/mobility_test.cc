#include "mobility/markov.h"
#include "mobility/trace.h"

#include <gtest/gtest.h>

#include <cmath>

namespace nomloc::mobility {
namespace {

using geometry::Vec2;

TEST(MarkovChain, CreateValidatesMatrix) {
  EXPECT_FALSE(MarkovChain::Create({}).ok());
  EXPECT_FALSE(MarkovChain::Create({{0.5, 0.5}, {1.0}}).ok());
  EXPECT_FALSE(MarkovChain::Create({{0.7, 0.7}}).ok());     // Row sum != 1.
  EXPECT_FALSE(MarkovChain::Create({{1.5, -0.5}}).ok());    // Negative.
  EXPECT_TRUE(MarkovChain::Create({{0.3, 0.7}, {1.0, 0.0}}).ok());
}

TEST(MarkovChain, UniformTransitions) {
  const MarkovChain chain = MarkovChain::Uniform(4);
  EXPECT_EQ(chain.StateCount(), 4u);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      EXPECT_DOUBLE_EQ(chain.TransitionProb(i, j), 0.25);
}

TEST(MarkovChain, StayBiasedProbabilities) {
  const MarkovChain chain = MarkovChain::StayBiased(3, 0.7);
  EXPECT_DOUBLE_EQ(chain.TransitionProb(0, 0), 0.7);
  EXPECT_DOUBLE_EQ(chain.TransitionProb(0, 1), 0.15);
  EXPECT_DOUBLE_EQ(chain.TransitionProb(0, 2), 0.15);
}

TEST(MarkovChain, RingMovesForward) {
  const MarkovChain ring = MarkovChain::Ring(4, 1.0);
  common::Rng rng(1);
  EXPECT_EQ(ring.NextState(0, rng), 1u);
  EXPECT_EQ(ring.NextState(3, rng), 0u);
}

TEST(MarkovChain, RingBackwardProbability) {
  const MarkovChain ring = MarkovChain::Ring(5, 0.0);
  common::Rng rng(1);
  EXPECT_EQ(ring.NextState(0, rng), 4u);
  EXPECT_EQ(ring.NextState(2, rng), 1u);
}

TEST(MarkovChain, SingleStateChainStaysPut) {
  const MarkovChain chain = MarkovChain::Uniform(1);
  common::Rng rng(2);
  EXPECT_EQ(chain.NextState(0, rng), 0u);
  const auto walk = chain.Walk(0, 5, rng);
  for (std::size_t s : walk) EXPECT_EQ(s, 0u);
}

TEST(MarkovChain, WalkStartsAtStartAndHasRightLength) {
  const MarkovChain chain = MarkovChain::Uniform(3);
  common::Rng rng(5);
  const auto walk = chain.Walk(2, 10, rng);
  EXPECT_EQ(walk.size(), 11u);
  EXPECT_EQ(walk.front(), 2u);
  for (std::size_t s : walk) EXPECT_LT(s, 3u);
}

TEST(MarkovChain, WalkFollowsTransitionSupport) {
  // Deterministic cycle 0 -> 1 -> 2 -> 0.
  auto chain = MarkovChain::Create(
      {{0.0, 1.0, 0.0}, {0.0, 0.0, 1.0}, {1.0, 0.0, 0.0}});
  ASSERT_TRUE(chain.ok());
  common::Rng rng(5);
  const auto walk = chain->Walk(0, 6, rng);
  const std::vector<std::size_t> expected{0, 1, 2, 0, 1, 2, 0};
  EXPECT_EQ(walk, expected);
}

TEST(MarkovChain, InvalidStateThrows) {
  const MarkovChain chain = MarkovChain::Uniform(2);
  common::Rng rng(1);
  EXPECT_THROW(chain.NextState(2, rng), std::logic_error);
  EXPECT_THROW(chain.Walk(5, 3, rng), std::logic_error);
  EXPECT_THROW(chain.TransitionProb(0, 9), std::logic_error);
}

TEST(MarkovChain, StationaryDistributionUniformChain) {
  const MarkovChain chain = MarkovChain::Uniform(4);
  auto pi = chain.StationaryDistribution();
  ASSERT_TRUE(pi.ok());
  for (double p : *pi) EXPECT_NEAR(p, 0.25, 1e-9);
}

TEST(MarkovChain, StationaryDistributionBiasedChain) {
  // Two states: 0 -> 1 w.p. 0.5; 1 -> 0 w.p. 0.25.  pi = (1/3, 2/3).
  auto chain = MarkovChain::Create({{0.5, 0.5}, {0.25, 0.75}});
  ASSERT_TRUE(chain.ok());
  auto pi = chain->StationaryDistribution();
  ASSERT_TRUE(pi.ok());
  EXPECT_NEAR((*pi)[0], 1.0 / 3.0, 1e-9);
  EXPECT_NEAR((*pi)[1], 2.0 / 3.0, 1e-9);
}

TEST(MarkovChain, EmpiricalFrequenciesMatchStationary) {
  auto chain = MarkovChain::Create({{0.9, 0.1}, {0.3, 0.7}});
  ASSERT_TRUE(chain.ok());
  common::Rng rng(31);
  const auto walk = chain->Walk(0, 200000, rng);
  double ones = 0.0;
  for (std::size_t s : walk) ones += double(s);
  const double freq1 = ones / double(walk.size());
  auto pi = chain->StationaryDistribution();
  ASSERT_TRUE(pi.ok());
  EXPECT_NEAR(freq1, (*pi)[1], 0.01);
}

TEST(AddUniformDiscError, ZeroRadiusIsIdentity) {
  common::Rng rng(1);
  const Vec2 p{3.0, 4.0};
  EXPECT_EQ(AddUniformDiscError(p, 0.0, rng), p);
}

TEST(AddUniformDiscError, StaysWithinRadius) {
  common::Rng rng(2);
  const Vec2 p{3.0, 4.0};
  for (int i = 0; i < 1000; ++i) {
    const Vec2 q = AddUniformDiscError(p, 2.0, rng);
    EXPECT_LE(Distance(p, q), 2.0 + 1e-12);
  }
}

TEST(AddUniformDiscError, NegativeRadiusThrows) {
  common::Rng rng(2);
  EXPECT_THROW(AddUniformDiscError({0, 0}, -1.0, rng), std::logic_error);
}

std::vector<Vec2> FourSites() {
  return {{0.0, 0.0}, {4.0, 0.0}, {4.0, 4.0}, {0.0, 4.0}};
}

TEST(GenerateTrace, StartsAtHomeSite) {
  common::Rng rng(3);
  TraceConfig cfg;
  cfg.dwell_count = 6;
  auto trace = GenerateTrace(FourSites(), cfg, rng);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->size(), 6u);
  EXPECT_EQ(trace->front().site_index, 0u);
  EXPECT_EQ(trace->front().true_position, Vec2(0.0, 0.0));
}

TEST(GenerateTrace, ValidatesInput) {
  common::Rng rng(3);
  EXPECT_FALSE(GenerateTrace({}, {}, rng).ok());
  TraceConfig zero;
  zero.dwell_count = 0;
  EXPECT_FALSE(GenerateTrace(FourSites(), zero, rng).ok());
}

TEST(GenerateTrace, StationaryPatternNeverMoves) {
  common::Rng rng(4);
  TraceConfig cfg;
  cfg.pattern = MobilityPattern::kStationary;
  cfg.dwell_count = 8;
  auto trace = GenerateTrace(FourSites(), cfg, rng);
  ASSERT_TRUE(trace.ok());
  for (const auto& rec : *trace) EXPECT_EQ(rec.site_index, 0u);
}

TEST(GenerateTrace, PatrolCyclesThroughSites) {
  common::Rng rng(4);
  TraceConfig cfg;
  cfg.pattern = MobilityPattern::kPatrol;
  cfg.dwell_count = 9;
  auto trace = GenerateTrace(FourSites(), cfg, rng);
  ASSERT_TRUE(trace.ok());
  for (std::size_t i = 0; i < trace->size(); ++i)
    EXPECT_EQ((*trace)[i].site_index, i % 4);
}

TEST(GenerateTrace, PositionErrorBoundsReportedPosition) {
  common::Rng rng(5);
  TraceConfig cfg;
  cfg.dwell_count = 20;
  cfg.position_error_m = 1.5;
  auto trace = GenerateTrace(FourSites(), cfg, rng);
  ASSERT_TRUE(trace.ok());
  bool some_error = false;
  for (const auto& rec : *trace) {
    const double err = Distance(rec.true_position, rec.reported_position);
    EXPECT_LE(err, 1.5 + 1e-12);
    if (err > 1e-6) some_error = true;
  }
  EXPECT_TRUE(some_error);
}

TEST(GenerateTrace, NoErrorMeansExactReports) {
  common::Rng rng(6);
  TraceConfig cfg;
  cfg.dwell_count = 10;
  auto trace = GenerateTrace(FourSites(), cfg, rng);
  ASSERT_TRUE(trace.ok());
  for (const auto& rec : *trace)
    EXPECT_EQ(rec.true_position, rec.reported_position);
}

TEST(GenerateTrace, DeadReckoningDriftAccumulatesAndResetsAtHome) {
  common::Rng rng(9);
  TraceConfig cfg;
  cfg.pattern = MobilityPattern::kPatrol;  // Deterministic site sequence.
  cfg.dwell_count = 16;
  cfg.error_model = PositionErrorModel::kDeadReckoning;
  cfg.odometry_drift_per_m = 0.3;
  auto trace = GenerateTrace(FourSites(), cfg, rng);
  ASSERT_TRUE(trace.ok());
  bool some_drift = false;
  for (const auto& rec : *trace) {
    const double err = Distance(rec.true_position, rec.reported_position);
    if (rec.site_index == 0) {
      // Home site is a calibration point: drift resets to zero.
      EXPECT_NEAR(err, 0.0, 1e-12);
    } else if (err > 1e-6) {
      some_drift = true;
    }
  }
  EXPECT_TRUE(some_drift);
}

TEST(GenerateTrace, DeadReckoningZeroDriftIsExact) {
  common::Rng rng(10);
  TraceConfig cfg;
  cfg.dwell_count = 10;
  cfg.error_model = PositionErrorModel::kDeadReckoning;
  cfg.odometry_drift_per_m = 0.0;
  auto trace = GenerateTrace(FourSites(), cfg, rng);
  ASSERT_TRUE(trace.ok());
  for (const auto& rec : *trace)
    EXPECT_EQ(rec.true_position, rec.reported_position);
}

TEST(GenerateTrace, DeadReckoningErrorGrowsWithDriftRate) {
  auto mean_error = [](double drift) {
    common::Rng rng(11);
    TraceConfig cfg;
    cfg.pattern = MobilityPattern::kPatrol;
    cfg.dwell_count = 32;
    cfg.error_model = PositionErrorModel::kDeadReckoning;
    cfg.odometry_drift_per_m = drift;
    const std::vector<Vec2> sites{{0, 0}, {8, 0}, {8, 8}, {0, 8}};
    auto trace = GenerateTrace(sites, cfg, rng);
    double total = 0.0;
    for (const auto& rec : *trace)
      total += Distance(rec.true_position, rec.reported_position);
    return total / double(trace->size());
  };
  EXPECT_LT(mean_error(0.1), mean_error(0.6));
}

TEST(GenerateTrace, NegativeDriftThrows) {
  common::Rng rng(12);
  TraceConfig cfg;
  cfg.error_model = PositionErrorModel::kDeadReckoning;
  cfg.odometry_drift_per_m = -0.1;
  EXPECT_THROW((void)GenerateTrace(FourSites(), cfg, rng),
               std::logic_error);
}

TEST(GenerateTrace, MarkovWalkEventuallyVisitsAllSites) {
  common::Rng rng(7);
  TraceConfig cfg;
  cfg.dwell_count = 64;
  auto trace = GenerateTrace(FourSites(), cfg, rng);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(VisitedSites(*trace).size(), 4u);
}

TEST(VisitedSites, FirstVisitOrderAndUniqueness) {
  std::vector<DwellRecord> trace;
  for (std::size_t s : {2u, 0u, 2u, 1u, 0u}) {
    DwellRecord rec;
    rec.site_index = s;
    trace.push_back(rec);
  }
  const auto visited = VisitedSites(trace);
  const std::vector<std::size_t> expected{2, 0, 1};
  EXPECT_EQ(visited, expected);
}

class MobilityPatternTest : public ::testing::TestWithParam<MobilityPattern> {
};

TEST_P(MobilityPatternTest, AllRecordsReferenceValidSites) {
  common::Rng rng(11);
  TraceConfig cfg;
  cfg.pattern = GetParam();
  cfg.dwell_count = 16;
  cfg.position_error_m = 0.5;
  const auto sites = FourSites();
  auto trace = GenerateTrace(sites, cfg, rng);
  ASSERT_TRUE(trace.ok());
  for (const auto& rec : *trace) {
    ASSERT_LT(rec.site_index, sites.size());
    EXPECT_EQ(rec.true_position, sites[rec.site_index]);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPatterns, MobilityPatternTest,
                         ::testing::Values(MobilityPattern::kMarkovWalk,
                                           MobilityPattern::kStayBiased,
                                           MobilityPattern::kPatrol,
                                           MobilityPattern::kStationary));

}  // namespace
}  // namespace nomloc::mobility
