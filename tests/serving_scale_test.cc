// Serving-at-scale smoke: stands up 10k sessions through the real
// service with a loadgen schedule and checks the memory contract
// (bytes/session within the per-shard budget model), pressure eviction,
// and the incremental sweep.  The full 100k/1M sweep lives in
// bench_serving --open-loop; this is the ctest-sized slice (label
// `serving-scale`, also run under NOMLOC_SANITIZE=thread).
#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "common/assert.h"
#include "common/metrics.h"
#include "core/nomloc.h"
#include "serving/clock.h"
#include "serving/loadgen.h"
#include "serving/service.h"
#include "serving/session_store.h"

namespace nomloc::serving {
namespace {

constexpr std::size_t kSessions = 10'000;

PdpObservation Obs(double pdp, double weight, double t_s) {
  PdpObservation obs;
  obs.pdp = pdp;
  obs.weight = weight;
  obs.timestamp_s = t_s;
  return obs;
}

TEST(ServingScale, TenThousandSessionsWithinByteBudget) {
  auto engine = core::NomLocEngine::Create(
      geometry::Polygon::Rectangle(0.0, 0.0, 30.0, 30.0));
  ASSERT_TRUE(engine.ok());

  LoadGenConfig load;
  load.objects = kSessions;
  load.anchors_per_object = 3;
  load.packets = 5'000;
  load.rate_per_s = 100'000.0;
  load.seed = 7;
  const LoadSchedule schedule = BuildLoadSchedule(load);

  ManualClock clock;
  ServingConfig config;
  config.workers = 1;
  config.queue_capacity =
      schedule.populate.size() + schedule.steady.size() + 1;
  config.store.shards = 64;
  config.store.reserve_sessions = kSessions;
  config.store.reserve_anchors = kSessions * load.anchors_per_object;
  config.store.reserve_observations =
      kSessions * load.anchors_per_object + load.packets;
  auto service = StreamingLocalizer::Create(*engine, config, &clock);
  ASSERT_TRUE(service.ok());

  for (const IngestPacket& packet : schedule.populate)
    ASSERT_EQ((*service)->Ingest(packet), AdmitStatus::kAccepted);
  (*service)->Flush();

  const MemoryStats after_populate = (*service)->Store().Memory();
  EXPECT_EQ(after_populate.sessions, kSessions);
  EXPECT_EQ(after_populate.anchors, kSessions * load.anchors_per_object);
  ASSERT_GT(after_populate.sessions, 0u);
  // The headline memory contract: live footprint per session stays within
  // the 512 B/session budget the 1M benchmark is provisioned against.
  EXPECT_LE(after_populate.live_bytes / after_populate.sessions, 512u);
  EXPECT_GE(after_populate.resident_bytes, after_populate.live_bytes);

  for (const ScheduledPacket& scheduled : schedule.steady) {
    clock.Set(scheduled.send_offset_s);
    ASSERT_EQ((*service)->Ingest(scheduled.packet), AdmitStatus::kAccepted);
  }
  (*service)->Flush();

  std::size_t queries = 0;
  for (const ScheduledPacket& scheduled : schedule.steady)
    if (scheduled.packet.kind == PacketKind::kQuery) ++queries;
  EXPECT_EQ((*service)->TakeResponses().size(), queries);
  EXPECT_EQ((*service)->Store().SessionCount(), kSessions);
}

TEST(ServingScale, PressureEvictionHoldsShardUnderBudget) {
  auto& pressure = common::MetricRegistry::Global().Counter(
      "serving.evictions.pressure");
  const auto pressure_before = pressure.Value();

  SessionStoreConfig config;
  config.shards = 1;
  config.anchor_ttl_s = 1e9;       // no time decay in this test
  config.session_idle_ttl_s = 1e9;
  config.shard_bytes_budget = 16 * 1024;
  SessionStore store(config);

  for (std::uint64_t id = 0; id < 500; ++id)
    store.Upsert(id, {0, 0}, {1.0, 1.0}, false,
                 Obs(0.5, 1.0, double(id)), double(id));

  const MemoryStats stats = store.Memory();
  EXPECT_LE(stats.live_bytes, config.shard_bytes_budget);
  EXPECT_LT(store.SessionCount(), 500u);
  EXPECT_GT(store.SessionCount(), 1u);
  EXPECT_GT(pressure.Value(), pressure_before);

  // Sampled LRU: the most recently touched sessions should largely have
  // survived; the newest one is always protected.
  EXPECT_TRUE(store.Snapshot(499, 499.0).ok());
}

TEST(ServingScale, UnlimitedBudgetNeverEvictsForPressure) {
  auto& pressure = common::MetricRegistry::Global().Counter(
      "serving.evictions.pressure");
  const auto pressure_before = pressure.Value();

  SessionStoreConfig config;
  config.shards = 1;
  config.shard_bytes_budget = 0;  // unlimited
  SessionStore store(config);
  for (std::uint64_t id = 0; id < 500; ++id)
    store.Upsert(id, {0, 0}, {1.0, 1.0}, false, Obs(0.5, 1.0, 0.0), 0.0);
  EXPECT_EQ(store.SessionCount(), 500u);
  EXPECT_EQ(pressure.Value(), pressure_before);
}

TEST(ServingScale, SweepStepConvergesToFullSweep) {
  SessionStoreConfig config;
  config.shards = 1;
  config.anchor_ttl_s = 10.0;
  config.session_idle_ttl_s = 20.0;
  SessionStore store(config);
  for (std::uint64_t id = 0; id < 200; ++id)
    store.Upsert(id, {0, 0}, {1.0, 1.0}, false, Obs(0.5, 1.0, 0.0), 0.0);
  ASSERT_EQ(store.SessionCount(), 200u);

  // Everything is idle at t=100.  Stepping 16 slots at a time must visit
  // every slot within ceil(capacity/16) rounds (round-robin cursor), even
  // though no single step covers the shard.
  std::size_t evicted = 0;
  for (int round = 0; round < 4096 && store.SessionCount() > 0; ++round)
    evicted += store.SweepStep(0, 100.0, 16);
  EXPECT_EQ(evicted, 200u);
  EXPECT_EQ(store.SessionCount(), 0u);
}

TEST(ServingScale, MemoryStatsShrinkAfterSweep) {
  SessionStoreConfig config;
  config.shards = 4;
  config.anchor_ttl_s = 10.0;
  config.session_idle_ttl_s = 20.0;
  SessionStore store(config);
  for (std::uint64_t id = 0; id < 300; ++id)
    store.Upsert(id, {int(id % 3), 0}, {1.0, 1.0}, false,
                 Obs(0.5, 1.0, 0.0), 0.0);
  const MemoryStats full = store.Memory();
  EXPECT_EQ(full.sessions, 300u);
  EXPECT_EQ(full.anchors, 300u);
  EXPECT_EQ(full.observations, 300u);
  EXPECT_GT(full.live_bytes, 0u);

  EXPECT_EQ(store.SweepAll(100.0), 300u);
  const MemoryStats swept = store.Memory();
  EXPECT_EQ(swept.sessions, 0u);
  EXPECT_EQ(swept.observations, 0u);
  EXPECT_LT(swept.live_bytes, full.live_bytes);
  // Slab capacity is retained for reuse — resident does not shrink.
  EXPECT_GE(swept.resident_bytes, full.resident_bytes);
}

}  // namespace
}  // namespace nomloc::serving
