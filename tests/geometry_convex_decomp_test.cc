#include "geometry/convex_decomp.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.h"

namespace nomloc::geometry {
namespace {

Polygon LShape() {
  auto p = Polygon::Create(
      {{0.0, 0.0}, {4.0, 0.0}, {4.0, 2.0}, {2.0, 2.0}, {2.0, 4.0}, {0.0, 4.0}});
  return std::move(p).value();
}

double TotalArea(std::span<const Polygon> parts) {
  double area = 0.0;
  for (const Polygon& p : parts) area += p.Area();
  return area;
}

TEST(Triangulate, TriangleIsItself) {
  auto tri = Polygon::Create({{0.0, 0.0}, {2.0, 0.0}, {1.0, 2.0}});
  auto result = Triangulate(*tri);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1u);
}

TEST(Triangulate, SquareGivesTwoTriangles) {
  auto result = Triangulate(Polygon::Rectangle(0.0, 0.0, 1.0, 1.0));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 2u);
}

TEST(Triangulate, CountIsVerticesMinusTwo) {
  const Polygon l = LShape();
  auto result = Triangulate(l);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), l.VertexCount() - 2);
}

TEST(Triangulate, AreasSumToPolygonArea) {
  const Polygon l = LShape();
  auto result = Triangulate(l);
  ASSERT_TRUE(result.ok());
  double area = 0.0;
  for (const auto& t : *result) {
    const Vec2 tri[] = {t[0], t[1], t[2]};
    area += std::abs(SignedArea(tri));
  }
  EXPECT_NEAR(area, l.Area(), 1e-9);
}

TEST(DecomposeConvex, ConvexInputPassesThrough) {
  const Polygon sq = Polygon::Rectangle(0.0, 0.0, 2.0, 2.0);
  auto result = DecomposeConvex(sq);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_NEAR(result->front().Area(), 4.0, 1e-12);
}

TEST(DecomposeConvex, LShapeSplitsIntoFewConvexParts) {
  auto result = DecomposeConvex(LShape());
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->size(), 2u);
  EXPECT_LE(result->size(), 3u);  // Optimal is 2; Hertel–Mehlhorn <= 4x.
  for (const Polygon& part : *result) EXPECT_TRUE(part.IsConvex());
  EXPECT_NEAR(TotalArea(*result), 12.0, 1e-9);
}

TEST(DecomposeConvex, PartsCoverRepresentativePoints) {
  auto result = DecomposeConvex(LShape());
  ASSERT_TRUE(result.ok());
  const Vec2 inside_points[] = {{1.0, 1.0}, {3.0, 1.0}, {1.0, 3.0},
                                {0.5, 0.5}, {3.9, 1.9}, {1.9, 3.9}};
  for (const Vec2 p : inside_points) {
    bool covered = false;
    for (const Polygon& part : *result)
      if (part.Contains(p)) covered = true;
    EXPECT_TRUE(covered) << "point " << p.x << "," << p.y;
  }
  // The notch stays uncovered.
  for (const Polygon& part : *result) EXPECT_FALSE(part.Contains({3.0, 3.0}));
}

TEST(DecomposeConvex, UShape) {
  auto u = Polygon::Create({{0.0, 0.0},
                            {6.0, 0.0},
                            {6.0, 4.0},
                            {4.0, 4.0},
                            {4.0, 2.0},
                            {2.0, 2.0},
                            {2.0, 4.0},
                            {0.0, 4.0}});
  ASSERT_TRUE(u.ok());
  auto result = DecomposeConvex(*u);
  ASSERT_TRUE(result.ok());
  for (const Polygon& part : *result) EXPECT_TRUE(part.IsConvex());
  EXPECT_NEAR(TotalArea(*result), u->Area(), 1e-9);
  // Interiors must be disjoint: sampled points are in at most one part's
  // strict interior.
  common::Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const Vec2 p{rng.Uniform(0.0, 6.0), rng.Uniform(0.0, 4.0)};
    int strictly_inside = 0;
    for (const Polygon& part : *result) {
      if (part.Contains(p) && part.BoundaryDistance(p) > 1e-9)
        ++strictly_inside;
    }
    EXPECT_LE(strictly_inside, 1);
  }
}

TEST(DecomposeConvex, StarShapedPolygon) {
  // An 8-vertex star (alternating radii) — many reflex vertices.
  std::vector<Vec2> star;
  for (int k = 0; k < 8; ++k) {
    const double ang = 2.0 * std::numbers::pi * k / 8.0;
    const double r = (k % 2 == 0) ? 4.0 : 1.5;
    star.push_back({r * std::cos(ang), r * std::sin(ang)});
  }
  auto poly = Polygon::Create(star);
  ASSERT_TRUE(poly.ok());
  auto result = DecomposeConvex(*poly);
  ASSERT_TRUE(result.ok());
  for (const Polygon& part : *result) EXPECT_TRUE(part.IsConvex());
  EXPECT_NEAR(TotalArea(*result), poly->Area(), 1e-9);
}

// Property sweep over random rectilinear staircase polygons.
class StaircaseDecompTest : public ::testing::TestWithParam<int> {};

TEST_P(StaircaseDecompTest, DecomposesCleanly) {
  const int steps = GetParam();
  // Build a staircase: up-right k times, then close along the axes.
  std::vector<Vec2> v;
  v.push_back({0.0, 0.0});
  v.push_back({double(steps + 1), 0.0});
  for (int k = steps; k >= 1; --k) {
    v.push_back({double(k), double(steps + 1 - k)});
    v.push_back({double(k), double(steps + 2 - k)});
  }
  v.push_back({0.0, double(steps + 1)});
  auto poly = Polygon::Create(v);
  ASSERT_TRUE(poly.ok()) << poly.status().ToString();
  auto result = DecomposeConvex(*poly);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const Polygon& part : *result) EXPECT_TRUE(part.IsConvex());
  EXPECT_NEAR(TotalArea(*result), poly->Area(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Staircases, StaircaseDecompTest,
                         ::testing::Values(1, 2, 3, 4, 6, 8));

}  // namespace
}  // namespace nomloc::geometry
