#include "localization/sp_solver.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "geometry/convex_decomp.h"

namespace nomloc::localization {
namespace {

using geometry::HalfPlane;
using geometry::Polygon;
using geometry::Vec2;

// Ideal (noise-free) constraints for an object at `truth` among `aps`:
// every pairwise bisector with the correct direction.
std::vector<SpConstraint> IdealConstraints(Vec2 truth,
                                           std::span<const Vec2> aps,
                                           double weight = 0.9) {
  std::vector<SpConstraint> out;
  for (std::size_t i = 0; i < aps.size(); ++i) {
    for (std::size_t j = i + 1; j < aps.size(); ++j) {
      const bool i_closer = Distance(truth, aps[i]) <= Distance(truth, aps[j]);
      const Vec2 w = i_closer ? aps[i] : aps[j];
      const Vec2 l = i_closer ? aps[j] : aps[i];
      out.push_back({HalfPlane::CloserTo(w, l), weight, false});
    }
  }
  return out;
}

TEST(SolveSpPart, ConsistentConstraintsHaveZeroCost) {
  const Polygon room = Polygon::Rectangle(0.0, 0.0, 10.0, 8.0);
  const std::vector<Vec2> aps{{1, 1}, {9, 1}, {9, 7}, {1, 7}};
  const Vec2 truth{3.0, 2.0};
  auto sol = SolveSpPart(room, IdealConstraints(truth, aps), {});
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_NEAR(sol->relaxation_cost, 0.0, 1e-7);
  EXPECT_EQ(sol->violated, 0u);
}

TEST(SolveSpPart, EstimateInsideRegionAndRoom) {
  const Polygon room = Polygon::Rectangle(0.0, 0.0, 10.0, 8.0);
  const std::vector<Vec2> aps{{1, 1}, {9, 1}, {9, 7}, {1, 7}};
  const Vec2 truth{3.0, 2.0};
  const auto constraints = IdealConstraints(truth, aps);
  auto sol = SolveSpPart(room, constraints, {});
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(room.Contains(sol->estimate, 1e-6));
  for (const auto& c : constraints)
    EXPECT_TRUE(c.half_plane.Contains(sol->estimate, 1e-5));
}

TEST(SolveSpPart, EstimateInTruthCell) {
  // The estimate must share the truth's distance ordering cell: the truth
  // satisfies all ideal constraints, so the region contains it.
  const Polygon room = Polygon::Rectangle(0.0, 0.0, 10.0, 8.0);
  const std::vector<Vec2> aps{{1, 1}, {9, 1}, {9, 7}, {1, 7}};
  common::Rng rng(5);
  for (int trial = 0; trial < 25; ++trial) {
    const Vec2 truth{rng.Uniform(0.5, 9.5), rng.Uniform(0.5, 7.5)};
    auto sol = SolveSpPart(room, IdealConstraints(truth, aps), {});
    ASSERT_TRUE(sol.ok());
    ASSERT_GE(sol->region.size(), 3u);
    // Truth inside the reconstructed region.
    for (const auto& hp :
         geometry::ToHalfPlanes(room))  // Sanity: room contains truth.
      EXPECT_TRUE(hp.Contains(truth));
    const double area = std::abs(geometry::SignedArea(sol->region));
    EXPECT_GT(area, 0.0);
    // The estimate is inside the same cell, so the error is bounded by the
    // cell diameter; with 4 APs cells are coarse, just check containment.
    bool truth_in_region = true;
    const std::size_t n = sol->region.size();
    for (std::size_t i = 0; i < n; ++i) {
      const Vec2 a = sol->region[i];
      const Vec2 b = sol->region[(i + 1) % n];
      if (geometry::Cross(b - a, truth - a) < -1e-6) truth_in_region = false;
    }
    EXPECT_TRUE(truth_in_region);
  }
}

TEST(SolveSpPart, MoreAnchorsShrinkRegion) {
  const Polygon room = Polygon::Rectangle(0.0, 0.0, 10.0, 8.0);
  const Vec2 truth{4.0, 3.0};
  const std::vector<Vec2> few{{1, 1}, {9, 1}, {9, 7}, {1, 7}};
  std::vector<Vec2> many = few;
  many.insert(many.end(), {{3, 4}, {6, 2}, {5, 6}, {2, 5}});
  auto sol_few = SolveSpPart(room, IdealConstraints(truth, few), {});
  auto sol_many = SolveSpPart(room, IdealConstraints(truth, many), {});
  ASSERT_TRUE(sol_few.ok());
  ASSERT_TRUE(sol_many.ok());
  const double area_few = std::abs(geometry::SignedArea(sol_few->region));
  const double area_many = std::abs(geometry::SignedArea(sol_many->region));
  EXPECT_LT(area_many, area_few);
}

TEST(SolveSpPart, ContradictoryConstraintBreaksCheapest) {
  const Polygon room = Polygon::Rectangle(0.0, 0.0, 10.0, 8.0);
  // "Closer to (1,4) than (7,4)" pins x <= 4 with high weight; "closer to
  // (9,4) than (3,4)" pins x >= 6 with low weight.  The gap forces a
  // relaxation, and the low-weight constraint must be the one that breaks.
  std::vector<SpConstraint> constraints{
      {HalfPlane::CloserTo({1, 4}, {7, 4}), 0.95, false},
      {HalfPlane::CloserTo({9, 4}, {3, 4}), 0.55, false}};
  auto sol = SolveSpPart(room, constraints, {});
  ASSERT_TRUE(sol.ok());
  EXPECT_GT(sol->relaxation_cost, 0.0);
  EXPECT_EQ(sol->violated, 1u);
  // Estimate obeys the heavy constraint (x <= 4).
  EXPECT_LE(sol->estimate.x, 4.0 + 1e-6);
}

TEST(SolveSpPart, BoundaryKeepsEstimateInsideDespiteOutwardPull) {
  const Polygon room = Polygon::Rectangle(0.0, 0.0, 10.0, 8.0);
  // All constraints push the object out the right wall: "closer to a point
  // beyond the wall than to points inside".
  std::vector<SpConstraint> constraints{
      {HalfPlane::CloserTo({50.0, 4.0}, {1.0, 4.0}), 0.9, false}};
  auto sol = SolveSpPart(room, constraints, {});
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(room.Contains(sol->estimate, 1e-6));
}

TEST(SolveSpPart, NonConvexPartRejected) {
  auto l = Polygon::Create(
      {{0.0, 0.0}, {4.0, 0.0}, {4.0, 2.0}, {2.0, 2.0}, {2.0, 4.0}, {0.0, 4.0}});
  std::vector<SpConstraint> constraints{
      {HalfPlane::CloserTo({1, 1}, {3, 1}), 0.9, false}};
  EXPECT_EQ(SolveSpPart(*l, constraints, {}).status().code(),
            common::StatusCode::kInvalidArgument);
}

TEST(SolveSpPart, EmptyConstraintsRejected) {
  const Polygon room = Polygon::Rectangle(0.0, 0.0, 1.0, 1.0);
  EXPECT_EQ(SolveSpPart(room, {}, {}).status().code(),
            common::StatusCode::kInvalidArgument);
}

class CenterMethodTest : public ::testing::TestWithParam<CenterMethod> {};

TEST_P(CenterMethodTest, EstimateStaysInRegion) {
  const Polygon room = Polygon::Rectangle(0.0, 0.0, 10.0, 8.0);
  const std::vector<Vec2> aps{{1, 1}, {9, 1}, {9, 7}, {1, 7}, {5, 4}};
  common::Rng rng(9);
  SpSolverOptions options;
  options.center = GetParam();
  for (int trial = 0; trial < 10; ++trial) {
    const Vec2 truth{rng.Uniform(0.5, 9.5), rng.Uniform(0.5, 7.5)};
    const auto constraints = IdealConstraints(truth, aps);
    auto sol = SolveSpPart(room, constraints, options);
    ASSERT_TRUE(sol.ok()) << sol.status().ToString();
    EXPECT_TRUE(room.Contains(sol->estimate, 1e-5));
    for (const auto& c : constraints)
      EXPECT_TRUE(c.half_plane.Contains(sol->estimate, 1e-4));
  }
}

INSTANTIATE_TEST_SUITE_P(AllCenters, CenterMethodTest,
                         ::testing::Values(CenterMethod::kCentroid,
                                           CenterMethod::kChebyshev,
                                           CenterMethod::kAnalytic));

// The paper solved Eq. 19 with CVX's interior point; our two backends
// must agree on cost and estimate across random instances.
TEST(SolveSpPart, LpBackendsAgree) {
  const Polygon room = Polygon::Rectangle(0.0, 0.0, 12.0, 8.0);
  const std::vector<Vec2> aps{{1, 1}, {11, 1}, {11, 7}, {1, 7}, {6, 4}};
  common::Rng rng(41);
  SpSolverOptions simplex_opts;
  SpSolverOptions ipm_opts;
  ipm_opts.lp_backend = LpBackend::kInteriorPoint;
  for (int trial = 0; trial < 15; ++trial) {
    const Vec2 truth{rng.Uniform(0.5, 11.5), rng.Uniform(0.5, 7.5)};
    auto constraints = IdealConstraints(truth, aps);
    // Poison one judgement so the relaxation actually has work to do on
    // some trials.
    if (trial % 3 == 0 && constraints.size() > 2) {
      std::swap(constraints[0].half_plane.a.x,
                constraints[0].half_plane.a.y);
      constraints[0].weight = 0.55;
    }
    auto s = SolveSpPart(room, constraints, simplex_opts);
    auto ipm = SolveSpPart(room, constraints, ipm_opts);
    ASSERT_TRUE(s.ok()) << s.status().ToString();
    ASSERT_TRUE(ipm.ok()) << ipm.status().ToString();
    EXPECT_NEAR(ipm->relaxation_cost, s->relaxation_cost,
                1e-4 * (1.0 + s->relaxation_cost));
    EXPECT_LT(Distance(ipm->estimate, s->estimate), 0.2);
  }
}

TEST(SolveSp, SinglePartMatchesSolveSpPart) {
  const Polygon room = Polygon::Rectangle(0.0, 0.0, 10.0, 8.0);
  const std::vector<Vec2> aps{{1, 1}, {9, 1}, {9, 7}, {1, 7}};
  const auto constraints = IdealConstraints({3.0, 2.0}, aps);
  const std::vector<Polygon> parts{room};
  auto multi = SolveSp(parts, constraints, {});
  auto single = SolveSpPart(room, constraints, {});
  ASSERT_TRUE(multi.ok());
  ASSERT_TRUE(single.ok());
  EXPECT_NEAR(multi->estimate.x, single->estimate.x, 1e-9);
  EXPECT_NEAR(multi->estimate.y, single->estimate.y, 1e-9);
  EXPECT_EQ(multi->best_part, 0u);
}

TEST(SolveSp, PicksThePartContainingTheTruth) {
  // L-shaped area decomposed into convex parts; the object sits deep in
  // the vertical arm, so the horizontal arm's program must cost more.
  auto l = Polygon::Create({{0.0, 0.0},
                            {20.0, 0.0},
                            {20.0, 6.0},
                            {8.0, 6.0},
                            {8.0, 14.0},
                            {0.0, 14.0}});
  ASSERT_TRUE(l.ok());
  auto parts = geometry::DecomposeConvex(*l);
  ASSERT_TRUE(parts.ok());
  const std::vector<Vec2> aps{{2, 2}, {18, 2}, {12, 5}, {3, 12}};
  const Vec2 truth{3.0, 11.0};
  auto sol = SolveSp(*parts, IdealConstraints(truth, aps), {});
  ASSERT_TRUE(sol.ok());
  // Estimate lands in a part containing points near the truth.
  EXPECT_LT(Distance(sol->estimate, truth), 6.0);
  EXPECT_TRUE((*parts)[sol->best_part].Contains(truth, 1e-6) ||
              sol->relaxation_cost < 1e-6);
  EXPECT_TRUE(l->Contains(sol->estimate, 1e-5));
}

TEST(SolveSp, EmptyPartListRejected) {
  std::vector<SpConstraint> constraints{
      {HalfPlane::CloserTo({0, 0}, {1, 0}), 0.9, false}};
  EXPECT_EQ(SolveSp({}, constraints, {}).status().code(),
            common::StatusCode::kInvalidArgument);
}

TEST(SolveSp, ReportsPerPartSolutions) {
  auto l = Polygon::Create(
      {{0.0, 0.0}, {4.0, 0.0}, {4.0, 2.0}, {2.0, 2.0}, {2.0, 4.0}, {0.0, 4.0}});
  auto parts = geometry::DecomposeConvex(*l);
  ASSERT_TRUE(parts.ok());
  const std::vector<Vec2> aps{{1, 1}, {3, 1}, {1, 3}};
  auto sol = SolveSp(*parts, IdealConstraints({1.0, 1.0}, aps), {});
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->parts.size(), parts->size());
}

// Property: adding a nomadic anchor (more constraints) never increases the
// winning region's area for the same truth.
TEST(SolveSpProperty, NomadicDownscopingShrinksRegions) {
  const Polygon room = Polygon::Rectangle(0.0, 0.0, 12.0, 8.0);
  common::Rng rng(21);
  for (int trial = 0; trial < 15; ++trial) {
    const Vec2 truth{rng.Uniform(1.0, 11.0), rng.Uniform(1.0, 7.0)};
    std::vector<Vec2> aps{{1, 1}, {11, 1}, {11, 7}, {1, 7}};
    auto before = SolveSpPart(room, IdealConstraints(truth, aps), {});
    aps.push_back({rng.Uniform(2.0, 10.0), rng.Uniform(2.0, 6.0)});
    auto after = SolveSpPart(room, IdealConstraints(truth, aps), {});
    ASSERT_TRUE(before.ok());
    ASSERT_TRUE(after.ok());
    const double area_before =
        std::abs(geometry::SignedArea(before->region));
    const double area_after = std::abs(geometry::SignedArea(after->region));
    EXPECT_LE(area_after, area_before + 1e-6);
  }
}

}  // namespace
}  // namespace nomloc::localization
