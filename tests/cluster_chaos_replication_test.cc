// Chaos-replication sweep (ISSUE 10 acceptance): across seeds, a
// replicated cluster under crash kills that deliberately land mid-epoch
// (between a group's write and its flush) plus live migrations must
// answer bit-identically to the unsharded golden run — zero accepted
// observations lost, every accepted query answered exactly once — and
// recover fully by the tail.
#include "cluster/chaos.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <utility>

#include "eval/scenario.h"
#include "serving/replay.h"

namespace nomloc::cluster {
namespace {

struct Harness {
  eval::Scenario scenario;
  serving::ReplayConfig replay;
  serving::ReplayPlan plan;
  core::NomLocEngine engine;
};

common::Result<Harness> MakeHarness() {
  NOMLOC_ASSIGN_OR_RETURN(eval::Scenario scenario,
                          eval::ScenarioByName("lab"));
  serving::ReplayConfig replay;
  replay.objects = 4;
  replay.epochs = 6;
  replay.run.packets_per_batch = 3;
  replay.run.dwell_count = 3;
  NOMLOC_ASSIGN_OR_RETURN(serving::ReplayPlan plan,
                          BuildReplayPlan(scenario, replay));
  core::NomLocConfig engine_cfg;
  engine_cfg.bandwidth_hz = replay.run.channel.bandwidth_hz;
  NOMLOC_ASSIGN_OR_RETURN(
      core::NomLocEngine engine,
      core::NomLocEngine::Create(scenario.env.Boundary(), engine_cfg));
  return Harness{std::move(scenario), replay, std::move(plan),
                 std::move(engine)};
}

ClusterConfig ReplicatedConfig() {
  ClusterConfig config;
  config.shards = 4;
  config.serving.workers = 2;
  config.replicate = true;
  return config;
}

ClusterChaosConfig ParityChaos(std::uint64_t seed) {
  ClusterChaosConfig chaos;
  chaos.seed = seed;
  chaos.events = 4;
  // The parity-preserving mix: crash kills + migrations.  Clean kills
  // restore from a checkpoint (legitimately dropping newer sessions) and
  // would fail the bit-compare by design.
  chaos.kill_weight = 0.0;
  chaos.stall_weight = 0.0;
  chaos.migrate_weight = 2.0;
  chaos.kill_unclean_weight = 3.0;
  chaos.check_parity = true;
  return chaos;
}

TEST(ClusterChaosReplication, SeedSweepKeepsBitParityUnderCrashKills) {
  auto harness = MakeHarness();
  ASSERT_TRUE(harness.ok()) << harness.status().ToString();

  std::size_t crash_kills_across_seeds = 0;
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull, 11ull}) {
    auto report = RunClusterChaos(harness->engine, harness->plan,
                                  harness->replay.epoch_interval_s,
                                  ParityChaos(seed), ReplicatedConfig());
    ASSERT_TRUE(report.ok()) << "seed " << seed << ": "
                             << report.status().ToString();
    // Zero loss: every accepted packet survives the crashes (typed
    // rejections are allowed, silent drops are not), and every accepted
    // query is answered exactly once, bit-identically to the golden.
    EXPECT_TRUE(report->parity_checked);
    EXPECT_EQ(report->parity_mismatches, 0u) << "seed " << seed;
    EXPECT_EQ(report->parity_compared, report->outcomes.size());
    EXPECT_EQ(report->outcomes.size(), report->accepted_queries)
        << "seed " << seed;
    EXPECT_EQ(report->admit_rejected_backpressure, 0u);
    EXPECT_EQ(report->admit_rejected_breaker, 0u);
    EXPECT_EQ(report->kills_unclean, report->recoveries)
        << "seed " << seed << ": a crash window must end in Recover()";
    crash_kills_across_seeds += report->kills_unclean;
  }
  // The sweep is vacuous unless the schedules actually crash shards.
  EXPECT_GT(crash_kills_across_seeds, 0u);
}

TEST(ClusterChaosReplication, ScheduleLandsCrashKillsOffTheEpochGrid) {
  auto harness = MakeHarness();
  ASSERT_TRUE(harness.ok()) << harness.status().ToString();
  ClusterChaosConfig chaos = ParityChaos(7);
  chaos.events = 8;
  chaos.migrate_weight = 0.0;  // Crash kills only.
  const ClusterChaosSchedule schedule = BuildClusterChaosSchedule(
      chaos, harness->plan, harness->replay.epoch_interval_s, 4);
  ASSERT_FALSE(schedule.events.empty());
  std::set<double> trigger_epochs;
  std::size_t unclean = 0;
  for (const ClusterChaosEvent& event : schedule.events) {
    // Trigger-epoch de-confliction converts surplus crash draws into
    // migrations (replication factor one tolerates one crash per flush
    // group), so not every event stays unclean.
    if (event.kind != ClusterChaosEventKind::kShardKillUnclean) {
      ASSERT_EQ(event.kind, ClusterChaosEventKind::kShardMigrate);
      continue;
    }
    ++unclean;
    const double interval = harness->replay.epoch_interval_s;
    EXPECT_TRUE(
        trigger_epochs.insert(std::floor(event.start_s / interval)).second)
        << "two crashes share trigger epoch at " << event.start_s;
    const double frac = event.start_s / interval -
                        double(std::size_t(event.start_s / interval));
    // Deliberately mid-epoch (queries sit at 0.4): never on a boundary.
    EXPECT_GE(frac, 0.5) << "start " << event.start_s;
    EXPECT_LT(frac, 0.9 + 1e-9) << "start " << event.start_s;
    // The recovery edge IS on the grid (a drained boundary).
    const double end_frac = event.end_s / interval -
                            double(std::size_t(event.end_s / interval));
    EXPECT_NEAR(end_frac, 0.0, 1e-9) << "end " << event.end_s;
  }
  EXPECT_GT(unclean, 0u);
}

TEST(ClusterChaosReplication, LegacySeedsUnaffectedByNewEventKind) {
  // kill_unclean_weight defaults to 0: a pre-replication chaos config
  // must draw the exact same schedule it always did.
  auto harness = MakeHarness();
  ASSERT_TRUE(harness.ok()) << harness.status().ToString();
  ClusterChaosConfig chaos;
  chaos.seed = 3;
  const ClusterChaosSchedule schedule = BuildClusterChaosSchedule(
      chaos, harness->plan, harness->replay.epoch_interval_s, 4);
  for (const ClusterChaosEvent& event : schedule.events)
    EXPECT_NE(event.kind, ClusterChaosEventKind::kShardKillUnclean);
}

}  // namespace
}  // namespace nomloc::cluster
