#include "geometry/halfplane.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace nomloc::geometry {
namespace {

TEST(HalfPlane, SlackAndContains) {
  const HalfPlane hp{{1.0, 0.0}, 2.0};  // x <= 2.
  EXPECT_DOUBLE_EQ(hp.Slack({0.0, 0.0}), 2.0);
  EXPECT_DOUBLE_EQ(hp.Slack({2.0, 5.0}), 0.0);
  EXPECT_DOUBLE_EQ(hp.Slack({3.0, 0.0}), -1.0);
  EXPECT_TRUE(hp.Contains({1.0, 0.0}));
  EXPECT_TRUE(hp.Contains({2.0, 0.0}));
  EXPECT_FALSE(hp.Contains({2.1, 0.0}));
}

TEST(HalfPlane, RelaxedShiftsBoundary) {
  const HalfPlane hp{{1.0, 0.0}, 2.0};
  const HalfPlane relaxed = hp.Relaxed(1.5);
  EXPECT_TRUE(relaxed.Contains({3.0, 0.0}));
  EXPECT_FALSE(relaxed.Contains({3.6, 0.0}));
}

TEST(HalfPlane, CloserToIsPerpendicularBisector) {
  const Vec2 w{0.0, 0.0}, l{4.0, 0.0};
  const HalfPlane hp = HalfPlane::CloserTo(w, l);
  // Points closer to w satisfy it; midpoint is on the boundary.
  EXPECT_TRUE(hp.Contains({1.0, 0.0}));
  EXPECT_FALSE(hp.Contains({3.0, 0.0}));
  EXPECT_NEAR(hp.Slack({2.0, 0.0}), 0.0, 1e-12);
  EXPECT_NEAR(hp.Slack({2.0, 7.0}), 0.0, 1e-12);  // Whole bisector.
}

TEST(HalfPlane, CloserToMatchesPaperEq7) {
  // Eq. 7: 2(xj-xi) x + 2(yj-yi) y <= xj^2+yj^2-xi^2-yi^2 (i=winner).
  const Vec2 w{1.0, 2.0}, l{-3.0, 5.0};
  const HalfPlane hp = HalfPlane::CloserTo(w, l);
  EXPECT_DOUBLE_EQ(hp.a.x, 2.0 * (l.x - w.x));
  EXPECT_DOUBLE_EQ(hp.a.y, 2.0 * (l.y - w.y));
  EXPECT_DOUBLE_EQ(hp.c, l.NormSq() - w.NormSq());
}

TEST(HalfPlane, CloserToCoincidentThrows) {
  EXPECT_THROW(HalfPlane::CloserTo({1.0, 1.0}, {1.0, 1.0}), std::logic_error);
}

// Property: random points' membership in CloserTo(w,l) matches the actual
// distance comparison.
TEST(HalfPlaneProperty, CloserToAgreesWithDistances) {
  common::Rng rng(17);
  for (int trial = 0; trial < 500; ++trial) {
    const Vec2 w{rng.Uniform(-10, 10), rng.Uniform(-10, 10)};
    Vec2 l{rng.Uniform(-10, 10), rng.Uniform(-10, 10)};
    if (Distance(w, l) < 1e-6) continue;
    const HalfPlane hp = HalfPlane::CloserTo(w, l);
    const Vec2 p{rng.Uniform(-10, 10), rng.Uniform(-10, 10)};
    const bool closer_to_w = Distance(p, w) <= Distance(p, l) + 1e-9;
    EXPECT_EQ(hp.Contains(p, 1e-6), closer_to_w);
  }
}

TEST(ClipLoop, HalvesSquare) {
  const Vec2 square[] = {{0.0, 0.0}, {2.0, 0.0}, {2.0, 2.0}, {0.0, 2.0}};
  const auto clipped = ClipLoop(square, {{1.0, 0.0}, 1.0});  // x <= 1.
  ASSERT_EQ(clipped.size(), 4u);
  EXPECT_NEAR(std::abs(SignedArea(clipped)), 2.0, 1e-12);
  for (const Vec2 v : clipped) EXPECT_LE(v.x, 1.0 + 1e-12);
}

TEST(ClipLoop, NoOpWhenFullyInside) {
  const Vec2 square[] = {{0.0, 0.0}, {1.0, 0.0}, {1.0, 1.0}, {0.0, 1.0}};
  const auto clipped = ClipLoop(square, {{1.0, 0.0}, 5.0});
  EXPECT_EQ(clipped.size(), 4u);
  EXPECT_NEAR(std::abs(SignedArea(clipped)), 1.0, 1e-12);
}

TEST(ClipLoop, EmptyWhenFullyOutside) {
  const Vec2 square[] = {{0.0, 0.0}, {1.0, 0.0}, {1.0, 1.0}, {0.0, 1.0}};
  const auto clipped = ClipLoop(square, {{1.0, 0.0}, -1.0});  // x <= -1.
  EXPECT_LT(clipped.size(), 3u);
}

TEST(ClipLoop, DiagonalCutMakesTriangle) {
  const Vec2 square[] = {{0.0, 0.0}, {1.0, 0.0}, {1.0, 1.0}, {0.0, 1.0}};
  // x + y <= 1 keeps the lower-left triangle.
  const auto clipped = ClipLoop(square, {{1.0, 1.0}, 1.0});
  EXPECT_EQ(clipped.size(), 3u);
  EXPECT_NEAR(std::abs(SignedArea(clipped)), 0.5, 1e-12);
}

TEST(ClipLoop, EmptyInputStaysEmpty) {
  EXPECT_TRUE(ClipLoop({}, {{1.0, 0.0}, 0.0}).empty());
}

TEST(IntersectConvex, SquareWithTwoHalfPlanes) {
  const Polygon sq = Polygon::Rectangle(0.0, 0.0, 4.0, 4.0);
  const HalfPlane hps[] = {{{1.0, 0.0}, 2.0},   // x <= 2
                           {{0.0, -1.0}, -1.0}}; // y >= 1
  const auto result = IntersectConvex(sq, hps);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->Area(), 6.0, 1e-9);
  EXPECT_TRUE(result->IsConvex());
}

TEST(IntersectConvex, EmptyIntersection) {
  const Polygon sq = Polygon::Rectangle(0.0, 0.0, 1.0, 1.0);
  const HalfPlane hps[] = {{{1.0, 0.0}, -5.0}};
  EXPECT_FALSE(IntersectConvex(sq, hps).has_value());
}

TEST(IntersectConvex, DegenerateSliver) {
  const Polygon sq = Polygon::Rectangle(0.0, 0.0, 1.0, 1.0);
  // Keep only a hair-thin band.
  const HalfPlane hps[] = {{{1.0, 0.0}, 1e-12}};
  EXPECT_FALSE(IntersectConvex(sq, hps).has_value());
}

TEST(IntersectConvex, NonConvexInputThrows) {
  auto l = Polygon::Create(
      {{0.0, 0.0}, {4.0, 0.0}, {4.0, 2.0}, {2.0, 2.0}, {2.0, 4.0}, {0.0, 4.0}});
  const HalfPlane hps[] = {{{1.0, 0.0}, 2.0}};
  EXPECT_THROW((void)IntersectConvex(*l, hps), std::logic_error);
}

// Property: repeated clipping by random half-planes through the square
// never increases area and keeps all vertices inside every half-plane.
TEST(ClipLoopProperty, MonotoneAreaAndFeasibleVertices) {
  common::Rng rng(23);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<Vec2> loop{{0.0, 0.0}, {10.0, 0.0}, {10.0, 10.0}, {0.0, 10.0}};
    std::vector<HalfPlane> applied;
    double prev_area = 100.0;
    for (int k = 0; k < 6 && loop.size() >= 3; ++k) {
      const double angle = rng.UniformAngle();
      const Vec2 n{std::cos(angle), std::sin(angle)};
      const Vec2 through{rng.Uniform(2.0, 8.0), rng.Uniform(2.0, 8.0)};
      const HalfPlane hp{n, Dot(n, through)};
      applied.push_back(hp);
      loop = ClipLoop(loop, hp);
      const double area = loop.size() >= 3 ? std::abs(SignedArea(loop)) : 0.0;
      EXPECT_LE(area, prev_area + 1e-9);
      prev_area = area;
      for (const Vec2 v : loop)
        for (const HalfPlane& h : applied)
          EXPECT_TRUE(h.Contains(v, 1e-6));
    }
  }
}

TEST(LoopCentroid, MatchesPolygonCentroid) {
  const Polygon sq = Polygon::Rectangle(1.0, 1.0, 3.0, 5.0);
  const Vec2 c = LoopCentroid(sq.Vertices());
  EXPECT_NEAR(c.x, 2.0, 1e-12);
  EXPECT_NEAR(c.y, 3.0, 1e-12);
}

TEST(LoopCentroid, DegenerateFallsBackToVertexMean) {
  const Vec2 two[] = {{0.0, 0.0}, {2.0, 0.0}};
  const Vec2 c = LoopCentroid(two);
  EXPECT_NEAR(c.x, 1.0, 1e-12);
  EXPECT_NEAR(c.y, 0.0, 1e-12);
}

TEST(LoopCentroid, EmptyIsOrigin) {
  EXPECT_EQ(LoopCentroid({}), Vec2(0.0, 0.0));
}

TEST(ToHalfPlanes, SquareGivesFourContainingPlanes) {
  const Polygon sq = Polygon::Rectangle(0.0, 0.0, 2.0, 2.0);
  const auto hps = ToHalfPlanes(sq);
  ASSERT_EQ(hps.size(), 4u);
  // Interior point satisfies all; exterior point violates at least one.
  for (const HalfPlane& hp : hps) EXPECT_TRUE(hp.Contains({1.0, 1.0}));
  int violated = 0;
  for (const HalfPlane& hp : hps)
    if (!hp.Contains({3.0, 1.0})) ++violated;
  EXPECT_GE(violated, 1);
}

TEST(ToHalfPlanes, RoundTripsThroughIntersect) {
  const Polygon sq = Polygon::Rectangle(0.0, 0.0, 3.0, 2.0);
  const Polygon big = Polygon::Rectangle(-10.0, -10.0, 10.0, 10.0);
  const auto result = IntersectConvex(big, ToHalfPlanes(sq));
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->Area(), 6.0, 1e-9);
}

TEST(ToHalfPlanes, NonConvexThrows) {
  auto l = Polygon::Create(
      {{0.0, 0.0}, {4.0, 0.0}, {4.0, 2.0}, {2.0, 2.0}, {2.0, 4.0}, {0.0, 4.0}});
  EXPECT_THROW(ToHalfPlanes(*l), std::logic_error);
}

}  // namespace
}  // namespace nomloc::geometry
