#include "dsp/impairments.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/units.h"
#include "dsp/cir.h"

namespace nomloc::dsp {
namespace {

// Two-path channel on the HT20 grid.
CsiFrame TestChannel() {
  const auto idx = CsiFrame::Ht20Indices();
  const double df = common::kBandwidth20MHz / common::kOfdmFftSize;
  std::vector<Cplx> vals(idx.size());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    const double f = double(idx[i]) * df;
    const double a1 = -2.0 * std::numbers::pi * f * 60e-9;
    const double a2 = -2.0 * std::numbers::pi * f * 260e-9;
    vals[i] = Cplx(std::cos(a1), std::sin(a1)) +
              0.5 * Cplx(std::cos(a2), std::sin(a2));
  }
  auto frame = CsiFrame::Create(idx, vals);
  return std::move(frame).value();
}

TEST(ApplyImpairments, PreservesGridAndChangesValues) {
  const CsiFrame clean = TestChannel();
  common::Rng rng(1);
  const CsiFrame dirty = ApplyImpairments(clean, {}, rng);
  ASSERT_EQ(dirty.SubcarrierCount(), clean.SubcarrierCount());
  EXPECT_NE(dirty.Values()[0], clean.Values()[0]);
}

TEST(ApplyImpairments, CommonPhaseOnlyPreservesMagnitudes) {
  const CsiFrame clean = TestChannel();
  common::Rng rng(2);
  ImpairmentConfig cfg;
  cfg.max_phase_slope_rad = 0.0;
  cfg.agc_jitter = 0.0;
  const CsiFrame dirty = ApplyImpairments(clean, cfg, rng);
  for (std::size_t i = 0; i < clean.SubcarrierCount(); ++i)
    EXPECT_NEAR(std::abs(dirty.Values()[i]), std::abs(clean.Values()[i]),
                1e-12);
}

TEST(ApplyImpairments, AgcJitterScalesPowerUniformly) {
  const CsiFrame clean = TestChannel();
  common::Rng rng(3);
  ImpairmentConfig cfg;
  cfg.random_common_phase = false;
  cfg.max_phase_slope_rad = 0.0;
  cfg.agc_jitter = 0.5;
  const CsiFrame dirty = ApplyImpairments(clean, cfg, rng);
  const double ratio0 =
      std::abs(dirty.Values()[0]) / std::abs(clean.Values()[0]);
  for (std::size_t i = 1; i < clean.SubcarrierCount(); ++i) {
    const double ratio =
        std::abs(dirty.Values()[i]) / std::abs(clean.Values()[i]);
    EXPECT_NEAR(ratio, ratio0, 1e-9);
  }
  EXPECT_GE(ratio0, 1.0 / 1.5 - 1e-9);
  EXPECT_LE(ratio0, 1.5 + 1e-9);
}

TEST(ApplyImpairments, NegativeConfigThrows) {
  const CsiFrame clean = TestChannel();
  common::Rng rng(4);
  ImpairmentConfig bad;
  bad.max_phase_slope_rad = -0.1;
  EXPECT_THROW(ApplyImpairments(clean, bad, rng), std::logic_error);
  bad = ImpairmentConfig{};
  bad.agc_jitter = -0.1;
  EXPECT_THROW(ApplyImpairments(clean, bad, rng), std::logic_error);
}

// The paper-critical property: max-tap PDP is invariant to a common phase
// and robust (within a couple dB) to realistic STO slopes — this is why
// NomLoc works on commodity CSI without phase calibration.
TEST(ImpairmentRobustness, PdpInvariantToCommonPhase) {
  const CsiFrame clean = TestChannel();
  common::Rng rng(5);
  ImpairmentConfig cfg;
  cfg.max_phase_slope_rad = 0.0;
  cfg.agc_jitter = 0.0;
  const double pdp_clean =
      PdpOfCir(CsiToCir(clean, common::kBandwidth20MHz), {});
  for (int i = 0; i < 20; ++i) {
    const CsiFrame dirty = ApplyImpairments(clean, cfg, rng);
    const double pdp_dirty =
        PdpOfCir(CsiToCir(dirty, common::kBandwidth20MHz), {});
    EXPECT_NEAR(pdp_dirty, pdp_clean, pdp_clean * 1e-9);
  }
}

TEST(ImpairmentRobustness, PdpToleratesRealisticPhaseSlope) {
  const CsiFrame clean = TestChannel();
  common::Rng rng(6);
  ImpairmentConfig cfg;
  cfg.agc_jitter = 0.0;
  cfg.max_phase_slope_rad = 0.2;
  const double pdp_clean =
      PdpOfCir(CsiToCir(clean, common::kBandwidth20MHz), {});
  for (int i = 0; i < 20; ++i) {
    const CsiFrame dirty = ApplyImpairments(clean, cfg, rng);
    const double pdp_dirty =
        PdpOfCir(CsiToCir(dirty, common::kBandwidth20MHz), {});
    // A linear phase slope is a circular shift in delay: the peak moves
    // but its power changes little.
    EXPECT_GT(pdp_dirty, 0.5 * pdp_clean);
    EXPECT_LT(pdp_dirty, 2.0 * pdp_clean);
  }
}

TEST(UnwrapPhase, RemovesJumps) {
  const double pi = std::numbers::pi;
  const std::vector<double> wrapped{0.0, 0.9 * pi, -0.9 * pi, -0.1 * pi};
  const auto unwrapped = UnwrapPhase(wrapped);
  // After the 0.9pi sample the -0.9pi should unwrap to +1.1pi.
  EXPECT_NEAR(unwrapped[2], 1.1 * pi, 1e-12);
  for (std::size_t i = 1; i < unwrapped.size(); ++i)
    EXPECT_LE(std::abs(unwrapped[i] - unwrapped[i - 1]), pi + 1e-12);
}

TEST(UnwrapPhase, MonotoneRampSurvives) {
  std::vector<double> ramp;
  for (int i = 0; i < 50; ++i) {
    double ang = 0.4 * i;
    while (ang > std::numbers::pi) ang -= 2.0 * std::numbers::pi;
    ramp.push_back(ang);
  }
  const auto unwrapped = UnwrapPhase(ramp);
  for (std::size_t i = 1; i < unwrapped.size(); ++i)
    EXPECT_NEAR(unwrapped[i] - unwrapped[i - 1], 0.4, 1e-9);
}

TEST(SanitizePhase, RemovesInjectedSlopeAndOffset) {
  const CsiFrame clean = TestChannel();
  common::Rng rng(7);
  ImpairmentConfig cfg;
  cfg.agc_jitter = 0.0;
  const CsiFrame dirty = ApplyImpairments(clean, cfg, rng);
  const CsiFrame fixed = SanitizePhase(dirty);
  const CsiFrame reference = SanitizePhase(clean);
  // After sanitization both reduce to the same canonical frame (up to the
  // channel's own linear component, removed from both).
  for (std::size_t i = 0; i < fixed.SubcarrierCount(); ++i)
    EXPECT_LT(std::abs(fixed.Values()[i] - reference.Values()[i]), 1e-6);
}

TEST(SanitizePhase, PowerNormalisation) {
  const CsiFrame clean = TestChannel();
  const CsiFrame scaled = SanitizePhase(clean, 42.0);
  EXPECT_NEAR(scaled.TotalPower(), 42.0, 1e-9);
  const CsiFrame unscaled = SanitizePhase(clean, 0.0);
  EXPECT_NEAR(unscaled.TotalPower(), clean.TotalPower(), 1e-9);
}

TEST(SanitizePhase, TooFewSubcarriersThrows) {
  auto one = CsiFrame::Create({1}, {Cplx(1.0, 0.0)});
  ASSERT_TRUE(one.ok());
  EXPECT_THROW(SanitizePhase(*one), std::logic_error);
}

}  // namespace
}  // namespace nomloc::dsp
