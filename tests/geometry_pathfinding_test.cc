#include "geometry/pathfinding.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace nomloc::geometry {
namespace {

Polygon Room() { return Polygon::Rectangle(0.0, 0.0, 10.0, 8.0); }

TEST(ShortestPath, StraightLineWhenUnobstructed) {
  auto plan = ShortestPath(Room(), {}, {1, 1}, {9, 7});
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->waypoints.size(), 2u);
  EXPECT_NEAR(plan->length_m, std::hypot(8.0, 6.0), 1e-9);
}

TEST(ShortestPath, StartEqualsGoal) {
  auto plan = ShortestPath(Room(), {}, {3, 3}, {3, 3});
  ASSERT_TRUE(plan.ok());
  EXPECT_NEAR(plan->length_m, 0.0, 1e-12);
}

TEST(ShortestPath, RoutesAroundAnObstacle) {
  const std::vector<Polygon> obstacles{
      Polygon::Rectangle(4.0, 2.0, 6.0, 6.0)};
  auto plan = ShortestPath(Room(), obstacles, {1, 4}, {9, 4});
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // Longer than the straight line, with intermediate corner waypoints.
  EXPECT_GT(plan->length_m, 8.0);
  EXPECT_GT(plan->waypoints.size(), 2u);
  // No leg crosses the obstacle interior.
  for (std::size_t i = 0; i + 1 < plan->waypoints.size(); ++i) {
    const Vec2 mid = Lerp(plan->waypoints[i], plan->waypoints[i + 1], 0.5);
    EXPECT_FALSE(obstacles[0].Contains(mid) &&
                 obstacles[0].BoundaryDistance(mid) > 1e-9);
  }
}

TEST(ShortestPath, DetourLengthIsPlausible) {
  // Obstacle 2 m wide from y=2..6; going from (1,4) to (9,4) around the
  // top corner (with clearance) costs roughly the corner detour.
  const std::vector<Polygon> obstacles{
      Polygon::Rectangle(4.0, 2.0, 6.0, 6.0)};
  auto plan = ShortestPath(Room(), obstacles, {1, 4}, {9, 4});
  ASSERT_TRUE(plan.ok());
  const double direct = 8.0;
  EXPECT_LT(plan->length_m, direct + 4.0);  // Reasonable detour bound.
}

TEST(ShortestPath, RespectsClearance) {
  const std::vector<Polygon> obstacles{
      Polygon::Rectangle(4.0, 0.5, 6.0, 7.5)};
  PathPlannerOptions opts;
  opts.clearance_m = 0.4;
  auto plan = ShortestPath(Room(), obstacles, {1, 4}, {9, 4}, opts);
  ASSERT_TRUE(plan.ok());
  // Interior waypoints stay ~clearance away from the obstacle corners.
  for (std::size_t i = 1; i + 1 < plan->waypoints.size(); ++i) {
    double min_corner = 1e9;
    for (const Vec2 v : obstacles[0].Vertices())
      min_corner = std::min(min_corner, Distance(plan->waypoints[i], v));
    EXPECT_GT(min_corner, 0.3);
  }
}

TEST(ShortestPath, FailsWhenSealedOff) {
  // Obstacle spanning the full room height between start and goal.
  const std::vector<Polygon> obstacles{
      Polygon::Rectangle(4.0, 0.0, 6.0, 8.0)};
  auto plan = ShortestPath(Room(), obstacles, {1, 4}, {9, 4});
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), common::StatusCode::kNotFound);
}

TEST(ShortestPath, ValidatesEndpoints) {
  const std::vector<Polygon> obstacles{
      Polygon::Rectangle(4.0, 2.0, 6.0, 6.0)};
  EXPECT_FALSE(ShortestPath(Room(), obstacles, {-1, 4}, {9, 4}).ok());
  EXPECT_FALSE(ShortestPath(Room(), obstacles, {1, 4}, {5, 4}).ok());
  PathPlannerOptions bad;
  bad.clearance_m = -0.1;
  EXPECT_FALSE(ShortestPath(Room(), {}, {1, 1}, {2, 2}, bad).ok());
}

TEST(ShortestPath, NavigatesNonConvexBoundary) {
  auto l = Polygon::Create({{0.0, 0.0},
                            {10.0, 0.0},
                            {10.0, 3.0},
                            {3.0, 3.0},
                            {3.0, 10.0},
                            {0.0, 10.0}});
  ASSERT_TRUE(l.ok());
  // From the far end of the horizontal arm to the far end of the vertical
  // arm: must turn the inner corner near (3, 3).
  auto plan = ShortestPath(*l, {}, {9, 1.5}, {1.5, 9});
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_GT(plan->waypoints.size(), 2u);
  EXPECT_GT(plan->length_m, Distance({9, 1.5}, {1.5, 9}));
  for (std::size_t i = 0; i + 1 < plan->waypoints.size(); ++i) {
    EXPECT_TRUE(l->ContainsSegment(plan->waypoints[i],
                                   plan->waypoints[i + 1], 1e-6));
  }
}

TEST(ShortestPathProperty, TriangleInequalityOverWaypoints) {
  // Path length equals the sum of its legs and is never shorter than the
  // straight-line distance.
  common::Rng rng(31);
  const std::vector<Polygon> obstacles{
      Polygon::Rectangle(3.0, 3.0, 5.0, 5.0),
      Polygon::Rectangle(6.5, 1.0, 7.5, 4.0)};
  for (int trial = 0; trial < 30; ++trial) {
    Vec2 a{rng.Uniform(0.3, 9.7), rng.Uniform(0.3, 7.7)};
    Vec2 b{rng.Uniform(0.3, 9.7), rng.Uniform(0.3, 7.7)};
    auto free = [&](Vec2 p) {
      for (const auto& o : obstacles)
        if (o.Contains(p)) return false;
      return true;
    };
    if (!free(a) || !free(b)) continue;
    auto plan = ShortestPath(Room(), obstacles, a, b);
    ASSERT_TRUE(plan.ok());
    double legs = 0.0;
    for (std::size_t i = 0; i + 1 < plan->waypoints.size(); ++i)
      legs += Distance(plan->waypoints[i], plan->waypoints[i + 1]);
    EXPECT_NEAR(legs, plan->length_m, 1e-9);
    EXPECT_GE(plan->length_m, Distance(a, b) - 1e-9);
  }
}

TEST(TourLength, SumsLegs) {
  const std::vector<Vec2> sites{{1, 1}, {9, 1}, {9, 7}};
  auto total = TourLength(Room(), {}, sites);
  ASSERT_TRUE(total.ok());
  EXPECT_NEAR(*total, 8.0 + 6.0, 1e-9);
}

TEST(TourLength, NeedsTwoSites) {
  const std::vector<Vec2> one{{1, 1}};
  EXPECT_FALSE(TourLength(Room(), {}, one).ok());
}

}  // namespace
}  // namespace nomloc::geometry
