#include "world/worldgen.h"

#include <gtest/gtest.h>

#include <vector>

#include "channel/environment.h"
#include "geometry/vec2.h"

namespace nomloc::world {
namespace {

using geometry::Vec2;

WorldSpec Spec(Layout layout, std::size_t rooms, std::uint64_t seed = 7) {
  WorldSpec s;
  s.layout = layout;
  s.rooms = rooms;
  s.seed = seed;
  return s;
}

TEST(Worldgen, EveryLayoutGeneratesAcrossSizes) {
  for (const Layout layout : {Layout::kOfficeGrid, Layout::kCorridorSpine,
                              Layout::kAtrium, Layout::kMultiFloor}) {
    for (const std::size_t rooms : {1u, 3u, 10u, 57u, 100u}) {
      auto world = Generate(Spec(layout, rooms));
      ASSERT_TRUE(world.ok()) << LayoutName(layout) << " rooms=" << rooms
                              << ": " << world.status().message();
      EXPECT_GE(world->rooms, rooms);
      EXPECT_EQ(world->test_sites.size(), world->rooms);
      EXPECT_FALSE(world->ap_sites.empty());
      EXPECT_FALSE(world->env.Walls().empty());
      for (const Vec2 p : world->ap_sites)
        EXPECT_TRUE(world->env.IsFreeSpace(p));
      for (const Vec2 p : world->test_sites)
        EXPECT_TRUE(world->env.IsFreeSpace(p));
    }
  }
}

TEST(Worldgen, DeterministicForEqualSpecs) {
  const WorldSpec spec = Spec(Layout::kOfficeGrid, 40, 0xfeed);
  auto a = Generate(spec);
  auto b = Generate(spec);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->env.Walls().size(), b->env.Walls().size());
  for (std::size_t i = 0; i < a->env.Walls().size(); ++i) {
    EXPECT_EQ(a->env.Walls()[i].segment.a.x, b->env.Walls()[i].segment.a.x);
    EXPECT_EQ(a->env.Walls()[i].segment.a.y, b->env.Walls()[i].segment.a.y);
    EXPECT_EQ(a->env.Walls()[i].segment.b.x, b->env.Walls()[i].segment.b.x);
    EXPECT_EQ(a->env.Walls()[i].segment.b.y, b->env.Walls()[i].segment.b.y);
  }
  ASSERT_EQ(a->env.Scatterers().size(), b->env.Scatterers().size());
  for (std::size_t i = 0; i < a->env.Scatterers().size(); ++i) {
    EXPECT_EQ(a->env.Scatterers()[i].x, b->env.Scatterers()[i].x);
    EXPECT_EQ(a->env.Scatterers()[i].y, b->env.Scatterers()[i].y);
  }
  ASSERT_EQ(a->test_sites.size(), b->test_sites.size());
  for (std::size_t i = 0; i < a->test_sites.size(); ++i) {
    EXPECT_EQ(a->test_sites[i].x, b->test_sites[i].x);
    EXPECT_EQ(a->test_sites[i].y, b->test_sites[i].y);
  }
}

TEST(Worldgen, SeedChangesGeometryDetails) {
  auto a = Generate(Spec(Layout::kOfficeGrid, 30, 1));
  auto b = Generate(Spec(Layout::kOfficeGrid, 30, 2));
  ASSERT_TRUE(a.ok() && b.ok());
  // Same structural plan, different jitter: at least one test site moves.
  ASSERT_EQ(a->test_sites.size(), b->test_sites.size());
  bool any_moved = false;
  for (std::size_t i = 0; i < a->test_sites.size(); ++i)
    any_moved |= Distance(a->test_sites[i], b->test_sites[i]) > 1e-12;
  EXPECT_TRUE(any_moved);
}

TEST(Worldgen, TestSiteCapStridesAcrossBuilding) {
  WorldSpec spec = Spec(Layout::kOfficeGrid, 100);
  spec.max_test_sites = 12;
  auto world = Generate(spec);
  ASSERT_TRUE(world.ok());
  ASSERT_EQ(world->test_sites.size(), 12u);
  // Strided selection spans the building rather than one corner: the
  // kept sites' x-extent covers most of the boundary's width.
  const auto bbox = world->env.Boundary().BoundingBox();
  double lo = world->test_sites.front().x, hi = lo;
  for (const Vec2 p : world->test_sites) {
    lo = std::min(lo, p.x);
    hi = std::max(hi, p.x);
  }
  EXPECT_GT(hi - lo, 0.5 * bbox.Width());
}

TEST(Worldgen, MultiFloorMultipliesRooms) {
  WorldSpec spec = Spec(Layout::kMultiFloor, 20);
  spec.floors = 3;
  auto world = Generate(spec);
  ASSERT_TRUE(world.ok());
  EXPECT_EQ(world->rooms, 60u);
  EXPECT_EQ(world->floors, 3u);
}

TEST(Worldgen, LargeWorldBuildsSpatialIndex) {
  auto world = Generate(Spec(Layout::kOfficeGrid, 100));
  ASSERT_TRUE(world.ok());
  EXPECT_GE(world->env.BlockingWalls().size(),
            channel::IndoorEnvironment::kIndexMinSegments);
  EXPECT_FALSE(world->env.BlockingIndex().Empty());
}

TEST(Worldgen, LayoutNamesRoundTrip) {
  for (const Layout layout : {Layout::kOfficeGrid, Layout::kCorridorSpine,
                              Layout::kAtrium, Layout::kMultiFloor}) {
    auto parsed = LayoutByName(LayoutName(layout));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, layout);
  }
  EXPECT_FALSE(LayoutByName("warehouse").ok());
}

TEST(Worldgen, RejectsMalformedSpecs) {
  EXPECT_FALSE(Generate(Spec(Layout::kOfficeGrid, 0)).ok());
  WorldSpec tiny = Spec(Layout::kOfficeGrid, 4);
  tiny.room_w_m = 1.0;
  EXPECT_FALSE(Generate(tiny).ok());
  WorldSpec no_floors = Spec(Layout::kMultiFloor, 4);
  no_floors.floors = 0;
  EXPECT_FALSE(Generate(no_floors).ok());
}

}  // namespace
}  // namespace nomloc::world
