// Incremental WireDecoder contract: fed the same bytes in ANY partition —
// every single byte boundary, and seeded random multi-chunk splits — it
// must produce packets bit-identical to DecodeWireBinary over the whole
// stream, and fail with the same typed kDataCorruption errors at the same
// stream byte offsets on truncation and bit-flips.
#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "serving/wire.h"

namespace nomloc::serving {
namespace {

std::uint64_t NextRandom(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t x = state;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double RandomDouble(std::uint64_t& state) {
  return double(NextRandom(state) >> 11) * 0x1.0p-53 * 1e3 - 500.0;
}

IngestPacket RandomPacket(std::uint64_t& state) {
  IngestPacket packet;
  if (NextRandom(state) % 4 == 0) {
    packet.kind = PacketKind::kQuery;
  } else {
    packet.kind = PacketKind::kObservation;
    packet.ap_id = int(NextRandom(state) % 64) - 32;
    packet.site_index = NextRandom(state) % 8;
    packet.is_nomadic = NextRandom(state) % 2 == 0;
    packet.reported_position = {RandomDouble(state), RandomDouble(state)};
    packet.pdp = std::abs(RandomDouble(state)) + 1e-9;
    packet.weight = double(NextRandom(state) % 20 + 1);
  }
  packet.object_id = NextRandom(state) % (1ull << 48);
  packet.timestamp_s = std::abs(RandomDouble(state));
  packet.deadline_s = NextRandom(state) % 3 == 0
                          ? std::numeric_limits<double>::infinity()
                          : packet.timestamp_s + 1.0;
  return packet;
}

std::vector<IngestPacket> RandomStream(std::size_t n, std::uint64_t seed) {
  std::uint64_t state = seed;
  std::vector<IngestPacket> packets;
  packets.reserve(n);
  for (std::size_t i = 0; i < n; ++i) packets.push_back(RandomPacket(state));
  return packets;
}

bool BitEqual(const IngestPacket& a, const IngestPacket& b) {
  auto same = [](double x, double y) {
    return std::memcmp(&x, &y, sizeof(double)) == 0;
  };
  if (a.kind != b.kind || a.object_id != b.object_id) return false;
  if (!same(a.timestamp_s, b.timestamp_s) ||
      !same(a.deadline_s, b.deadline_s))
    return false;
  if (a.kind == PacketKind::kQuery) return true;
  return a.ap_id == b.ap_id && a.site_index == b.site_index &&
         a.is_nomadic == b.is_nomadic &&
         same(a.reported_position.x, b.reported_position.x) &&
         same(a.reported_position.y, b.reported_position.y) &&
         same(a.pdp, b.pdp) && same(a.weight, b.weight);
}

/// Feeds `bytes` in the given chunk sizes and returns whatever the decode
/// produced (packets on success, the poison status on failure).
struct ChunkedDecode {
  common::Status status;
  std::vector<IngestPacket> packets;
};

ChunkedDecode FeedChunks(std::string_view bytes,
                         const std::vector<std::size_t>& chunk_sizes) {
  ChunkedDecode out;
  WireDecoder decoder;
  std::size_t at = 0;
  for (std::size_t size : chunk_sizes) {
    const auto fed = decoder.Feed(bytes.substr(at, size));
    if (!fed.ok()) {
      out.status = fed.status();
      return out;
    }
    at += size;
  }
  if (const auto done = decoder.Finish(); !done.ok()) {
    out.status = done.status();
    return out;
  }
  out.packets = decoder.TakePackets();
  return out;
}

TEST(WireDecoder, EveryByteBoundarySplitBitIdentical) {
  const auto packets = RandomStream(6, 17);
  const std::string bytes = EncodeWireBinary(packets);
  auto golden = DecodeWireBinary(bytes);
  ASSERT_TRUE(golden.ok());
  // Split the stream at every byte boundary: [0, cut) then [cut, end).
  for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
    const auto decoded = FeedChunks(bytes, {cut, bytes.size() - cut});
    ASSERT_TRUE(decoded.status.ok())
        << "cut at " << cut << ": " << decoded.status.ToString();
    ASSERT_EQ(decoded.packets.size(), golden->size()) << "cut at " << cut;
    for (std::size_t i = 0; i < golden->size(); ++i)
      EXPECT_TRUE(BitEqual((*golden)[i], decoded.packets[i]))
          << "cut at " << cut << ", packet " << i;
  }
}

TEST(WireDecoder, RandomMultiChunkPartitionsBitIdentical) {
  const auto packets = RandomStream(40, 29);
  const std::string bytes = EncodeWireBinary(packets);
  auto golden = DecodeWireBinary(bytes);
  ASSERT_TRUE(golden.ok());
  std::uint64_t rng = 71;
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::size_t> chunks;
    std::size_t remaining = bytes.size();
    while (remaining > 0) {
      // Mix of tiny (1–3 B) and frame-scale chunks, plus empty reads.
      std::size_t size = NextRandom(rng) % 4 == 0
                             ? NextRandom(rng) % 4
                             : 1 + NextRandom(rng) % 97;
      size = std::min(size, remaining);
      chunks.push_back(size);
      remaining -= size;
    }
    const auto decoded = FeedChunks(bytes, chunks);
    ASSERT_TRUE(decoded.status.ok())
        << "trial " << trial << ": " << decoded.status.ToString();
    ASSERT_EQ(decoded.packets.size(), golden->size()) << "trial " << trial;
    for (std::size_t i = 0; i < golden->size(); ++i)
      EXPECT_TRUE(BitEqual((*golden)[i], decoded.packets[i]))
          << "trial " << trial << ", packet " << i;
  }
}

TEST(WireDecoder, TruncationMatchesOracleErrorAndOffset) {
  const auto packets = RandomStream(8, 43);
  const std::string bytes = EncodeWireBinary(packets);
  // Every strict prefix that ends mid-header or mid-frame must fail
  // Finish() with exactly the oracle's error text (same offset).
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::string_view prefix = std::string_view(bytes).substr(0, cut);
    const auto oracle = DecodeWireBinary(prefix);
    const auto decoded = FeedChunks(bytes, {cut});  // Feed prefix, Finish.
    if (oracle.ok()) {
      EXPECT_TRUE(decoded.status.ok()) << "cut at " << cut;
      continue;
    }
    ASSERT_FALSE(decoded.status.ok()) << "cut at " << cut;
    EXPECT_EQ(decoded.status.code(), oracle.status().code())
        << "cut at " << cut;
    EXPECT_EQ(decoded.status.message(), oracle.status().message())
        << "cut at " << cut;
  }
}

TEST(WireDecoder, BitFlipsMatchOracleErrorAndOffset) {
  const auto packets = RandomStream(12, 59);
  const std::string bytes = EncodeWireBinary(packets);
  std::uint64_t rng = 5;
  std::size_t rejected = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::string corrupted = bytes;
    const std::size_t where = NextRandom(rng) % corrupted.size();
    corrupted[where] ^= char(1 << (NextRandom(rng) % 8));
    const auto oracle = DecodeWireBinary(corrupted);
    // Feed the corrupted stream in random 1–40 B chunks.
    std::vector<std::size_t> chunks;
    std::size_t remaining = corrupted.size();
    while (remaining > 0) {
      const std::size_t size =
          std::min<std::size_t>(1 + NextRandom(rng) % 40, remaining);
      chunks.push_back(size);
      remaining -= size;
    }
    const auto decoded = FeedChunks(corrupted, chunks);
    if (oracle.ok()) {
      EXPECT_TRUE(decoded.status.ok()) << "trial " << trial;
      continue;
    }
    ++rejected;
    ASSERT_FALSE(decoded.status.ok()) << "trial " << trial;
    EXPECT_EQ(decoded.status.code(), oracle.status().code())
        << "trial " << trial;
    EXPECT_EQ(decoded.status.message(), oracle.status().message())
        << "trial " << trial << " flip at " << where;
  }
  EXPECT_GT(rejected, 150u);  // The checksum catches almost every flip.
}

TEST(WireDecoder, PoisonedForever) {
  const auto packets = RandomStream(2, 7);
  std::string bytes = EncodeWireBinary(packets);
  bytes[kWireHeaderBytes + 2] ^= 0x40;  // Break the first frame body.
  WireDecoder decoder;
  const auto fed = decoder.Feed(bytes);
  ASSERT_FALSE(fed.ok());
  const std::string message(fed.status().message());
  // Every later call reports the original poison, even with valid bytes.
  const auto again = decoder.Feed(EncodeWireBinary(packets));
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().message(), message);
  const auto finished = decoder.Finish();
  ASSERT_FALSE(finished.ok());
  EXPECT_EQ(finished.status().message(), message);
  EXPECT_TRUE(decoder.TakePackets().empty());
}

TEST(WireDecoder, ResponseAndControlFramesRoundTrip) {
  WireResponse response;
  response.object_id = 42;
  response.timestamp_s = 1.5;
  response.status = 0;
  response.degradation = 2;
  response.degraded = true;
  response.anchor_count = 7;
  response.position = {3.25, -4.75};
  response.relaxation_cost = 0.125;
  response.feasible_area_m2 = 9.5;
  response.confidence = 0.875;
  WireControl control;
  control.op = WireControlOp::kFlushAck;
  control.token = 99;
  control.value = 2.5;

  std::string bytes = WireHeader();
  AppendWireResponseFrame(response, bytes);
  AppendWireControlFrame(control, bytes);
  EXPECT_EQ(bytes.size(),
            kWireHeaderBytes + kWireResponseBytes + kWireControlBytes);

  WireDecoder decoder(WireDecoderAccept{
      .packets = false, .responses = true, .controls = true, .ordered = true});
  // One byte at a time: reassembly across every boundary.
  for (char c : bytes) ASSERT_TRUE(decoder.Feed({&c, 1}).ok());
  ASSERT_TRUE(decoder.Finish().ok());
  const auto events = decoder.TakeEvents();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, kWireResponseFrame);
  EXPECT_EQ(events[0].response.object_id, 42u);
  EXPECT_EQ(events[0].response.degradation, 2);
  EXPECT_TRUE(events[0].response.degraded);
  EXPECT_EQ(events[0].response.anchor_count, 7u);
  EXPECT_EQ(events[0].response.position.x, 3.25);
  EXPECT_EQ(events[0].response.position.y, -4.75);
  EXPECT_EQ(events[0].response.relaxation_cost, 0.125);
  EXPECT_EQ(events[0].response.feasible_area_m2, 9.5);
  EXPECT_EQ(events[0].response.confidence, 0.875);
  EXPECT_EQ(events[1].kind, kWireControlFrame);
  EXPECT_EQ(events[1].control.op, WireControlOp::kFlushAck);
  EXPECT_EQ(events[1].control.token, 99u);
  EXPECT_EQ(events[1].control.value, 2.5);
}

TEST(WireDecoder, IngestChannelRejectsResponseFrames) {
  // The default (ingest) accept set matches DecodeWireBinary: a response
  // frame on an ingest channel is an unknown kind at its stream offset.
  std::string bytes = WireHeader();
  AppendWireResponseFrame(WireResponse{}, bytes);
  WireDecoder decoder;
  const auto fed = decoder.Feed(bytes);
  ASSERT_FALSE(fed.ok());
  EXPECT_EQ(fed.status().code(), common::StatusCode::kDataCorruption);
  EXPECT_NE(fed.status().message().find("at offset 4"), std::string::npos);

  const auto oracle = DecodeWireBinary(bytes);
  ASSERT_FALSE(oracle.ok());
  EXPECT_EQ(fed.status().message(), oracle.status().message());
}

TEST(WireDecoder, OrderedModeInterleavesKinds) {
  IngestPacket obs;
  obs.kind = PacketKind::kObservation;
  obs.object_id = 1;
  WireControl clock_set;
  clock_set.op = WireControlOp::kClockSet;
  clock_set.value = 7.0;
  IngestPacket query;
  query.kind = PacketKind::kQuery;
  query.object_id = 1;

  std::string bytes = WireHeader();
  AppendWireFrame(obs, bytes);
  AppendWireControlFrame(clock_set, bytes);
  AppendWireFrame(query, bytes);

  WireDecoder decoder(WireDecoderAccept{
      .packets = true, .responses = false, .controls = true, .ordered = true});
  ASSERT_TRUE(decoder.Feed(bytes).ok());
  ASSERT_TRUE(decoder.Finish().ok());
  const auto events = decoder.TakeEvents();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, kWireObservationFrame);
  EXPECT_EQ(events[1].kind, kWireControlFrame);
  EXPECT_EQ(events[1].control.op, WireControlOp::kClockSet);
  EXPECT_EQ(events[1].control.value, 7.0);
  EXPECT_EQ(events[2].kind, kWireQueryFrame);
  EXPECT_EQ(decoder.BytesDecoded(), bytes.size());
  EXPECT_EQ(decoder.PendingBytes(), 0u);
}

TEST(WireDecoder, ReplicateAndEpochFramesRoundTrip) {
  WireReplicate replicate;
  replicate.slot = 3;
  replicate.epoch = 17;
  replicate.packet.kind = PacketKind::kObservation;
  replicate.packet.object_id = 21;
  replicate.packet.ap_id = -5;
  replicate.packet.site_index = 2;
  replicate.packet.is_nomadic = true;
  replicate.packet.reported_position = {1.5, -2.25};
  replicate.packet.pdp = 0.375;
  replicate.packet.weight = 4.0;
  replicate.packet.timestamp_s = 12.5;
  replicate.packet.deadline_s = 13.5;
  WireControl epoch_set;
  epoch_set.op = WireControlOp::kEpochSet;
  epoch_set.epoch = 18;

  std::string bytes = WireHeader();
  AppendWireReplicateFrame(replicate, bytes);
  AppendWireControlFrame(epoch_set, bytes);
  EXPECT_EQ(bytes.size(),
            kWireHeaderBytes + kWireReplicateBytes + kWireControlBytes);

  WireDecoder decoder(WireDecoderAccept{.packets = false,
                                        .responses = false,
                                        .controls = true,
                                        .replicates = true,
                                        .ordered = true});
  // One byte at a time: reassembly across every boundary.
  for (char c : bytes) ASSERT_TRUE(decoder.Feed({&c, 1}).ok());
  ASSERT_TRUE(decoder.Finish().ok());
  const auto events = decoder.TakeEvents();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, kWireReplicateFrame);
  EXPECT_EQ(events[0].replicate.slot, 3u);
  EXPECT_EQ(events[0].replicate.epoch, 17u);
  EXPECT_TRUE(BitEqual(events[0].replicate.packet, replicate.packet));
  EXPECT_EQ(events[1].kind, kWireControlFrame);
  EXPECT_EQ(events[1].control.op, WireControlOp::kEpochSet);
  EXPECT_EQ(events[1].control.epoch, 18u);
}

TEST(WireDecoder, IngestChannelRejectsReplicateFrames) {
  // Replicate frames only travel router -> standby host; a plain ingest
  // channel treats them as an unknown kind at their stream offset.
  std::string bytes = WireHeader();
  AppendWireReplicateFrame(WireReplicate{}, bytes);
  WireDecoder decoder;
  const auto fed = decoder.Feed(bytes);
  ASSERT_FALSE(fed.ok());
  EXPECT_EQ(fed.status().code(), common::StatusCode::kDataCorruption);
}

TEST(WireDecoder, ByteCountersTrackEncodeAndDecode) {
  auto& in = common::MetricRegistry::Global().Counter("serving.wire.bytes_in");
  auto& out =
      common::MetricRegistry::Global().Counter("serving.wire.bytes_out");
  const auto packets = RandomStream(10, 3);
  const std::uint64_t out_before = out.Value();
  const std::string bytes = EncodeWireBinary(packets);
  EXPECT_EQ(out.Value() - out_before, bytes.size());

  const std::uint64_t in_before = in.Value();
  WireDecoder decoder;
  ASSERT_TRUE(decoder.Feed(bytes).ok());
  ASSERT_TRUE(decoder.Finish().ok());
  EXPECT_EQ(in.Value() - in_before, bytes.size());
}

}  // namespace
}  // namespace nomloc::serving
